//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * numeric [`Strategy`] impls for `Range` / `RangeInclusive` of the primitive
//!   types, and [`collection::vec`] for vectors with a sampled length,
//! * [`test_runner::Config`] (re-exported as `ProptestConfig`) with
//!   `with_cases`.
//!
//! Every test runs `cases` deterministic random cases seeded from the test
//! name, so failures are reproducible run to run.  Shrinking is not
//! implemented: a failing case reports the generated inputs instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix style generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator (used by the runner; tests never construct this).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let value = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if value < self.end {
            value
        } else {
            self.end.next_down()
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_uint_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $ty)
            }
        }
    )*};
}

impl_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize);

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is sampled from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test runner: configuration and case execution.
pub mod test_runner {
    use super::TestRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Run `case` for every configured case, panicking on the first failure.
    ///
    /// Seeds are derived deterministically from the test name and case index.
    pub fn run<F>(config: &Config, name: &str, case: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let name_seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            });
        for index in 0..config.cases {
            let mut rng = TestRng::new(name_seed ^ (u64::from(index) << 32));
            if let Err(TestCaseError(message)) = case(&mut rng) {
                panic!("proptest case {index} of `{name}` failed: {message}");
            }
        }
    }
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a property test, failing the case (not the whole
/// process) with the condition text and optional formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` becomes a
/// `#[test]` running the body over random strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                let __proptest_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __proptest_outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __proptest_outcome.map_err(|$crate::test_runner::TestCaseError(message)| {
                    $crate::test_runner::TestCaseError(format!(
                        "{message} [inputs: {}]",
                        __proptest_inputs
                    ))
                })
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_the_range(values in collection::vec(-1.0f64..1.0, 2..6)) {
            prop_assert!(values.len() >= 2 && values.len() < 6);
            for v in &values {
                prop_assert!((-1.0..1.0).contains(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "doomed",
            |_| {
                prop_assert!(false);
                #[allow(unreachable_code)]
                Ok(())
            },
        );
    }

    #[test]
    fn f64_ranges_with_non_positive_ends_stay_in_bounds() {
        let mut rng = crate::TestRng::new(2);
        let strategy = -1.0f64..0.0;
        for _ in 0..10_000 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!((-1.0..0.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn full_width_u64_range_works() {
        let mut rng = crate::TestRng::new(5);
        let strategy = 0u64..u64::MAX;
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!(v < u64::MAX);
        }
    }
}
