//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Provides the non-poisoning `Mutex` / `RwLock` API surface this workspace uses,
//! implemented over `std::sync`.  Poisoned locks (a panic while holding the guard)
//! are recovered by taking the inner value, matching parking_lot's behaviour of
//! simply not having poisoning.

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read` / `write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
