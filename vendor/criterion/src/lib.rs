//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the API this workspace's benchmarks use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a simple wall-clock measurement loop: a short warm-up, then batches of
//! iterations until a time budget is spent, reporting the median batch mean.
//!
//! No statistical analysis, plotting or HTML reports; output is one line per
//! benchmark on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { filter: None }
    }
}

impl Criterion {
    /// Apply command-line arguments (only a name substring filter is honoured;
    /// harness flags such as `--bench` are ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|arg| !arg.starts_with('-'));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmark `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, DEFAULT_SAMPLE_SIZE, f);
    }

    fn run_one<F>(&mut self, id: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            measurement: None,
        };
        f(&mut bencher);
        match bencher.measurement {
            Some(ns_per_iter) => println!("{id:<50} time: {}", format_ns(ns_per_iter)),
            None => println!("{id:<50} (no measurement)"),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of measurement batches for benchmarks in this
    /// group; the overall time budget scales with it.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmark `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmark `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Default measurement-batch count, matching criterion's default sample size.
const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Passed to every benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    samples: usize,
    measurement: Option<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then time batches of calls and record
    /// the median per-iteration wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: at least one call, at most ~50 ms.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter_estimate = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measurement: up to `samples` batches of ~20 ms each, within an overall
        // budget that scales with the requested sample size (capped at 2 s).
        let batches = self.samples.clamp(5, 1_000);
        let batch_iters = ((0.02 / per_iter_estimate.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut batch_means: Vec<f64> = Vec::with_capacity(batches);
        let budget = Duration::from_millis((20 * batches as u64).min(2_000));
        let start = Instant::now();
        while batch_means.len() < batches && (batch_means.is_empty() || start.elapsed() < budget) {
            let batch_start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            batch_means
                .push(batch_start.elapsed().as_secs_f64() * 1e9 / batch_iters as f64);
        }
        batch_means.sort_by(f64::total_cmp);
        self.measurement = Some(batch_means[batch_means.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
