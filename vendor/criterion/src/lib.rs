//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the API this workspace's benchmarks use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a simple wall-clock measurement loop: a short warm-up, then batches of
//! iterations until a time budget is spent, reporting the median batch mean.
//!
//! No statistical analysis, plotting or HTML reports; output is one line per
//! benchmark on stdout.
//!
//! # Machine-readable results
//!
//! Passing `--save-json <path>` after the `--` separator (or setting the
//! `CRITERION_SAVE_JSON` environment variable) **appends** one JSON object per
//! completed benchmark to `<path>`, one per line:
//!
//! ```text
//! {"name":"launch_overhead/launch_map_64_trivial_2_workers","mean_ns":81543.2,"samples":50}
//! ```
//!
//! Append semantics let the several `Criterion` instances created by
//! [`criterion_main!`] groups — and several bench binaries run back to back —
//! share one results file; callers that want a fresh trajectory delete the
//! file first (the CI bench-smoke job does exactly that, then slurps the lines
//! into a JSON array).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    save_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            save_path: std::env::var_os("CRITERION_SAVE_JSON").map(PathBuf::from),
        }
    }
}

impl Criterion {
    /// Apply command-line arguments: `--save-json <path>` selects the
    /// machine-readable results file (overriding `CRITERION_SAVE_JSON`), the
    /// first other non-flag argument is a name substring filter, and harness
    /// flags such as `--bench` are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--save-json" {
                if let Some(path) = args.next() {
                    self.save_path = Some(PathBuf::from(path));
                }
            } else if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmark `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, DEFAULT_SAMPLE_SIZE, f);
    }

    fn run_one<F>(&mut self, id: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            samples_taken: 0,
            measurement: None,
        };
        f(&mut bencher);
        match bencher.measurement {
            Some(ns_per_iter) => {
                println!("{id:<50} time: {}", format_ns(ns_per_iter));
                self.save_record(id, ns_per_iter, bencher.samples_taken);
            }
            None => println!("{id:<50} (no measurement)"),
        }
    }

    /// Append one `{name, mean_ns, samples}` record to the results file, if
    /// one was configured.
    fn save_record(&self, id: &str, mean_ns: f64, samples: usize) {
        let Some(path) = &self.save_path else { return };
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|err| panic!("failed to open {}: {err}", path.display()));
        writeln!(
            file,
            "{{\"name\":\"{}\",\"mean_ns\":{mean_ns},\"samples\":{samples}}}",
            escape_json(id)
        )
        .unwrap_or_else(|err| panic!("failed to write {}: {err}", path.display()));
    }
}

/// Escape the characters JSON strings cannot contain verbatim.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of measurement batches for benchmarks in this
    /// group; the overall time budget scales with it.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmark `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmark `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Default measurement-batch count, matching criterion's default sample size.
const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Passed to every benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    samples: usize,
    samples_taken: usize,
    measurement: Option<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then time batches of calls and record
    /// the median per-iteration wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: at least one call, at most ~50 ms.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter_estimate = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measurement: up to `samples` batches of ~20 ms each, within an overall
        // budget that scales with the requested sample size (capped at 2 s).
        let batches = self.samples.clamp(5, 1_000);
        let batch_iters = ((0.02 / per_iter_estimate.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut batch_means: Vec<f64> = Vec::with_capacity(batches);
        let budget = Duration::from_millis((20 * batches as u64).min(2_000));
        let start = Instant::now();
        while batch_means.len() < batches && (batch_means.is_empty() || start.elapsed() < budget) {
            let batch_start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            batch_means
                .push(batch_start.elapsed().as_secs_f64() * 1e9 / batch_iters as f64);
        }
        batch_means.sort_by(f64::total_cmp);
        self.samples_taken = batch_means.len();
        self.measurement = Some(batch_means[batch_means.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn save_json_appends_one_record_per_benchmark() {
        let path = std::env::temp_dir().join(format!("criterion-save-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut criterion = Criterion {
            filter: None,
            save_path: Some(path.clone()),
        };
        criterion.bench_function("demo/first", |b| b.iter(|| black_box(1 + 1)));
        criterion.bench_function("demo/second", |b| b.iter(|| black_box(2 * 2)));
        let contents = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"demo/first\",\"mean_ns\":"));
        assert!(lines[0].contains("\"samples\":"));
        assert!(lines[0].ends_with('}'));
        assert!(lines[1].starts_with("{\"name\":\"demo/second\","));
    }

    #[test]
    fn filtered_out_benchmarks_write_no_record() {
        let path = std::env::temp_dir().join(format!("criterion-filter-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut criterion = Criterion {
            filter: Some("nomatch".to_owned()),
            save_path: Some(path.clone()),
        };
        criterion.bench_function("demo/skipped", |b| b.iter(|| black_box(0)));
        assert!(!path.exists(), "no record for a filtered-out benchmark");
    }

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain/name_1"), "plain/name_1");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }
}
