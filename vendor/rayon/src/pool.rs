//! The persistent worker pool behind the parallel iterators.
//!
//! Every parallel call is split into contiguous *spans* and the spans are
//! executed as jobs on a long-lived pool of worker threads:
//!
//! * a lazily-initialised **global pool** (sized by
//!   `std::thread::available_parallelism`) serves calls made outside any
//!   explicit pool, and
//! * [`crate::ThreadPoolBuilder::num_threads`] builds **dedicated pools** with
//!   their own workers.
//!
//! The pool a parallel call runs on is resolved from thread context, in
//! priority order:
//!
//! 1. the pool installed on the current thread by [`crate::ThreadPool::install`],
//! 2. the pool the current thread *belongs to* as a worker — this is how a
//!    nested parallel call made from inside a span body inherits its pool's
//!    thread cap instead of silently escaping to the global default,
//! 3. the global pool.
//!
//! # Determinism
//!
//! Span partitioning is a function of the input length only ([`MAX_SPANS`]
//! fixed spans, never "one span per thread"), and combining steps merge the
//! per-span results in span order once all spans have finished.  Results are
//! therefore bit-identical across pools of different sizes and across repeated
//! runs — worker count only changes how many spans execute at once.
//!
//! # Scheduling and deadlock freedom
//!
//! Jobs live on the submitting thread's stack and are pushed into the pool's
//! injector queue as type-erased pointers; the submitter blocks until the whole
//! batch has completed, which keeps the pointed-to state alive.  A submitter
//! that is itself a pool worker *helps*: while its batch is incomplete it keeps
//! popping and executing queued jobs, so nested parallel calls can never
//! deadlock the pool even when every worker is occupied.  A submitter outside
//! the pool just sleeps on the batch latch, which keeps the number of threads
//! executing spans at or below the pool's thread cap.

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Upper bound on the number of spans a single parallel call is divided into.
///
/// The bound is a constant — independent of the executing pool's thread count —
/// because the span structure determines the floating-point combining order of
/// `sum`/`reduce`/`collect`.  Keeping it fixed is what makes results
/// bit-identical across `ThreadPool`s of different sizes.
pub(crate) const MAX_SPANS: usize = 64;

/// Lock a mutex, ignoring poisoning (jobs catch panics before they can poison).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Pool installed on this thread by [`crate::ThreadPool::install`].
    static INSTALLED: RefCell<Option<Arc<PoolCore>>> = const { RefCell::new(None) };
    /// The pool this thread serves as a worker, set once at worker startup.
    /// This is what a nested parallel call made from a span body sees, so the
    /// pool's thread cap is inherited across nesting.
    static WORKER_OF: RefCell<Option<Arc<PoolCore>>> = const { RefCell::new(None) };
}

/// The pool the next parallel call on this thread will execute on.
pub(crate) fn current_pool() -> Arc<PoolCore> {
    if let Some(pool) = INSTALLED.with(|slot| slot.borrow().clone()) {
        return pool;
    }
    if let Some(pool) = WORKER_OF.with(|slot| slot.borrow().clone()) {
        return pool;
    }
    global_pool()
}

/// Thread cap of the pool the current thread would execute parallel calls on.
pub(crate) fn current_thread_cap() -> usize {
    current_pool().num_threads
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide default pool, created on first use and never torn down.
fn global_pool() -> Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            // The worker handles are dropped: the global pool's workers are
            // detached and live for the rest of the process.
            let (core, _workers) = PoolCore::start(default_threads(), "rayon-global");
            core
        })
        .clone()
}

/// Run `work` over `spans`, returning the per-span outputs in span order.
///
/// Uses the current thread's pool context; with a single span or a
/// single-thread cap the spans run inline on the calling thread (in span
/// order, so the combining structure is unchanged).
pub(crate) fn run_spans<S, T, F>(spans: Vec<S>, work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    let count = spans.len();
    if count == 0 {
        return Vec::new();
    }
    let pool = current_pool();
    if count == 1 || pool.num_threads <= 1 {
        return spans.into_iter().map(work).collect();
    }
    pool.run_batch(spans, &work)
}

/// A type-erased pointer to one span job living on the submitting thread's
/// stack.
struct JobRef {
    data: *const (),
    index: usize,
    execute: unsafe fn(*const (), usize),
}

// SAFETY: the submitting thread blocks until the batch latch reaches zero,
// keeping the pointed-to `BatchCtx` alive, and each job index is executed by
// exactly one thread.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

impl JobRef {
    fn run(self) {
        // SAFETY: `execute` was instantiated for the concrete types behind
        // `data` when the job was created, and the submitter keeps `data`
        // alive until the batch completes.
        #[allow(unsafe_code)]
        unsafe {
            (self.execute)(self.data, self.index)
        }
    }
}

struct QueueState {
    jobs: VecDeque<JobRef>,
    shutdown: bool,
}

/// Shared state of one pool: the injector queue and the thread cap.
pub(crate) struct PoolCore {
    queue: Mutex<QueueState>,
    jobs_available: Condvar,
    pub(crate) num_threads: usize,
}

impl PoolCore {
    /// Spawn a pool with `num_threads` capacity and return it with its worker
    /// handles.  Every pool gets its full complement of workers — even a
    /// one-thread pool needs its worker so that [`PoolCore::run_install`] can
    /// serialise concurrent outside submitters through it.
    pub(crate) fn start(num_threads: usize, label: &str) -> (Arc<Self>, Vec<JoinHandle<()>>) {
        let num_threads = num_threads.max(1);
        let core = Arc::new(PoolCore {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            jobs_available: Condvar::new(),
            num_threads,
        });
        let workers = (0..num_threads)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("{label}-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (core, workers)
    }

    /// Ask the workers to exit once the queue is drained.
    pub(crate) fn shutdown(&self) {
        lock(&self.queue).shutdown = true;
        self.jobs_available.notify_all();
    }

    fn push_jobs(&self, jobs: impl IntoIterator<Item = JobRef>) {
        let mut queue = lock(&self.queue);
        queue.jobs.extend(jobs);
        drop(queue);
        self.jobs_available.notify_all();
    }

    fn try_pop(&self) -> Option<JobRef> {
        lock(&self.queue).jobs.pop_front()
    }

    /// Wake every thread sleeping on the job queue: idle workers and workers
    /// helping on a batch.  Called when a batch finishes so helpers re-check
    /// their latch; the empty lock acquisition serialises with a helper's
    /// check-then-wait window, preventing a lost wakeup.
    fn wake_sleepers(&self) {
        drop(lock(&self.queue));
        self.jobs_available.notify_all();
    }

    pub(crate) fn is_current_thread_worker(self: &Arc<Self>) -> bool {
        WORKER_OF.with(|slot| {
            slot.borrow()
                .as_ref()
                .is_some_and(|pool| Arc::ptr_eq(pool, self))
        })
    }

    /// Run `op` on one of this pool's worker threads and block until it
    /// returns.  This is how [`crate::ThreadPool::install`] enters the pool:
    /// with `op` executing *on* a worker, every parallel call it makes — and
    /// any concurrent `install` from another outside thread — is scheduled
    /// through the pool's workers, so observed parallelism never exceeds the
    /// thread cap.
    pub(crate) fn run_install<R, OP>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let mut out = self.run_batch(vec![op], &|op: OP| op());
        out.pop().expect("install batch produced no output")
    }

    /// Execute a multi-span batch on this pool and collect the outputs in span
    /// order.  Blocks until every span has finished; span panics are replayed
    /// on the calling thread afterwards.
    fn run_batch<S, T, F>(self: &Arc<Self>, spans: Vec<S>, work: &F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(S) -> T + Sync,
    {
        let count = spans.len();
        let batch = Batch::new(count);
        let slots: Vec<SpanSlot<S, T>> = spans.into_iter().map(SpanSlot::new).collect();
        let ctx = BatchCtx {
            work,
            batch: &batch,
            pool: self,
            slots: &slots,
        };
        let data: *const () = std::ptr::from_ref(&ctx).cast();
        let help = self.is_current_thread_worker();
        self.push_jobs((0..count).map(|index| JobRef {
            data,
            index,
            execute: execute_span::<S, T, F>,
        }));
        if help {
            // A worker waiting on a nested batch keeps executing queued jobs
            // (its own batch's or anyone else's) so the pool can never
            // deadlock on nested parallelism.  It sleeps on the *job queue*
            // condvar — woken by new pushes and by batch completions — so it
            // never stays asleep while work is available.
            loop {
                if batch.is_done() {
                    break;
                }
                match self.try_pop() {
                    Some(job) => job.run(),
                    None => {
                        let queue = lock(&self.queue);
                        if queue.jobs.is_empty() && !batch.is_done() {
                            drop(
                                self.jobs_available
                                    .wait(queue)
                                    .unwrap_or_else(PoisonError::into_inner),
                            );
                        }
                    }
                }
            }
        } else {
            // An outside submitter sleeps, leaving execution to the workers so
            // observed parallelism stays within the pool's thread cap.
            batch.wait_done();
        }
        if let Some(payload) = batch.take_panic() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.into_output().expect("completed span produced no output"))
            .collect()
    }
}

fn worker_loop(core: &Arc<PoolCore>) {
    WORKER_OF.with(|slot| *slot.borrow_mut() = Some(Arc::clone(core)));
    loop {
        let job = {
            let mut queue = lock(&core.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = core
                    .jobs_available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job.run(),
            None => return,
        }
    }
}

/// Completion latch for one batch of span jobs, plus the first panic payload.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    fn new(pending: usize) -> Self {
        Self {
            state: Mutex::new(BatchState {
                pending,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Mark one span complete; returns whether the batch just finished.
    fn complete_one(&self) -> bool {
        let mut state = lock(&self.state);
        state.pending -= 1;
        let finished = state.pending == 0;
        if finished {
            // Notify while still holding the lock: the submitter cannot
            // re-check the latch and free the batch until the lock is
            // released, which makes the unlock this thread's last touch of
            // the batch.
            self.done.notify_all();
        }
        finished
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut state = lock(&self.state);
        state.panic.get_or_insert(payload);
    }

    fn is_done(&self) -> bool {
        lock(&self.state).pending == 0
    }

    /// Block until every span job has completed.
    fn wait_done(&self) {
        let mut state = lock(&self.state);
        while state.pending > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.state).panic.take()
    }
}

/// Input/output cell for one span.  Each slot is touched by exactly one
/// executing thread (which takes the input and writes the output); the
/// submitter reads the output only after the batch latch has reached zero.
struct SpanSlot<S, T> {
    input: UnsafeCell<Option<S>>,
    output: UnsafeCell<Option<T>>,
}

// SAFETY: see the type docs — access to a slot is never concurrent.
#[allow(unsafe_code)]
unsafe impl<S: Send, T: Send> Sync for SpanSlot<S, T> {}

impl<S, T> SpanSlot<S, T> {
    fn new(input: S) -> Self {
        Self {
            input: UnsafeCell::new(Some(input)),
            output: UnsafeCell::new(None),
        }
    }

    fn into_output(self) -> Option<T> {
        self.output.into_inner()
    }
}

/// Everything a span job needs, shared by reference from the submitter's stack.
struct BatchCtx<'scope, S, T, F> {
    work: &'scope F,
    batch: &'scope Batch,
    pool: &'scope PoolCore,
    slots: &'scope [SpanSlot<S, T>],
}

/// Execute span `index` of the batch behind `data`.
///
/// # Safety
/// `data` must point to a live `BatchCtx<S, T, F>` whose slot `index` has not
/// been executed yet; the submitter guarantees both by blocking on the batch
/// latch until all spans complete.
#[allow(unsafe_code)]
unsafe fn execute_span<S, T, F>(data: *const (), index: usize)
where
    S: Send,
    T: Send,
    F: Fn(S) -> T + Sync,
{
    // SAFETY: the caller's contract (see `# Safety` above) guarantees `data`
    // points to a live `BatchCtx<S, T, F>`; the submitter keeps it alive on
    // its stack until the batch latch releases.
    let ctx = unsafe { &*data.cast::<BatchCtx<'_, S, T, F>>() };
    let slot = &ctx.slots[index];
    // SAFETY: each span index is enqueued exactly once, so this thread is the
    // only one touching `slot.input`; the `.take()` turns a hypothetical
    // double execution into a panic instead of a double drop.
    let input = unsafe { (*slot.input.get()).take() }.expect("span job executed twice");
    let result = catch_unwind(AssertUnwindSafe(|| (ctx.work)(input)));
    // Copy the pool pointer out of `ctx` before completing: the moment the
    // final `complete_one` lands, the submitter may return and free the
    // stack-held ctx and batch.  The pool itself outlives the batch — the
    // executing thread is one of its workers and holds an `Arc` to it.
    let pool: *const PoolCore = ctx.pool;
    let batch = ctx.batch;
    match result {
        // SAFETY: same exclusivity as the input slot — only this span's
        // executor writes `slot.output`, and the submitter only reads it
        // after the batch latch releases.
        Ok(value) => unsafe { *slot.output.get() = Some(value) },
        Err(payload) => batch.record_panic(payload),
    }
    if batch.complete_one() {
        // `batch` and `ctx` must not be touched past this point.  The batch
        // owner may be a worker asleep on the job-queue condvar (helping);
        // make sure it re-checks its latch.
        // SAFETY: `pool` was copied out of `ctx` before `complete_one`, and
        // the pool outlives the batch — this executing thread is one of its
        // workers and holds an `Arc<PoolCore>` keeping it alive.
        unsafe { (*pool).wake_sleepers() };
    }
}

/// RAII guard restoring the previously installed pool context.
pub(crate) struct InstallGuard {
    previous: Option<Arc<PoolCore>>,
}

impl InstallGuard {
    /// Install `pool` as the current thread's pool context.
    pub(crate) fn push(pool: Arc<PoolCore>) -> Self {
        let previous = INSTALLED.with(|slot| slot.borrow_mut().replace(pool));
        InstallGuard { previous }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        INSTALLED.with(|slot| *slot.borrow_mut() = previous);
    }
}
