//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this workspace has no access to crates.io, so this
//! crate provides the (small) subset of rayon's API that the workspace actually
//! uses:
//!
//! * `(a..b).into_par_iter()` with `for_each` / `map(..).collect()`,
//! * `slice.par_chunks(n)` / `par_chunks_mut(n)` / `par_iter()` with
//!   `zip` / `enumerate` / `map` / `for_each` / `collect` / `sum` / `reduce`,
//! * `ThreadPool` / `ThreadPoolBuilder` with `install`, and
//!   [`current_num_threads`].
//!
//! Unlike the earlier stand-in — which spawned fresh OS threads inside every
//! parallel call — execution happens on **persistent worker pools** (see
//! [`pool`]): a lazily-created global pool, plus dedicated pools built by
//! [`ThreadPoolBuilder::num_threads`].  Pool membership is part of a worker
//! thread's identity, so a nested parallel call made from inside a parallel
//! body runs on the same pool and respects its thread cap; range iterators
//! split by index arithmetic without materialising the index space.
//!
//! # Determinism
//!
//! Work is split into contiguous spans whose boundaries depend only on the
//! input length — never on the executing pool's size — and combining steps
//! (`collect`, `sum`, `reduce`) merge the per-span partial results in span
//! order.  Results are therefore deterministic, item order is preserved
//! exactly as rayon's indexed parallel iterators guarantee, and floating-point
//! reductions are bit-identical across pools of different thread counts.

use std::marker::PhantomData;
use std::ops::Range;

mod pool;

use pool::run_spans;

/// Split `range` into at most [`pool::MAX_SPANS`] contiguous sub-ranges.
///
/// The split depends only on the range length, which is what keeps combining
/// order (and therefore floating-point rounding) independent of the pool size.
fn split_range(range: Range<usize>) -> Vec<Range<usize>> {
    let len = range.len();
    if len == 0 {
        return Vec::new();
    }
    let per_span = len.div_ceil(len.min(pool::MAX_SPANS));
    let mut spans = Vec::with_capacity(len.div_ceil(per_span));
    let mut lo = range.start;
    while lo < range.end {
        let hi = range.end.min(lo + per_span);
        spans.push(lo..hi);
        lo = hi;
    }
    spans
}

/// Split `items` into at most [`pool::MAX_SPANS`] contiguous spans, preserving
/// order.  Like [`split_range`], the split depends only on the length.
fn split_items<I>(items: Vec<I>) -> Vec<Vec<I>> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let per_span = len.div_ceil(len.min(pool::MAX_SPANS));
    let mut spans = Vec::with_capacity(len.div_ceil(per_span));
    let mut items = items.into_iter();
    loop {
        let span: Vec<I> = items.by_ref().take(per_span).collect();
        if span.is_empty() {
            break;
        }
        spans.push(span);
    }
    spans
}

/// Number of threads the current pool context would use for a parallel call:
/// the pool installed by [`ThreadPool::install`], the pool the current thread
/// works for, or the global pool, in that order.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::current_thread_cap()
}

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel-iterator type produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.  The index space is split by
/// arithmetic on the bounds; it is never collected into a vector.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Run `f` on every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        run_spans(split_range(self.range), |span| {
            for i in span {
                f(i);
            }
        });
    }

    /// Map every index through `f`.
    pub fn map<F, R>(self, f: F) -> ParRangeMap<F, R>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
            _out: PhantomData,
        }
    }
}

/// Mapped parallel range iterator.
pub struct ParRangeMap<F, R> {
    range: Range<usize>,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<F, R> ParRangeMap<F, R>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    /// Collect the mapped values in index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        run_spans(split_range(self.range), |span| {
            span.map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Parallel iterator over an eagerly materialised item list (slices, chunks,
/// zips).  The items themselves are cheap handles (references / sub-slices);
/// only the handle list is materialised, not the underlying data.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pair this iterator's items with `other`'s, element by element.
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Pair every item with its input-order index, like
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Map every item through `f`.
    pub fn map<F, R>(self, f: F) -> ParMap<I, F, R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _out: PhantomData,
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_spans(split_items(self.items), |span| {
            for item in span {
                f(item);
            }
        });
    }
}

/// Mapped parallel iterator.
pub struct ParMap<I, F, R> {
    items: Vec<I>,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<I: Send, F, R> ParMap<I, F, R>
where
    F: Fn(I) -> R + Sync,
    R: Send,
{
    /// Collect the mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        run_spans(split_items(self.items), |span| {
            span.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Sum the mapped values (partial sums are combined in input order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let f = self.f;
        run_spans(split_items(self.items), |span| {
            span.into_iter().map(&f).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Fold the mapped values with `op`, seeding every span with `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = &self.f;
        let op_ref = &op;
        run_spans(split_items(self.items), |span| {
            span.into_iter()
                .map(f)
                .fold(identity(), |acc, v| op_ref(acc, v))
        })
        .into_iter()
        .fold(identity(), op)
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-length sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-length sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `par_iter` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element reference type.
    type Item;
    /// Parallel iterator over references to the elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; the stand-in never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `num_threads` workers.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Build the pool, spawning its persistent workers.
    ///
    /// # Errors
    /// The stand-in never fails; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
        let (core, workers) = pool::PoolCore::start(num_threads, "rayon-pool");
        Ok(ThreadPool { core, workers })
    }
}

/// A dedicated pool of persistent worker threads.
///
/// Parallel calls made inside [`ThreadPool::install`] — including calls nested
/// inside the bodies of other parallel calls, which execute on the pool's
/// workers — run on this pool and are capped at its thread count.  Dropping
/// the pool shuts the workers down after the queue drains.
pub struct ThreadPool {
    core: std::sync::Arc<pool::PoolCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` inside this pool: every parallel call made within it
    /// (directly or nested inside span bodies) uses this pool and its thread
    /// cap.
    ///
    /// Like rayon, `op` executes *on* one of the pool's worker threads — so
    /// concurrent `install` calls from different outside threads are
    /// serialised through the pool and observed parallelism stays within the
    /// cap.  If the current thread already belongs to the pool, `op` runs
    /// inline.
    pub fn install<R, OP>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if self.core.is_current_thread_worker() {
            let _guard = pool::InstallGuard::push(std::sync::Arc::clone(&self.core));
            return op();
        }
        self.core.run_install(op)
    }

    /// The pool's thread cap.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.core.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Tracks the peak number of threads simultaneously inside a section.
    #[derive(Default)]
    struct Gauge {
        active: AtomicUsize,
        peak: AtomicUsize,
    }

    impl Gauge {
        fn enter(&self) {
            let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
        }
        fn exit(&self) {
            self.active.fetch_sub(1, Ordering::SeqCst);
        }
        fn peak(&self) -> usize {
            self.peak.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn range_for_each_visits_everything() {
        let counter = AtomicUsize::new(0);
        (0..1000).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        for (i, v) in squares.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn chunk_zip_map_collect_matches_sequential() {
        let a: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i * 2) as f64).collect();
        let partial: Vec<f64> = a
            .par_chunks(128)
            .zip(b.par_chunks(128))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<f64>())
            .collect();
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((partial.iter().sum::<f64>() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn chunks_mut_for_each_writes_disjoint_spans() {
        let mut out = vec![0usize; 1000];
        let values: Vec<usize> = (0..1000).collect();
        out.par_chunks_mut(64)
            .zip(values.par_chunks(64))
            .for_each(|(o, v)| {
                for (dst, src) in o.iter_mut().zip(v) {
                    *dst = src + 1;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn enumerate_pairs_items_with_input_order_indices() {
        let mut out = vec![0usize; 500];
        out.par_chunks_mut(7).enumerate().for_each(|(k, chunk)| {
            for slot in chunk {
                *slot = k;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i / 7));
    }

    #[test]
    fn map_reduce_merges_in_order() {
        let values: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let max = values
            .par_chunks(97)
            .map(|c| c.iter().copied().fold(f64::MIN, f64::max))
            .reduce(|| f64::MIN, f64::max);
        assert_eq!(max, 4999.0);
    }

    #[test]
    fn installed_pool_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: usize = pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            (0..100).into_par_iter().map(|i| i).collect::<Vec<_>>().len()
        });
        assert_eq!(out, 100);
    }

    #[test]
    fn install_context_is_restored_after_the_call() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let outside = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn nested_parallel_calls_inherit_the_pool_cap() {
        // The regression this crate's rewrite fixes: with the old
        // spawn-per-call substrate, the cap installed by `install` was a
        // plain thread-local that spawned workers never inherited, so a
        // parallel call nested inside a parallel body ran at the machine's
        // full parallelism.  With persistent pools, workers know their pool
        // and nested calls stay within its cap.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let gauge = Gauge::default();
        pool.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                assert_eq!(current_num_threads(), 1);
                (0..64).into_par_iter().for_each(|_| {
                    gauge.enter();
                    std::thread::sleep(Duration::from_micros(50));
                    gauge.exit();
                });
            });
        });
        assert_eq!(gauge.peak(), 1);
    }

    #[test]
    fn nested_parallelism_stays_within_a_multi_thread_cap() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let gauge = Gauge::default();
        pool.install(|| {
            (0..6).into_par_iter().for_each(|_| {
                assert_eq!(current_num_threads(), 3);
                (0..32).into_par_iter().for_each(|_| {
                    gauge.enter();
                    std::thread::sleep(Duration::from_micros(50));
                    gauge.exit();
                });
            });
        });
        assert!(gauge.peak() >= 1 && gauge.peak() <= 3, "peak {}", gauge.peak());
    }

    #[test]
    fn concurrent_installs_share_the_pool_cap() {
        // Two outside threads driving the same 1-thread pool must be
        // serialised through its single worker, not run inline concurrently.
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(1).build().unwrap());
        let gauge = std::sync::Arc::new(Gauge::default());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let gauge = std::sync::Arc::clone(&gauge);
                std::thread::spawn(move || {
                    pool.install(|| {
                        (0..16).into_par_iter().for_each(|_| {
                            gauge.enter();
                            std::thread::sleep(Duration::from_micros(100));
                            gauge.exit();
                        });
                    });
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(gauge.peak(), 1);
    }

    #[test]
    fn sums_are_bit_identical_across_pool_sizes() {
        let values: Vec<f64> = (0..50_000)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 7.0)
            .collect();
        let sums: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&n| {
                let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
                pool.install(|| {
                    values
                        .par_chunks(97)
                        .map(|c| c.iter().sum::<f64>())
                        .sum::<f64>()
                        .to_bits()
                })
            })
            .collect();
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[1], sums[2]);
    }

    #[test]
    fn repeated_runs_on_one_pool_are_bit_identical() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let values: Vec<f64> = (0..30_000).map(|i| (i as f64).sin()).collect();
        let run = || {
            pool.install(|| {
                values
                    .par_chunks(128)
                    .map(|c| c.iter().sum::<f64>())
                    .sum::<f64>()
                    .to_bits()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn panics_in_parallel_bodies_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..128).into_par_iter().for_each(|i| {
                    assert!(i != 97, "boom at 97");
                });
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panic.
        let total: usize = pool.install(|| (0..100).into_par_iter().map(|i| i).collect::<Vec<_>>().len());
        assert_eq!(total, 100);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..1000).into_par_iter().for_each(|_| {});
        });
        drop(pool); // must not hang
    }

    #[test]
    fn empty_range_and_empty_slice_are_fine() {
        (0..0).into_par_iter().for_each(|_| unreachable!());
        let collected: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(collected.is_empty());
        let empty: [f64; 0] = [];
        let sum: f64 = empty.par_chunks(8).map(|c| c.iter().sum::<f64>()).sum();
        assert_eq!(sum, 0.0);
    }
}
