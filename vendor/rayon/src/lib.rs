//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this workspace has no access to crates.io, so this
//! crate provides the (small) subset of rayon's API that the workspace actually
//! uses, implemented on `std::thread::scope`:
//!
//! * `(a..b).into_par_iter()` with `for_each` / `map(..).collect()`,
//! * `slice.par_chunks(n)` / `par_chunks_mut(n)` / `par_iter()` with
//!   `zip` / `map` / `for_each` / `collect` / `sum` / `reduce`,
//! * `ThreadPool` / `ThreadPoolBuilder` with `install`.
//!
//! Work is split into one contiguous span per worker thread.  Combining steps
//! (`collect`, `sum`, `reduce`) merge the per-span partial results in span order,
//! so results are deterministic and item order is preserved exactly as rayon's
//! indexed parallel iterators guarantee.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the next parallel call should use.
fn current_threads() -> usize {
    POOL_LIMIT
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Split `items` into at most `current_threads()` contiguous spans and run `work`
/// on each span concurrently, returning the per-span outputs in span order.
fn run_spans<I: Send, T: Send>(items: Vec<I>, work: impl Fn(Vec<I>) -> T + Sync) -> Vec<T> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = current_threads().min(len);
    if threads <= 1 {
        return vec![work(items)];
    }
    let per_span = len.div_ceil(threads);
    let mut spans = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > per_span {
        let tail = rest.split_off(per_span);
        spans.push(std::mem::replace(&mut rest, tail));
    }
    spans.push(rest);
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| scope.spawn(move || work(span)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel-iterator type produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Run `f` on every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        run_spans(self.range.collect(), |span| {
            for i in span {
                f(i);
            }
        });
    }

    /// Map every index through `f`.
    pub fn map<F, R>(self, f: F) -> ParRangeMap<F, R>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
            _out: PhantomData,
        }
    }
}

/// Mapped parallel range iterator.
pub struct ParRangeMap<F, R> {
    range: Range<usize>,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<F, R> ParRangeMap<F, R>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    /// Collect the mapped values in index order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        run_spans(self.range.collect(), |span| {
            span.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Parallel iterator over an eagerly materialised item list (slices, chunks, zips).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pair this iterator's items with `other`'s, element by element.
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Map every item through `f`.
    pub fn map<F, R>(self, f: F) -> ParMap<I, F, R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _out: PhantomData,
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_spans(self.items, |span| {
            for item in span {
                f(item);
            }
        });
    }
}

/// Mapped parallel iterator.
pub struct ParMap<I, F, R> {
    items: Vec<I>,
    f: F,
    _out: PhantomData<fn() -> R>,
}

impl<I: Send, F, R> ParMap<I, F, R>
where
    F: Fn(I) -> R + Sync,
    R: Send,
{
    /// Collect the mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        run_spans(self.items, |span| {
            span.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Sum the mapped values (partial sums are combined in input order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let f = self.f;
        run_spans(self.items, |span| span.into_iter().map(&f).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Fold the mapped values with `op`, seeding every span with `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = &self.f;
        let op_ref = &op;
        run_spans(self.items, |span| {
            span.into_iter()
                .map(f)
                .fold(identity(), |acc, v| op_ref(acc, v))
        })
        .into_iter()
        .fold(identity(), op)
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-length sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-length sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `par_iter` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element reference type.
    type Item;
    /// Parallel iterator over references to the elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; the stand-in never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a capped [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `num_threads` workers.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                .max(1),
        })
    }
}

/// A worker pool that caps the parallelism of the parallel calls run inside
/// [`ThreadPool::install`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread cap applied to all parallel calls made
    /// from the current thread inside it.
    pub fn install<R, OP>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let previous = POOL_LIMIT.with(|limit| limit.replace(Some(self.num_threads)));
        let out = op();
        POOL_LIMIT.with(|limit| limit.set(previous));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_everything() {
        let counter = AtomicUsize::new(0);
        (0..1000).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        for (i, v) in squares.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn chunk_zip_map_collect_matches_sequential() {
        let a: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i * 2) as f64).collect();
        let partial: Vec<f64> = a
            .par_chunks(128)
            .zip(b.par_chunks(128))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<f64>())
            .collect();
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((partial.iter().sum::<f64>() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn chunks_mut_for_each_writes_disjoint_spans() {
        let mut out = vec![0usize; 1000];
        let values: Vec<usize> = (0..1000).collect();
        out.par_chunks_mut(64)
            .zip(values.par_chunks(64))
            .for_each(|(o, v)| {
                for (dst, src) in o.iter_mut().zip(v) {
                    *dst = src + 1;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn map_reduce_merges_in_order() {
        let values: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let max = values
            .par_chunks(97)
            .map(|c| c.iter().copied().fold(f64::MIN, f64::max))
            .reduce(|| f64::MIN, f64::max);
        assert_eq!(max, 4999.0);
    }

    #[test]
    fn installed_pool_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: usize = pool.install(|| {
            assert_eq!(current_threads(), 1);
            (0..100).into_par_iter().map(|i| i).collect::<Vec<_>>().len()
        });
        assert_eq!(out, 100);
        assert_eq!(POOL_LIMIT.with(Cell::get), None);
    }
}
