//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! Implements the subset of the API this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, `rngs::StdRng` (xoshiro256++ seeded via
//! SplitMix64, so `seed_from_u64` gives high-quality, reproducible streams) and
//! `gen_range` over float and integer ranges.
//!
//! The streams differ from upstream rand's (which uses ChaCha12 for `StdRng`);
//! nothing in this workspace depends on the exact stream, only on determinism
//! for a fixed seed.

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if value < self.end {
            value
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let value = self.start + unit * (self.end - self.start);
        if value < self.end {
            value
        } else {
            self.end.next_down()
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                // Modulo bias is negligible for the spans used here and
                // irrelevant to correctness-style tests.
                let span = u64::from(self.end.abs_diff(self.start));
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32);

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.abs_diff(self.start);
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = u64::from(self.end.abs_diff(self.start));
        self.start.wrapping_add((rng.next_u64() % span) as i32)
    }
}

/// Generators shipped with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.01..1.0);
            assert!((0.01..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn f64_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn f64_ranges_with_non_positive_ends_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..0.0);
            assert!((-1.0..0.0).contains(&v), "{v} out of range");
            let w: f64 = rng.gen_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&w), "{w} out of range");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0u64..u64::MAX);
            assert!(w < u64::MAX);
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
