//! The scheduling service end to end: one queue serving five methods, with
//! priorities, deadlines, backpressure and multi-device cost-balanced
//! dispatch.
//!
//! ```text
//! cargo run --release --example scheduling_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use pagani::prelude::*;

fn main() {
    let device = Device::new(
        DeviceConfig::test_small()
            .with_memory_capacity(32 << 20)
            .with_worker_threads(2),
    );
    let config = PaganiConfig::test_small(Tolerances::rel(1e-4));

    // --- One queue, five methods. ------------------------------------------
    // A bounded queue: at most 16 unclaimed jobs; try_submit refuses beyond
    // that instead of building an unbounded backlog.
    let service = ServiceBuilder::new(config.clone())
        .device(device.clone())
        .queue_bound(16)
        .build();

    let f: Arc<dyn Integrand + Send + Sync> = Arc::new(FnIntegrand::new(3, |x: &[f64]| {
        (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 10.0).exp()
    }));

    println!("one queue, five methods:");
    let handles: Vec<(&'static str, JobHandle)> = MethodConfig::all(Tolerances::rel(1e-3))
        .into_iter()
        .map(|method| {
            let name = method.name();
            let job = BatchJob::shared(f.clone()).with_method(method);
            let handle = service
                .try_submit(job)
                .expect("an empty queue cannot be full");
            (name, handle)
        })
        .collect();
    for (name, handle) in &handles {
        let output = handle.wait();
        println!(
            "  {name:<12} -> {:.6}  ({:?}, {} evals)",
            output.result.estimate, output.result.termination, output.result.function_evaluations
        );
    }

    // --- Priorities and deadlines. -----------------------------------------
    // A latency-sensitive job jumps the queue; a deadline turns into a
    // cooperative cancellation if the job cannot finish in time.
    let urgent = service.submit(
        BatchJob::shared(f.clone())
            .with_priority(Priority::High)
            .with_deadline(Duration::from_secs(5)),
    );
    let background = service.submit(BatchJob::shared(f.clone()).with_priority(Priority::Low));
    println!("\npriorities and deadlines:");
    println!(
        "  urgent (high, 5s deadline) -> {:?}",
        urgent.wait().result.termination
    );
    println!(
        "  background (low)           -> {:?}",
        background.wait().result.termination
    );
    service.shutdown();

    // --- Multi-device cost-balanced dispatch. ------------------------------
    // A skewed batch — heavy 5-D jobs alternating with trivial 2-D ones —
    // over two devices.  Cost-balanced dispatch splits the heavy half across
    // the pool instead of piling it onto device 0 the way round-robin does.
    let devices: Vec<Device> = (0..2)
        .map(|_| {
            Device::new(
                DeviceConfig::test_small()
                    .with_memory_capacity(32 << 20)
                    .with_worker_threads(2),
            )
        })
        .collect();
    let pool = ServiceBuilder::new(config).devices(devices).build_multi();
    let jobs: Vec<BatchJob> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                BatchJob::new(PaperIntegrand::f4(5))
            } else {
                BatchJob::new(PaperIntegrand::f3(2))
            }
        })
        .collect();
    let outputs = pool.integrate_batch(&jobs);
    println!(
        "\nmulti-device cost-balanced batch ({} devices):",
        pool.device_count()
    );
    for (job, output) in jobs.iter().zip(&outputs) {
        println!(
            "  {:<16} dim {} -> {:.6} ({:?})",
            job.integrand().name(),
            job.region().dim(),
            output.result.estimate,
            output.result.termination
        );
    }
    assert!(outputs.iter().all(|o| o.result.converged()));
    pool.shutdown();
    println!("\nall jobs converged.");
}
