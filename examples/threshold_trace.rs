//! Reproduce the paper's Figure 3: the threshold search on a five-dimensional
//! Gaussian integrand.
//!
//! PAGANI is run on 5D f4 at a demanding tolerance on a deliberately small device so
//! that the heuristic threshold classification (Algorithm 3) triggers; every candidate
//! threshold is printed with the fraction of regions it would finish and the fraction
//! of the error budget those regions would consume, mirroring the annotations of the
//! published figure.
//!
//! Run with `cargo run --release --example threshold_trace`.

use pagani::prelude::*;

fn main() {
    let integrand = PaperIntegrand::f4(5);
    // A small device forces memory pressure early, so the search runs within seconds.
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(24 << 20));
    let config = PaganiConfig::new(Tolerances::digits(6.0));
    let pagani = Pagani::new(device, config);
    let output = pagani.integrate(&integrand);

    println!("integrand : {}", integrand.label());
    println!(
        "result    : estimate {:.10e}, est.rel.err {:.2e}, converged: {}\n",
        output.result.estimate,
        output.result.relative_error_estimate(),
        output.result.converged()
    );

    if output.trace.threshold_searches.is_empty() {
        println!("the threshold classification never triggered (increase the requested digits)");
        return;
    }
    for search in &output.trace.threshold_searches {
        println!(
            "threshold search @ iteration {} (trigger: {:?}, successful: {})",
            search.iteration, search.trigger, search.successful
        );
        for (i, probe) in search.probes.iter().enumerate() {
            println!(
                "  probe {:>2}: threshold {:>12.4e}  regions finished {:>5.1}%  error budget used {:>6.1}%  {}",
                i,
                probe.threshold,
                probe.fraction_finished * 100.0,
                probe.budget_fraction * 100.0,
                if probe.accepted { "ACCEPTED" } else { "rejected" }
            );
        }
        println!();
    }
}
