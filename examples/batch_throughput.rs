//! Batch execution demo: serve a mixed bag of integration jobs through
//! `integrate_batch` and compare wall time against the equivalent sequential
//! loop.
//!
//! Run with `cargo run --release --example batch_throughput`.

use std::sync::Arc;
use std::time::Instant;

use pagani::prelude::*;

fn main() {
    // A mixed Genz workload: the request mix a batch integration service
    // would see — different families, different dimensionalities.
    let mut workload: Vec<Arc<PaperIntegrand>> = Vec::new();
    for dim in [2usize, 3, 4, 5] {
        workload.push(Arc::new(PaperIntegrand::f3(dim)));
        workload.push(Arc::new(PaperIntegrand::f4(dim)));
        workload.push(Arc::new(PaperIntegrand::f5(dim)));
        workload.push(Arc::new(PaperIntegrand::f7(dim)));
    }

    let device = Device::new(
        DeviceConfig::v100_like()
            .with_worker_threads(8)
            .with_memory_capacity(256 << 20),
    );
    let config = PaganiConfig::test_small(Tolerances::rel(1e-3));

    // Sequential: one job at a time through the single-shot API.
    let pagani = Pagani::new(device.clone(), config.clone());
    let start = Instant::now();
    let sequential: Vec<PaganiOutput> = workload
        .iter()
        .map(|f| pagani.integrate(f.as_ref()))
        .collect();
    let sequential_time = start.elapsed();

    // Batched: all jobs concurrently over the same worker pool, with
    // per-worker scratch arenas recycling buffers across jobs.
    let jobs: Vec<BatchJob> = workload
        .iter()
        .map(|f| BatchJob::shared(f.clone() as Arc<dyn Integrand + Send + Sync>))
        .collect();
    let start = Instant::now();
    let batched = pagani::integrate_batch(&device, &config, &jobs);
    let batch_time = start.elapsed();

    println!("{} jobs on an 8-worker device", workload.len());
    println!("  sequential loop : {sequential_time:>10.2?}");
    println!("  integrate_batch : {batch_time:>10.2?}");
    let speedup = sequential_time.as_secs_f64() / batch_time.as_secs_f64();
    println!("  speedup         : {speedup:>9.2}x");
    println!();
    println!(
        "{:<28} {:>14} {:>12} {:>10}",
        "integrand", "estimate", "rel err", "match"
    );
    for ((f, seq), bat) in workload.iter().zip(&sequential).zip(&batched) {
        let identical = seq.result.estimate.to_bits() == bat.result.estimate.to_bits();
        println!(
            "{:<28} {:>14.8} {:>12.2e} {:>10}",
            f.label(),
            bat.result.estimate,
            bat.result.relative_error_estimate(),
            if identical { "bit-exact" } else { "DIVERGED" },
        );
        assert!(identical, "batch result diverged from the sequential run");
    }
}
