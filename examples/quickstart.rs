//! Quick start: integrate one of the paper's test integrands with PAGANI and compare
//! the estimate against the analytic reference value.
//!
//! Run with `cargo run --release --example quickstart`.

use pagani::prelude::*;

fn main() {
    // The 5-dimensional sharp Gaussian f4 from the paper's test suite (§4.1).
    let integrand = PaperIntegrand::f4(5);
    println!("integrand        : {}", integrand.label());
    println!("analytic value   : {:.15e}", integrand.reference_value());

    // A laptop-scale simulated device; use `Device::v100_like()` for the paper's
    // 16 GiB configuration.
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(256 << 20));

    for digits in [3.0, 5.0, 7.0] {
        let config = PaganiConfig::new(Tolerances::digits(digits));
        let pagani = Pagani::new(device.clone(), config);
        let output = pagani.integrate(&integrand);
        let result = &output.result;
        println!(
            "digits {digits:>4}: estimate {:.12e}  est.rel.err {:.2e}  true.rel.err {:.2e}  \
             iterations {:>3}  regions {:>9}  {:>6} ms  converged: {}",
            result.estimate,
            result.relative_error_estimate(),
            result.true_relative_error(integrand.reference_value()),
            result.iterations,
            result.regions_generated,
            result.wall_time.as_millis(),
            result.converged(),
        );
    }
}
