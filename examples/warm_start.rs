//! The persistence layer end to end: cold run → free exact hit → warm-started
//! tighter-tolerance run.
//!
//! A service built with [`IntegrationService::with_cache`] persists every
//! converged region tree into a shared [`ResultCache`].  Resubmitting the same
//! request is then served from the cache without touching the device, and a
//! *tighter*-tolerance request for the same integral resumes from the cached
//! snapshot instead of rebuilding the tree from the root — the evaluations
//! banked by the looser run are saved outright.
//!
//! Run with `cargo run --release --example warm_start`.

use std::sync::Arc;

use pagani::prelude::*;

/// The shared workload: a 3-D Gaussian bump.  Cache keys include the
/// integrand's *name*, so give it a stable one.
fn bump() -> Arc<dyn Integrand + Send + Sync> {
    Arc::new(
        FnIntegrand::new(3, |x: &[f64]| {
            (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
        })
        .named("warm_start.bump"),
    )
}

/// A config that keeps every region active (no folding), so a converged
/// snapshot carries its whole tree and any tighter tolerance can build on it.
fn config(tolerances: Tolerances) -> PaganiConfig {
    PaganiConfig::test_small(tolerances)
        .without_rel_err_filtering()
        .with_heuristic_filtering(HeuristicFiltering::Disabled)
}

fn report(label: &str, out: &PaganiOutput) {
    println!(
        "{label:<28} est {:.10}  rel.err {:.2e}  evals {:>8}  {:>7.2} ms",
        out.result.estimate,
        out.result.relative_error_estimate(),
        out.result.function_evaluations,
        out.result.wall_time.as_secs_f64() * 1e3,
    );
}

fn main() {
    let device = Device::new(DeviceConfig::test_small().with_worker_threads(4));
    let cache = Arc::new(ResultCache::new(4 << 20));

    // ---- Cold run at a loose tolerance: pays full price, seeds the cache.
    let loose = ServiceBuilder::new(config(Tolerances::rel(1e-4)))
        .device(device.clone())
        .cache(Arc::clone(&cache))
        .build();
    let cold = loose.submit(BatchJob::shared(bump())).wait();
    report("cold @ rel 1e-4", &cold);

    // ---- Same request again: an exact hit, served without a single launch.
    let hit = loose.submit(BatchJob::shared(bump())).wait();
    report("exact hit @ rel 1e-4", &hit);
    let loose_metrics = loose.metrics();
    println!(
        "    cache: {} miss, {} hit, {} evaluations banked\n",
        loose_metrics.cache_misses, loose_metrics.cache_hits, loose_metrics.evals_saved
    );
    loose.shutdown();

    // ---- Tighter tolerance over the SAME cache: warm-starts from the
    //      persisted tree instead of starting from the root region.
    let tight = ServiceBuilder::new(config(Tolerances::rel(1e-6)))
        .device(device.clone())
        .cache(Arc::clone(&cache))
        .build();
    let warm = tight.submit(BatchJob::shared(bump())).wait();
    report("warm start @ rel 1e-6", &warm);
    let tight_metrics = tight.metrics();
    tight.shutdown();

    // What would the tighter run have cost from scratch?
    let reference = Pagani::new(device, config(Tolerances::rel(1e-6)));
    let scratch = reference.integrate(bump().as_ref());
    report("cold reference @ rel 1e-6", &scratch);

    let warm_new_evals = warm.result.function_evaluations - cold.result.function_evaluations;
    println!(
        "\nwarm starts: {}   evaluations saved by resuming: {} of {} ({}% of the tighter run)",
        tight_metrics.warm_starts,
        scratch.result.function_evaluations - warm_new_evals,
        scratch.result.function_evaluations,
        100 * (scratch.result.function_evaluations - warm_new_evals)
            / scratch.result.function_evaluations,
    );
}
