//! Distributed scheduling demo: worker *processes* behind the wire protocol.
//!
//! The binary plays both roles.  Run normally it is the front-end: it
//! re-executes itself twice with `PAGANI_WORKER_LISTEN=1` to get two worker
//! processes on loopback, shards a mixed-priority batch across them, checks
//! the results are **bit-identical** to a single-process run (pinned
//! invariant 9: the wire adds transport, never arithmetic), then kills one
//! worker mid-batch and shows the front-end requeuing its jobs on the
//! survivor.
//!
//! Run with `cargo run --release --example distributed_service`.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;

use pagani::prelude::*;
use pagani::{IntegrandRegistry, RemoteWorker};

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-5))
}

fn registry() -> Arc<IntegrandRegistry> {
    Arc::new(IntegrandRegistry::with_paper_suite(5))
}

/// Worker role: bind a service on an OS-assigned loopback port, announce it
/// on stdout, and serve until the front-end closes our stdin (or kills us).
fn worker_main() {
    let worker = RemoteWorker::bind(
        "127.0.0.1:0",
        ServiceBuilder::new(config()).device(Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(2),
        )),
        registry(),
    )
    .expect("bind the worker listener");
    // The parent parses this exact line to learn our port.
    println!("LISTENING {}", worker.local_addr());
    // Block until the parent closes our stdin — the graceful stop signal.
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    worker.shutdown();
}

/// Spawn one worker process (this same binary, in worker role) and read the
/// address it bound.
fn spawn_worker_process() -> (Child, String) {
    let exe = std::env::current_exe().expect("locate our own binary");
    let mut child = Command::new(exe)
        .env("PAGANI_WORKER_LISTEN", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn a worker process");
    let stdout: ChildStdout = child.stdout.take().expect("worker stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("worker announces its address")
        .expect("read the announcement");
    let addr = line
        .strip_prefix("LISTENING ")
        .expect("announcement format")
        .to_owned();
    (child, addr)
}

fn mixed_batch() -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    for dim in [2usize, 3, 4] {
        jobs.push(BatchJob::new(PaperIntegrand::f4(dim)).with_priority(Priority::High));
        jobs.push(BatchJob::new(PaperIntegrand::f3(dim)).with_priority(Priority::Low));
        jobs.push(BatchJob::new(PaperIntegrand::f5(dim)).with_priority(Priority::Normal));
    }
    jobs
}

fn main() {
    if std::env::var("PAGANI_WORKER_LISTEN").is_ok() {
        worker_main();
        return;
    }

    // ---- Reference: the same batch in a single process. -------------------
    let local = ServiceBuilder::new(config())
        .device(Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(2),
        ))
        .build();
    let local_outputs: Vec<PaganiOutput> = mixed_batch()
        .into_iter()
        .map(|job| local.submit(job).wait())
        .collect();
    local.shutdown();

    // ---- Two worker processes, one front-end. -----------------------------
    let (mut child_a, addr_a) = spawn_worker_process();
    let (mut child_b, addr_b) = spawn_worker_process();
    println!(
        "workers up: {addr_a} (pid {}), {addr_b} (pid {})",
        child_a.id(),
        child_b.id()
    );

    let frontend = ServiceBuilder::new(config())
        .endpoint(&addr_a)
        .endpoint(&addr_b)
        .build_distributed()
        .expect("connect to both workers");

    let remote_outputs = frontend.integrate_batch(&mixed_batch());
    let mut drift = 0usize;
    for (local_out, remote_out) in local_outputs.iter().zip(&remote_outputs) {
        if local_out.result.estimate.to_bits() != remote_out.result.estimate.to_bits()
            || local_out.result.error_estimate.to_bits()
                != remote_out.result.error_estimate.to_bits()
        {
            drift += 1;
        }
    }
    assert_eq!(
        drift, 0,
        "remote results must be bit-identical to local runs"
    );
    let metrics = frontend.metrics();
    println!(
        "sharded {} jobs across 2 worker processes: {} dispatched, 0 bits of drift",
        remote_outputs.len(),
        metrics.remote_dispatched,
    );

    // ---- Kill a worker mid-batch. -----------------------------------------
    // Tighter tolerance makes each job slow enough to still be in flight
    // when the kill lands; the front-end requeues the dead worker's jobs on
    // the survivor and every handle still completes.
    let slow: Vec<JobHandle> = (0..6)
        .map(|_| {
            frontend.submit(BatchJob::new(PaperIntegrand::f5(4)).with_priority(Priority::Normal))
        })
        .collect();
    child_a.kill().expect("kill worker a");
    let _ = child_a.wait();
    // `wait` re-raises a job that was lost outright, so every return here is
    // a completion on a surviving worker (Converged or MaxIterations — f5 is
    // the paper's hardest family and may exhaust the small test budget).
    let mut completions = [0usize; 2];
    for handle in &slow {
        let out = handle.wait();
        completions[usize::from(out.result.converged())] += 1;
    }
    println!(
        "survivor finished all 6: {} converged, {} hit the iteration budget",
        completions[1], completions[0]
    );
    let metrics = frontend.metrics();
    println!(
        "killed worker a mid-batch: {} of 6 jobs requeued on the survivor, all completed \
         ({} alive of {} endpoints)",
        metrics.remote_requeued,
        frontend.endpoints_alive(),
        frontend.endpoint_count(),
    );
    assert!(
        metrics.remote_requeued >= 1,
        "the killed worker held jobs; requeue must have happened"
    );

    frontend.shutdown();
    // Closing stdin tells the surviving worker to wind down gracefully.
    drop(child_b.stdin.take());
    let _ = child_b.wait();
    println!("done: wire transparency and crash recovery both hold");
}
