//! Head-to-head comparison of all four integrators on one paper integrand.
//!
//! This is the single-integrand version of the paper's Figures 4–6: for a sweep of
//! requested digits it prints, per method, the wall time, the estimated and the true
//! relative error, and whether the method claimed convergence.
//!
//! Run with `cargo run --release --example compare_methods [-- <integrand>]` where
//! `<integrand>` is one of `f3`, `f4`, `f5`, `f7` (default `f4`).

use pagani::prelude::*;

fn pick_integrand(name: &str) -> PaperIntegrand {
    match name {
        "f3" => PaperIntegrand::f3(3),
        "f5" => PaperIntegrand::f5(5),
        "f7" => PaperIntegrand::f7(8),
        _ => PaperIntegrand::f4(5),
    }
}

fn main() {
    let choice = std::env::args().nth(1).unwrap_or_else(|| "f4".to_owned());
    let integrand = pick_integrand(&choice);
    let reference = integrand.reference_value();
    println!(
        "integrand {}  (reference value {:.12e})\n",
        integrand.label(),
        reference
    );
    println!(
        "{:<8} {:<12} {:>10} {:>12} {:>12} {:>10}",
        "digits", "method", "time[ms]", "est.rel.err", "true.rel.err", "converged"
    );

    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(512 << 20));
    for digits in [3.0, 4.0, 5.0] {
        let tol = Tolerances::digits(digits);

        let pagani = Pagani::new(device.clone(), PaganiConfig::new(tol)).integrate(&integrand);
        print_row(digits, "PAGANI", &pagani.result, reference);

        let two_phase =
            TwoPhase::new(device.clone(), TwoPhaseConfig::new(tol)).integrate(&integrand);
        print_row(digits, "two-phase", &two_phase, reference);

        let cuhre = Cuhre::new(CuhreConfig::new(tol).with_max_evaluations(200_000_000))
            .integrate(&integrand);
        print_row(digits, "cuhre", &cuhre, reference);

        let qmc = Qmc::new(
            device.clone(),
            QmcConfig::new(tol).with_max_evaluations(50_000_000),
        )
        .integrate(&integrand);
        print_row(digits, "qmc", &qmc, reference);
        println!();
    }
}

fn print_row(digits: f64, method: &str, result: &IntegrationResult, reference: f64) {
    println!(
        "{:<8} {:<12} {:>10.1} {:>12.2e} {:>12.2e} {:>10}",
        digits,
        method,
        result.wall_time.as_secs_f64() * 1e3,
        result.relative_error_estimate(),
        result.true_relative_error(reference),
        result.converged()
    );
}
