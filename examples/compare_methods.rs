//! Head-to-head comparison of every integrator on one paper integrand.
//!
//! This is the single-integrand version of the paper's Figures 4–6, and the
//! smoke demo of the unified `Integrator` trait: every method is built from a
//! `MethodConfig` value and driven through `Box<dyn Integrator>` — one loop,
//! no per-method code.  For a sweep of requested digits it prints, per method,
//! the wall time, the estimated and the true relative error, and whether the
//! method claimed convergence.
//!
//! Run with `cargo run --release --example compare_methods [-- <integrand>]` where
//! `<integrand>` is one of `f3`, `f4`, `f5`, `f7` (default `f4`).

use pagani::prelude::*;

fn pick_integrand(name: &str) -> PaperIntegrand {
    match name {
        "f3" => PaperIntegrand::f3(3),
        "f5" => PaperIntegrand::f5(5),
        "f7" => PaperIntegrand::f7(8),
        _ => PaperIntegrand::f4(5),
    }
}

/// Every method at `tol`, with the evaluation budgets the old per-method
/// blocks used — the probabilistic methods get a cap so a hopeless tolerance
/// terminates instead of sampling forever.
fn methods(tol: Tolerances) -> Vec<MethodConfig> {
    vec![
        MethodConfig::Pagani(PaganiConfig::new(tol)),
        MethodConfig::TwoPhase(TwoPhaseConfig::new(tol)),
        MethodConfig::Cuhre(CuhreConfig::new(tol).with_max_evaluations(200_000_000)),
        MethodConfig::Qmc(QmcConfig::new(tol).with_max_evaluations(50_000_000)),
        MethodConfig::MonteCarlo(MonteCarloConfig::new(tol).with_max_evaluations(50_000_000)),
    ]
}

fn main() {
    let choice = std::env::args().nth(1).unwrap_or_else(|| "f4".to_owned());
    let integrand = pick_integrand(&choice);
    let reference = integrand.reference_value();
    println!(
        "integrand {}  (reference value {:.12e})\n",
        integrand.label(),
        reference
    );
    println!(
        "{:<8} {:<12} {:>10} {:>12} {:>12} {:>10}",
        "digits", "method", "time[ms]", "est.rel.err", "true.rel.err", "converged"
    );

    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(512 << 20));
    for digits in [3.0, 4.0, 5.0] {
        let tol = Tolerances::digits(digits);
        let integrators: Vec<Box<dyn Integrator>> = methods(tol)
            .iter()
            .map(|config| config.build(&device))
            .collect();
        for integrator in &integrators {
            let result = integrator.integrate(&integrand);
            print_row(digits, integrator.name(), &result, reference);
        }
        println!();
    }
}

fn print_row(digits: f64, method: &str, result: &IntegrationResult, reference: f64) {
    println!(
        "{:<8} {:<12} {:>10.1} {:>12.2e} {:>12.2e} {:>10}",
        digits,
        method,
        result.wall_time.as_secs_f64() * 1e3,
        result.relative_error_estimate(),
        result.true_relative_error(reference),
        result.converged()
    );
}
