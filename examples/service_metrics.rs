//! Admission & observability end to end: the service learns real wall times
//! into its cost model, refuses a deadline it knows it cannot meet, and
//! reports everything through a `ServiceMetrics` snapshot.
//!
//! ```text
//! cargo run --release --example service_metrics
//! ```

use std::time::Duration;

use pagani::prelude::*;

fn print_metrics(label: &str, m: &ServiceMetrics) {
    println!("{label}:");
    println!("  queue depth            {}", m.queue_depth);
    println!(
        "  submitted / completed  {} / {} ({} cancelled)",
        m.submitted, m.completed, m.cancelled
    );
    println!(
        "  rejected               {} queue-full, {} deadline-infeasible",
        m.rejected_queue_full, m.rejected_deadline_infeasible
    );
    println!("  deadline misses        {}", m.deadline_misses);
    println!("  outstanding predicted  {:?}", m.outstanding_predicted);
    match m.prediction_error_ewma {
        Some(error) => println!("  prediction error EWMA  {:.1}%", error * 100.0),
        None => println!("  prediction error EWMA  (no predicted completions yet)"),
    }
    for priority in [Priority::High, Priority::Normal, Priority::Low] {
        let w = m.wait(priority);
        println!(
            "  wait[{priority:?}]         count {} p50 {:?} p90 {:?} max {:?}",
            w.count, w.p50, w.p90, w.max
        );
    }
}

fn main() {
    let device = Device::new(
        DeviceConfig::test_small()
            .with_memory_capacity(32 << 20)
            .with_worker_threads(2),
    );
    let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
    let service = ServiceBuilder::new(config).device(device).build();

    // --- Train the model on real traffic. ----------------------------------
    // Each completed, uncancelled job feeds its measured wall time into the
    // service's cost model, bucketed by (integrand family, dim, digits).
    let handles: Vec<JobHandle> = (0..8)
        .map(|i| {
            let priority = if i % 4 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            service.submit(BatchJob::new(PaperIntegrand::f4(3)).with_priority(priority))
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().result.converged());
    }
    println!(
        "cost model after warm-up: {} observation(s) across {} bucket(s)\n",
        service.cost_model().observations(),
        service.cost_model().bucket_count()
    );
    print_metrics("after the warm-up traffic", &service.metrics());

    // --- Deadline-aware admission. -----------------------------------------
    // The model now prices this job family, so an impossible deadline is
    // refused up front instead of burning a worker on a doomed run.
    let doomed = BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_nanos(1));
    match service.try_submit(doomed) {
        Err(Rejected::DeadlineInfeasible(refused)) => println!(
            "\nadmission refused a 1ns deadline: predicted completion in {:?}",
            refused.estimated
        ),
        Err(Rejected::QueueFull(_)) => unreachable!("the queue is unbounded"),
        Ok(_) => unreachable!("a trained model cannot promise a 1ns integration"),
    }

    // A feasible deadline sails through the same gate.
    let relaxed = service
        .try_submit(BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_secs(60)))
        .expect("a generous deadline is feasible");
    assert!(relaxed.wait().result.converged());

    let metrics = service.metrics();
    print_metrics("\nfinal snapshot", &metrics);
    assert_eq!(metrics.rejected_deadline_infeasible, 1);
    assert_eq!(metrics.deadline_misses, 0, "every admitted deadline held");
    service.shutdown();
    println!("\nadmission held every promise it made.");
}
