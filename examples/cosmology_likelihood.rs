//! Cosmology-flavoured workload: normalise a multi-parameter Gaussian likelihood.
//!
//! The paper's motivating applications include parameter estimation for cosmological
//! models, where evidence/normalisation integrals over a handful of well-constrained
//! parameters must be computed quickly and with trustworthy error estimates.  This
//! example integrates a 6-parameter likelihood with PAGANI and sequential Cuhre and
//! reports both against the closed-form normalisation.
//!
//! Run with `cargo run --release --example cosmology_likelihood`.

use pagani::prelude::*;

fn main() {
    let likelihood = GaussianLikelihood::cosmology_like(6);
    let reference = likelihood.reference_value();
    println!("6-parameter Gaussian likelihood normalisation");
    println!("closed-form value: {reference:.15e}\n");

    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(512 << 20));
    let tolerances = Tolerances::digits(6.0);

    let pagani = Pagani::new(device, PaganiConfig::new(tolerances));
    let pagani_out = pagani.integrate(&likelihood);
    report("PAGANI", &pagani_out.result, reference);

    let cuhre = Cuhre::new(CuhreConfig::new(tolerances));
    let cuhre_result = cuhre.integrate(&likelihood);
    report("Cuhre (sequential)", &cuhre_result, reference);

    let speedup =
        cuhre_result.wall_time.as_secs_f64() / pagani_out.result.wall_time.as_secs_f64().max(1e-9);
    println!("\nPAGANI speedup over sequential Cuhre: {speedup:.1}x");
}

fn report(name: &str, result: &IntegrationResult, reference: f64) {
    println!(
        "{name:<20} estimate {:.12e}  est.rel.err {:.2e}  true.rel.err {:.2e}  evals {:>12}  {:>8.1} ms",
        result.estimate,
        result.relative_error_estimate(),
        result.true_relative_error(reference),
        result.function_evaluations,
        result.wall_time.as_secs_f64() * 1e3,
    );
}
