//! Finance workload: price a five-asset European basket call option.
//!
//! Basket options have no closed form, so practitioners cross-check deterministic
//! quadrature against (quasi-)Monte Carlo — exactly the situation in the paper's
//! introduction where error estimates matter.  The payoff is mapped onto the unit
//! cube by inverse-normal sampling, then integrated with PAGANI and with the QMC
//! baseline; the two independent methods should agree within their error estimates.
//!
//! Run with `cargo run --release --example basket_option`.

use pagani::prelude::*;

fn main() {
    let option = BasketOption::demo_basket();
    println!("five-asset basket call, strike 100, maturity 1y, r = 3%\n");

    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(512 << 20));
    let tolerances = Tolerances::digits(4.0);

    let pagani = Pagani::new(device.clone(), PaganiConfig::new(tolerances));
    let pagani_out = pagani.integrate(&option);
    println!(
        "PAGANI : price {:.6}  est.rel.err {:.2e}  regions {:>9}  {:>8.1} ms  converged: {}",
        pagani_out.result.estimate,
        pagani_out.result.relative_error_estimate(),
        pagani_out.result.regions_generated,
        pagani_out.result.wall_time.as_secs_f64() * 1e3,
        pagani_out.result.converged(),
    );

    let qmc = Qmc::new(device, QmcConfig::new(tolerances));
    let qmc_result = qmc.integrate(&option);
    println!(
        "QMC    : price {:.6}  est.rel.err {:.2e}  samples {:>9}  {:>8.1} ms  converged: {}",
        qmc_result.estimate,
        qmc_result.relative_error_estimate(),
        qmc_result.function_evaluations,
        qmc_result.wall_time.as_secs_f64() * 1e3,
        qmc_result.converged(),
    );

    let disagreement = (pagani_out.result.estimate - qmc_result.estimate).abs();
    let combined_error = pagani_out.result.error_estimate + 3.0 * qmc_result.error_estimate;
    println!(
        "\ncross-check: |PAGANI − QMC| = {disagreement:.3e} vs combined error allowance {combined_error:.3e} → {}",
        if disagreement <= combined_error { "consistent" } else { "INCONSISTENT" }
    );
}
