//! Helpers shared by the service/scheduling/batch integration-test binaries.
#![allow(dead_code)] // not every test binary uses every helper

use pagani::prelude::{Device, DeviceConfig};

/// Worker-thread counts under test.  The CI `service-stress` matrix pins a
/// single count through `PAGANI_TEST_WORKER_THREADS`; local runs sweep the
/// caller's default list.
pub fn worker_matrix(default: &[usize]) -> Vec<usize> {
    match std::env::var("PAGANI_TEST_WORKER_THREADS") {
        Ok(value) => vec![value
            .parse()
            .expect("PAGANI_TEST_WORKER_THREADS must be a positive integer")],
        Err(_) => default.to_vec(),
    }
}

/// The standard test device: small profile, 32 MiB pool, `workers` threads.
pub fn device_with_workers(workers: usize) -> Device {
    Device::new(
        DeviceConfig::test_small()
            .with_memory_capacity(32 << 20)
            .with_worker_threads(workers),
    )
}
