//! Service semantics: submit → handle, cancellation, and graceful shutdown.
//!
//! The contract under test, across `worker_threads ∈ {1, 8}` (or the single
//! count pinned by `PAGANI_TEST_WORKER_THREADS`, which the CI `service-stress`
//! matrix sets):
//!
//! * cancelled handles report `Termination::Cancelled`, and a cancellation of
//!   an in-flight job lands within one driver iteration;
//! * uncancelled results stay bit-identical to sequential `Pagani::integrate`
//!   on the same device — cancelling one job never poisons another;
//! * `shutdown()` drains every submitted job without deadlocking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pagani::prelude::*;

mod common;
use common::{device_with_workers, worker_matrix};

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-4))
}

/// An integrand that parks its first evaluation until `release` flips, and
/// raises `started` as soon as the evaluation begins — the handle tests use it
/// to hold a job deterministically in flight.
fn blocking_integrand(
    started: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
) -> FnIntegrand<impl Fn(&[f64]) -> f64 + Send + Sync> {
    FnIntegrand::new(3, move |x: &[f64]| {
        started.store(true, Ordering::Release);
        while !release.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
    })
}

#[test]
fn interleaved_cancel_and_wait_across_worker_counts() {
    for workers in worker_matrix(&[1, 8]) {
        let device = device_with_workers(workers);
        let sequential = Pagani::new(device.clone(), config());
        let integrands: Vec<Arc<PaperIntegrand>> = (0..12)
            .map(|i| match i % 3 {
                0 => Arc::new(PaperIntegrand::f4(3)),
                1 => Arc::new(PaperIntegrand::f3(3)),
                _ => Arc::new(PaperIntegrand::f5(3)),
            })
            .collect();

        let service = ServiceBuilder::new(config()).device(device).build();
        let handles: Vec<JobHandle> = integrands
            .iter()
            .map(|f| {
                service.submit(BatchJob::shared(
                    f.clone() as Arc<dyn Integrand + Send + Sync>
                ))
            })
            .collect();
        // Cancel every third job while the rest keep running.
        for handle in handles.iter().step_by(3) {
            handle.cancel();
        }
        let outputs: Vec<PaganiOutput> = handles.iter().map(|h| h.wait()).collect();
        service.shutdown();

        for (i, (f, output)) in integrands.iter().zip(&outputs).enumerate() {
            if i % 3 == 0 {
                // A cancelled handle either lost the race (already complete,
                // and then its result must match the sequential bits) or
                // reports Cancelled.
                if output.result.termination != Termination::Cancelled {
                    assert_eq!(
                        output.result.estimate.to_bits(),
                        sequential.integrate(f.as_ref()).result.estimate.to_bits(),
                        "workers {workers}, job {i}: completed-despite-cancel diverged"
                    );
                }
            } else {
                // Uncancelled jobs are never poisoned by neighbouring
                // cancellations: bit-identical to the sequential reference.
                let reference = sequential.integrate(f.as_ref());
                assert_eq!(
                    output.result.termination, reference.result.termination,
                    "workers {workers}, job {i}"
                );
                assert_eq!(
                    output.result.estimate.to_bits(),
                    reference.result.estimate.to_bits(),
                    "workers {workers}, job {i}: uncancelled job diverged"
                );
            }
        }
    }
}

#[test]
fn queued_jobs_cancel_deterministically() {
    // One worker, one blocker holding it: every job cancelled while still in
    // the queue must report Cancelled without ever running.
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let blocker = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while !started.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    let queued: Vec<JobHandle> = (0..4)
        .map(|_| service.submit(BatchJob::new(PaperIntegrand::f4(3))))
        .collect();
    for handle in &queued {
        assert!(
            handle.try_result().is_none(),
            "job ran while worker blocked"
        );
        handle.cancel();
    }
    release.store(true, Ordering::Release);
    for handle in &queued {
        let output = handle.wait();
        assert_eq!(output.result.termination, Termination::Cancelled);
        assert_eq!(output.result.function_evaluations, 0, "cancelled job ran");
    }
    // The blocker itself was never cancelled and completes normally.
    assert!(blocker.wait().result.converged());
    service.shutdown();
}

#[test]
fn in_flight_cancellation_lands_within_one_iteration() {
    // Deterministic in-flight cancel: the job is parked inside its first
    // evaluation sweep when cancel() lands, so the driver observes the flag at
    // the next iteration boundary and stops after exactly one iteration.
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    // A tolerance far beyond what one iteration can reach keeps the run alive
    // past iteration 0 if it were not cancelled.
    let tight = PaganiConfig::test_small(Tolerances::rel(1e-12));
    let service = ServiceBuilder::new(tight)
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let handle = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while !started.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    assert!(!handle.is_finished());
    handle.cancel();
    release.store(true, Ordering::Release);
    let output = handle.wait();
    assert_eq!(output.result.termination, Termination::Cancelled);
    assert_eq!(
        output.result.iterations, 1,
        "cancellation must land at the first iteration boundary"
    );
    assert!(output.result.estimate.is_finite());
    service.shutdown();
}

#[test]
fn shutdown_drains_without_deadlock() {
    for workers in worker_matrix(&[1, 8]) {
        let service = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .build();
        let handles: Vec<JobHandle> = (0..10)
            .map(|i| {
                let job = if i % 2 == 0 {
                    BatchJob::new(PaperIntegrand::f4(3))
                } else {
                    BatchJob::new(PaperIntegrand::f3(3))
                };
                service.submit(job)
            })
            .collect();
        // Shut down immediately — before waiting on anything.  Every handle
        // must still complete.
        service.shutdown();
        for handle in &handles {
            assert!(handle.is_finished(), "shutdown returned before draining");
            assert!(handle.wait().result.converged());
        }
    }
}
