//! Persistence semantics: snapshot round-trips, checkpoint/resume
//! bit-identity, cache hits without device work, warm starts and crash
//! recovery.
//!
//! The contract under test, across `worker_threads ∈ {1, 2, 8}` (or the
//! single count pinned by `PAGANI_TEST_WORKER_THREADS`, which the CI
//! `service-stress` matrix sets):
//!
//! * a [`Snapshot`] survives bytes → parse with every `f64` bit preserved;
//! * resuming from any checkpoint of a run reproduces the uninterrupted
//!   run's estimate, error, counters and termination to the bit;
//! * an exact [`ResultCache`] hit is served with **zero** device launches;
//! * a tighter-tolerance request warm-started from a converged snapshot
//!   spends measurably fewer new evaluations than a cold run;
//! * a cancelled job persists its partial region tree, and a later service
//!   sharing the cache resumes it to convergence, counting `resumed`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pagani::persist::SNAPSHOT_FORMAT_VERSION;
use pagani::prelude::*;
use pagani::{CountingBackend, CpuBackend};
use proptest::prelude::*;

mod common;
use common::{device_with_workers, worker_matrix};

/// The standard smooth workload: a 3-D Gaussian bump that needs several
/// breadth-first generations at tight tolerances.
fn bump() -> FnIntegrand<impl Fn(&[f64]) -> f64 + Send + Sync> {
    FnIntegrand::new(3, |x: &[f64]| {
        (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
    })
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Every `f64` in a snapshot — including NaNs, infinities and negative
    /// zero drawn from raw bit patterns — survives bytes → parse exactly.
    #[test]
    fn snapshot_bytes_round_trip_is_bit_exact(
        dim in 1usize..4,
        pairs in 1usize..5,
        raw in proptest::collection::vec(0u64..=u64::MAX, 128..129),
        evals in 0u64..=u64::MAX,
        generated in 0u64..=u64::MAX,
        next_iteration in 0usize..1_000_000,
        converged_bit in 0u8..2,
        with_parents_bit in 0u8..2,
        with_previous_bit in 0u8..2,
    ) {
        let converged = converged_bit == 1;
        let with_parents = with_parents_bit == 1;
        let with_previous = with_previous_bit == 1;
        let mut cursor = raw.into_iter().cycle();
        let mut f = move || f64::from_bits(cursor.next().expect("cycle never ends"));
        let regions = pairs * 2;
        let snapshot = Snapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            integrand_id: "prop \"quoted\\id\"".to_string(),
            region_lo: (0..dim).map(|_| f()).collect(),
            region_hi: (0..dim).map(|_| f()).collect(),
            rel_tol: f(),
            abs_tol: f(),
            converged,
            dim,
            lefts: (0..regions * dim).map(|_| f()).collect(),
            lengths: (0..regions * dim).map(|_| f()).collect(),
            parent_integrals: with_parents.then(|| (0..pairs).map(|_| f()).collect()),
            finished_estimate: f(),
            finished_error: f(),
            threshold_frozen_error: f(),
            function_evaluations: evals,
            regions_generated: generated,
            previous_cumulative: with_previous.then(&mut f),
            next_iteration,
            latest_estimate: f(),
            latest_error: f(),
        };
        snapshot.validate().expect("structurally valid by construction");
        let back = Snapshot::from_bytes(&snapshot.to_bytes()).expect("round trip parses");
        prop_assert_eq!(back.version, snapshot.version);
        prop_assert_eq!(&back.integrand_id, &snapshot.integrand_id);
        prop_assert_eq!(bits(&back.region_lo), bits(&snapshot.region_lo));
        prop_assert_eq!(bits(&back.region_hi), bits(&snapshot.region_hi));
        prop_assert_eq!(back.rel_tol.to_bits(), snapshot.rel_tol.to_bits());
        prop_assert_eq!(back.abs_tol.to_bits(), snapshot.abs_tol.to_bits());
        prop_assert_eq!(back.converged, snapshot.converged);
        prop_assert_eq!(back.dim, snapshot.dim);
        prop_assert_eq!(bits(&back.lefts), bits(&snapshot.lefts));
        prop_assert_eq!(bits(&back.lengths), bits(&snapshot.lengths));
        prop_assert_eq!(
            back.parent_integrals.as_deref().map(bits),
            snapshot.parent_integrals.as_deref().map(bits)
        );
        prop_assert_eq!(
            back.finished_estimate.to_bits(),
            snapshot.finished_estimate.to_bits()
        );
        prop_assert_eq!(
            back.finished_error.to_bits(),
            snapshot.finished_error.to_bits()
        );
        prop_assert_eq!(
            back.threshold_frozen_error.to_bits(),
            snapshot.threshold_frozen_error.to_bits()
        );
        prop_assert_eq!(back.function_evaluations, snapshot.function_evaluations);
        prop_assert_eq!(back.regions_generated, snapshot.regions_generated);
        prop_assert_eq!(
            back.previous_cumulative.map(f64::to_bits),
            snapshot.previous_cumulative.map(f64::to_bits)
        );
        prop_assert_eq!(back.next_iteration, snapshot.next_iteration);
        prop_assert_eq!(
            back.latest_estimate.to_bits(),
            snapshot.latest_estimate.to_bits()
        );
        prop_assert_eq!(back.latest_error.to_bits(), snapshot.latest_error.to_bits());
    }
}

/// The golden pin: checkpoint every 2 generations, push each checkpoint
/// through bytes, resume it — and land on the uninterrupted run's result to
/// the bit, at every worker count.
#[test]
fn checkpoint_resume_is_bit_identical_across_worker_counts() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-6));
        let f = bump().named("persist.golden");
        let region = Region::unit_cube(3);
        let arena = ScratchArena::new();
        let cancel = CancelToken::new();
        let pagani = Pagani::new(device, config);

        let full = pagani.integrate_resumable(&f, &region, &arena, &cancel, 2);
        assert!(full.output.result.converged(), "workers {workers}");
        assert!(
            !full.checkpoints.is_empty(),
            "workers {workers}: the run must span enough generations to checkpoint"
        );
        assert!(full.final_snapshot.is_some(), "workers {workers}");

        for (i, checkpoint) in full.checkpoints.iter().enumerate() {
            let parsed =
                Snapshot::from_bytes(&checkpoint.to_bytes()).expect("checkpoint bytes parse back");
            let resumed = pagani
                .resume_from(&f, &parsed, &arena, &cancel)
                .expect("checkpoint resumes");
            let (a, b) = (&resumed.output.result, &full.output.result);
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "workers {workers}, checkpoint {i}: estimate drifted"
            );
            assert_eq!(
                a.error_estimate.to_bits(),
                b.error_estimate.to_bits(),
                "workers {workers}, checkpoint {i}: error drifted"
            );
            assert_eq!(
                a.termination, b.termination,
                "workers {workers}, checkpoint {i}"
            );
            assert_eq!(
                a.iterations, b.iterations,
                "workers {workers}, checkpoint {i}"
            );
            assert_eq!(
                a.function_evaluations, b.function_evaluations,
                "workers {workers}, checkpoint {i}: evaluation accounting drifted"
            );
            assert_eq!(
                a.regions_generated, b.regions_generated,
                "workers {workers}, checkpoint {i}"
            );
        }
    }
}

/// A resumable run with checkpointing disabled is bit-identical to the plain
/// single-shot entry point — capture is pure data movement.
#[test]
fn resumable_run_matches_plain_run_bit_for_bit() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-6));
        let f = bump().named("persist.plain");
        let region = Region::unit_cube(3);
        let arena = ScratchArena::new();
        let cancel = CancelToken::new();
        let pagani = Pagani::new(device, config);

        let plain = pagani.integrate_region_with(&f, &region, &arena, &cancel);
        let resumable = pagani.integrate_resumable(&f, &region, &arena, &cancel, 3);
        assert_eq!(
            plain.result.estimate.to_bits(),
            resumable.output.result.estimate.to_bits(),
            "workers {workers}"
        );
        assert_eq!(
            plain.result.error_estimate.to_bits(),
            resumable.output.result.error_estimate.to_bits(),
            "workers {workers}"
        );
        assert_eq!(
            plain.result.function_evaluations, resumable.output.result.function_evaluations,
            "workers {workers}"
        );
    }
}

/// An exact cache hit never touches the device: the counting backend sees no
/// new `evaluate` launches, and the served result is the original to the bit.
#[test]
fn exact_cache_hit_performs_zero_device_launches() {
    let counting = Arc::new(CountingBackend::new(Arc::new(CpuBackend::new(
        DeviceConfig::test_small().with_worker_threads(2),
    ))));
    let device = Device::with_backend(counting.clone());
    let cache = Arc::new(ResultCache::new(1 << 20));
    let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
    let service = ServiceBuilder::new(config)
        .device(device)
        .cache(cache)
        .build();
    let job = || {
        BatchJob::shared(Arc::new(bump().named("persist.hit")) as Arc<dyn Integrand + Send + Sync>)
    };

    let first = service.submit(job()).wait();
    assert!(first.result.converged());
    let launches_after_cold = counting.launches_for("evaluate");
    assert!(launches_after_cold > 0);

    let second = service.submit(job()).wait();
    assert!(second.result.converged());
    assert_eq!(
        counting.launches_for("evaluate"),
        launches_after_cold,
        "a cache hit must not launch evaluation kernels"
    );
    assert_eq!(
        second.result.estimate.to_bits(),
        first.result.estimate.to_bits()
    );
    assert_eq!(
        second.result.error_estimate.to_bits(),
        first.result.error_estimate.to_bits()
    );
    assert_eq!(
        second.result.function_evaluations,
        first.result.function_evaluations
    );

    let metrics = service.metrics();
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert!(metrics.checkpoints_written >= 1);
    assert_eq!(metrics.evals_saved, first.result.function_evaluations);
    service.shutdown();
}

/// Warm-starting a tighter-tolerance request from a converged looser
/// snapshot converges on strictly fewer *new* evaluations than a cold run.
#[test]
fn tighter_tolerance_warm_start_saves_evaluations() {
    let device = device_with_workers(4);
    let f = bump().named("persist.warm");
    let region = Region::unit_cube(3);
    let arena = ScratchArena::new();
    let cancel = CancelToken::new();

    // Keep every region active (no rel-err folding, no heuristic filtering):
    // the snapshot then carries the whole tree with zero frozen error, so
    // the tighter run can always build on it.
    let unfolded = |tol| {
        PaganiConfig::test_small(tol)
            .without_rel_err_filtering()
            .with_heuristic_filtering(HeuristicFiltering::Disabled)
    };
    let loose = Pagani::new(device.clone(), unfolded(Tolerances::rel(1e-4)));
    let banked = loose.integrate_resumable(&f, &region, &arena, &cancel, 0);
    assert!(banked.output.result.converged());
    let snapshot = banked
        .final_snapshot
        .expect("a converged run leaves a snapshot");

    let tight = Pagani::new(device, unfolded(Tolerances::rel(1e-6)));
    let cold = tight.integrate_resumable(&f, &region, &arena, &cancel, 0);
    assert!(cold.output.result.converged());
    let warm = tight
        .resume_from(&f, &snapshot, &arena, &cancel)
        .expect("converged snapshot warm-starts the tighter run");
    assert!(warm.output.result.converged());

    let new_evals = warm
        .output
        .result
        .function_evaluations
        .checked_sub(snapshot.function_evaluations)
        .expect("resumed counters continue from the snapshot");
    assert!(
        new_evals < cold.output.result.function_evaluations,
        "warm start spent {new_evals} new evaluations, cold spent {}",
        cold.output.result.function_evaluations
    );
}

/// Crash recovery: a cancelled job persists its partial region tree to the
/// shared cache; a fresh service over the same cache resumes it to
/// convergence and counts the warm start and the resume.
#[test]
fn cancelled_job_persists_partial_tree_for_retry() {
    let cache = Arc::new(ResultCache::new(1 << 20));
    let config = PaganiConfig::test_small(Tolerances::rel(1e-7));
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let f = {
        let (started, release) = (started.clone(), release.clone());
        // Parks the very first evaluation until `release` flips, so the
        // cancellation deterministically lands while the job is in flight.
        Arc::new(
            FnIntegrand::new(3, move |x: &[f64]| {
                if !started.swap(true, Ordering::AcqRel) {
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
            })
            .named("persist.recover"),
        ) as Arc<dyn Integrand + Send + Sync>
    };

    let service = ServiceBuilder::new(config.clone())
        .device(device_with_workers(2))
        .cache(Arc::clone(&cache))
        .build();
    let handle = service.submit(BatchJob::shared(f.clone()));
    while !started.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    handle.cancel();
    release.store(true, Ordering::Release);
    let shed = handle.wait();
    assert_eq!(shed.result.termination, Termination::Cancelled);
    let shed_metrics = service.metrics();
    assert_eq!(shed_metrics.cancelled, 1);
    assert!(
        shed_metrics.checkpoints_written >= 1,
        "the cancelled job must persist its partial tree"
    );
    service.shutdown();
    assert!(!cache.is_empty());

    // "Restart": a new service over the surviving cache picks the job up
    // from the persisted tree instead of starting over.
    let recovered = ServiceBuilder::new(config)
        .device(device_with_workers(2))
        .cache(Arc::clone(&cache))
        .build();
    let retry = recovered.submit(BatchJob::shared(f)).wait();
    assert!(retry.result.converged());
    let metrics = recovered.metrics();
    assert!(
        metrics.warm_starts >= 1,
        "retry must warm-start: {metrics:?}"
    );
    assert!(
        metrics.resumed >= 1,
        "a non-converged snapshot resume must count as resumed: {metrics:?}"
    );
    assert!(metrics.evals_saved > 0);
    recovered.shutdown();
}

/// The multi-device pool shares one cache across lanes: work done by any
/// lane serves exact hits pool-wide, visible in the per-lane metrics sum.
#[test]
fn multi_device_pool_shares_one_cache() {
    let cache = Arc::new(ResultCache::new(1 << 20));
    let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
    let service = ServiceBuilder::new(config)
        .devices([device_with_workers(2), device_with_workers(2)])
        .dispatch(DispatchMode::RoundRobin)
        .cache(Arc::clone(&cache))
        .build_multi();
    let job = || {
        BatchJob::shared(Arc::new(bump().named("persist.pool")) as Arc<dyn Integrand + Send + Sync>)
    };
    let first = service.submit(job()).wait();
    assert!(first.result.converged());
    // Round-robin sends the second submission to the *other* lane; only the
    // shared cache can serve it without recomputing.
    let second = service.submit(job()).wait();
    assert_eq!(
        second.result.estimate.to_bits(),
        first.result.estimate.to_bits()
    );
    let totals = service.metrics();
    let hits: u64 = totals.iter().map(|m| m.cache_hits).sum();
    assert_eq!(hits, 1);
    assert!(service.result_cache().is_some());
    service.shutdown();
}
