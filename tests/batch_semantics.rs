//! Batch- and service-execution semantics: concurrent execution must be a
//! pure throughput optimisation.  For every tested worker count, the outputs
//! of a batch run — and the completed results of service-submitted jobs — are
//! **bit-identical** to running the same jobs sequentially through the
//! single-shot API on the same device, and identical across worker counts,
//! extending the determinism guarantee of the execution substrate (PR 2) to
//! whole concurrent jobs.

use std::sync::Arc;

use pagani::prelude::*;

/// The value-carrying fields of an output; everything except wall time.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Fingerprint {
    estimate_bits: u64,
    error_bits: u64,
    termination: Termination,
    iterations: usize,
    function_evaluations: u64,
    regions_generated: u64,
    active_regions_final: usize,
    trace_len: usize,
}

fn fingerprint(output: &PaganiOutput) -> Fingerprint {
    Fingerprint {
        estimate_bits: output.result.estimate.to_bits(),
        error_bits: output.result.error_estimate.to_bits(),
        termination: output.result.termination,
        iterations: output.result.iterations,
        function_evaluations: output.result.function_evaluations,
        regions_generated: output.result.regions_generated,
        active_regions_final: output.result.active_regions_final,
        trace_len: output.trace.iterations.len(),
    }
}

mod common;
use common::{device_with_workers, worker_matrix};

/// A mixed single-sign workload: different families, dimensions and scales.
fn workload() -> Vec<Arc<PaperIntegrand>> {
    vec![
        Arc::new(PaperIntegrand::f3(3)),
        Arc::new(PaperIntegrand::f4(4)),
        Arc::new(PaperIntegrand::f5(3)),
        Arc::new(PaperIntegrand::f7(4)),
        Arc::new(PaperIntegrand::f4(3)),
        Arc::new(PaperIntegrand::f3(2)),
    ]
}

fn jobs_for(workload: &[Arc<PaperIntegrand>]) -> Vec<BatchJob> {
    workload
        .iter()
        .map(|f| BatchJob::shared(f.clone() as Arc<dyn Integrand + Send + Sync>))
        .collect()
}

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-4))
}

#[test]
fn batch_is_bit_identical_to_sequential_across_worker_counts() {
    let jobs_src = workload();
    let mut per_worker_fingerprints: Vec<Vec<Fingerprint>> = Vec::new();

    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);

        // Sequential reference: one job at a time through the plain API.
        let pagani = Pagani::new(device.clone(), config());
        let sequential: Vec<Fingerprint> = jobs_src
            .iter()
            .map(|f| fingerprint(&pagani.integrate(f.as_ref())))
            .collect();

        // The same jobs as one concurrent batch on the same device.
        let batched = pagani::integrate_batch(&device, &config(), &jobs_for(&jobs_src));
        let batched: Vec<Fingerprint> = batched.iter().map(fingerprint).collect();

        assert_eq!(
            sequential, batched,
            "batch diverged from sequential at worker_threads = {workers}"
        );
        per_worker_fingerprints.push(batched);
    }

    // And the whole batch is identical across worker counts (trivially so
    // when the env var pins a single count).
    for pair in per_worker_fingerprints.windows(2) {
        assert_eq!(pair[0], pair[1], "fingerprints differ across worker counts");
    }
}

#[test]
fn service_handles_are_bit_identical_to_sequential() {
    // The acceptance pin of the async front door: results delivered through
    // `IntegrationService::submit` handles match the sequential single-shot
    // API bit for bit, for every worker count.
    let jobs_src = workload();
    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);
        let pagani = Pagani::new(device.clone(), config());
        let sequential: Vec<Fingerprint> = jobs_src
            .iter()
            .map(|f| fingerprint(&pagani.integrate(f.as_ref())))
            .collect();

        let service = ServiceBuilder::new(config()).device(device).build();
        let handles: Vec<JobHandle> = jobs_for(&jobs_src)
            .into_iter()
            .map(|job| service.submit(job))
            .collect();
        let served: Vec<Fingerprint> = handles
            .iter()
            .map(|handle| fingerprint(&handle.wait()))
            .collect();
        service.shutdown();

        assert_eq!(
            sequential, served,
            "service results diverged from sequential at worker_threads = {workers}"
        );
    }
}

#[test]
fn repeated_batches_on_one_runner_are_bit_identical() {
    // Arena recycling across runs must not leak state into results: the
    // second batch on the same runner must reproduce the first bit for bit.
    let jobs_src = workload();
    let jobs = jobs_for(&jobs_src);
    let runner = BatchRunner::new(device_with_workers(2), config());
    let first: Vec<Fingerprint> = runner.run(&jobs).iter().map(fingerprint).collect();
    let second: Vec<Fingerprint> = runner.run(&jobs).iter().map(fingerprint).collect();
    assert_eq!(first, second);
}

#[test]
fn oversubscribed_concurrency_is_gated_not_oversubscribed() {
    // Concurrency far above the worker count: the FIFO gate admits at most a
    // pool's worth of jobs at once, and results stay bit-identical.
    let jobs_src = workload();
    let jobs = jobs_for(&jobs_src);
    let device = device_with_workers(2);
    assert_eq!(device.submission_gate().capacity(), 2);
    let gated = BatchRunner::new(device.clone(), config())
        .with_concurrency(16)
        .run(&jobs);
    let pagani = Pagani::new(device.clone(), config());
    for (f, out) in jobs_src.iter().zip(&gated) {
        assert_eq!(
            fingerprint(&pagani.integrate(f.as_ref())),
            fingerprint(out),
            "gated oversubscription changed a result"
        );
    }
    assert_eq!(device.submission_gate().in_flight(), 0);
}

#[test]
fn multi_device_batch_matches_single_device_batch() {
    let jobs_src = workload();
    let jobs = jobs_for(&jobs_src);
    let single: Vec<Fingerprint> =
        pagani::integrate_batch(&device_with_workers(2), &config(), &jobs)
            .iter()
            .map(fingerprint)
            .collect();
    let multi = MultiDevicePagani::new((0..3).map(|_| device_with_workers(2)).collect(), config());
    let sharded: Vec<Fingerprint> = multi
        .integrate_batch(&jobs)
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(
        single, sharded,
        "sharding jobs across devices changed results"
    );
}
