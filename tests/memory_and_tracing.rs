//! Integration tests of the device-memory behaviour and execution tracing that the
//! paper's evaluation leans on (memory exhaustion, threshold rescue, kernel profile).

use pagani::prelude::*;
use pagani_core::trace::ThresholdTrigger;

#[test]
fn device_memory_is_fully_released_after_a_run() {
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20));
    let pagani = Pagani::new(
        device.clone(),
        PaganiConfig::test_small(Tolerances::rel(1e-4)),
    );
    let _ = pagani.integrate(&PaperIntegrand::f4(4));
    assert_eq!(
        device.memory().usage().used,
        0,
        "region lists must be freed when the run ends"
    );
    assert!(device.memory().usage().peak > 0);
}

#[test]
fn constrained_memory_triggers_threshold_classification_or_clean_exhaustion() {
    // A 5-D Gaussian at six digits cannot fit a tiny device without the heuristic;
    // PAGANI must either rescue itself (threshold searches appear in the trace) or
    // stop cleanly with a memory-exhaustion flag — never panic.
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(2 << 20));
    let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-6)));
    let out = pagani.integrate(&PaperIntegrand::f4(5));
    let rescued = out
        .trace
        .threshold_searches
        .iter()
        .any(|s| s.trigger == ThresholdTrigger::MemoryPressure);
    match out.result.termination {
        Termination::Converged => assert!(rescued || out.result.iterations < 20),
        Termination::MemoryExhausted | Termination::MaxIterations => {}
        Termination::MaxEvaluations => panic!("PAGANI has no evaluation budget"),
        Termination::Cancelled => panic!("nothing cancelled this run"),
    }
    assert!(out.result.estimate.is_finite());
}

#[test]
fn disabling_the_heuristic_reproduces_the_no_filtering_failure_mode() {
    // Figure 8: without heuristic filtering the sharp Gaussian exhausts a small device.
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(2 << 20));
    let config = PaganiConfig::test_small(Tolerances::rel(1e-7))
        .with_heuristic_filtering(HeuristicFiltering::Disabled);
    let out = Pagani::new(device, config).integrate(&PaperIntegrand::f4(5));
    assert!(
        !out.result.converged(),
        "without filtering this configuration should not converge"
    );
    assert_eq!(out.result.termination, Termination::MemoryExhausted);
}

#[test]
fn kernel_profile_supports_the_breakdown_experiment() {
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20));
    let pagani = Pagani::new(
        device.clone(),
        PaganiConfig::test_small(Tolerances::rel(1e-5)),
    );
    let _ = pagani.integrate(&PaperIntegrand::f4(4));
    let profile = device.profile();
    // The four §4.3.2 categories are all present...
    assert!(profile.kernel("evaluate").is_some());
    assert!(profile.fraction_for_prefix("postprocess") > 0.0);
    assert!(profile.fraction_for_prefix("filter") > 0.0);
    // ...and evaluation dominates the other categories.
    let evaluate = profile.fraction_for_prefix("evaluate");
    assert!(
        evaluate > profile.fraction_for_prefix("postprocess"),
        "evaluate ({evaluate}) should dominate post-processing"
    );
}

#[test]
fn trace_region_counts_are_consistent_with_the_result_counters() {
    let device = Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20));
    let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)));
    let out = pagani.integrate(&PaperIntegrand::f3(3));
    let processed = out.trace.total_regions_processed();
    assert!(processed >= out.trace.peak_regions() as u64);
    // Every processed region cost exactly one rule application.
    let per_region = pagani::quadrature::GenzMalik::new(3).num_points() as u64;
    assert_eq!(out.result.function_evaluations, processed * per_region);
}

#[test]
fn identical_configurations_give_identical_estimates() {
    // The breadth-first algorithm with deterministic reductions must be bit-stable
    // across runs (important for the benchmark harness).
    let run = || {
        let device = Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20));
        Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-5)))
            .integrate(&PaperIntegrand::f4(4))
            .result
    };
    let a = run();
    let b = run();
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.error_estimate.to_bits(), b.error_estimate.to_bits());
    assert_eq!(a.regions_generated, b.regions_generated);
}
