//! Integration tests spanning all crates: the four integrators must agree with each
//! other and with the analytic references on the paper's test suite (scaled down to
//! dimensions/tolerances that stay fast in debug builds).

use pagani::prelude::*;

fn small_device() -> Device {
    Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20))
}

fn pagani(tol: f64) -> Pagani {
    Pagani::new(
        small_device(),
        PaganiConfig::test_small(Tolerances::rel(tol)),
    )
}

fn cuhre(tol: f64) -> Cuhre {
    Cuhre::new(CuhreConfig::new(Tolerances::rel(tol)).with_max_evaluations(30_000_000))
}

#[test]
fn pagani_and_cuhre_agree_on_the_low_dimensional_suite() {
    let cases = [
        PaperIntegrand::f3(3),
        PaperIntegrand::f4(3),
        PaperIntegrand::f5(3),
        PaperIntegrand::f7(3),
    ];
    for integrand in cases {
        let tol = 1e-5;
        let p = pagani(tol).integrate(&integrand);
        let c = cuhre(tol).integrate(&integrand);
        assert!(
            p.result.converged(),
            "PAGANI failed on {}",
            integrand.label()
        );
        assert!(c.converged(), "Cuhre failed on {}", integrand.label());
        let reference = integrand.reference_value();
        assert!(
            p.result.true_relative_error(reference) < tol,
            "PAGANI inaccurate on {}",
            integrand.label()
        );
        assert!(
            c.true_relative_error(reference) < tol,
            "Cuhre inaccurate on {}",
            integrand.label()
        );
        // The two estimates agree with each other within combined error estimates.
        let disagreement = (p.result.estimate - c.estimate).abs();
        assert!(
            disagreement <= (p.result.error_estimate + c.error_estimate).max(tol * reference.abs()),
            "methods disagree on {}: {disagreement}",
            integrand.label()
        );
    }
}

#[test]
fn all_methods_hit_three_digits_on_the_5d_gaussian() {
    let integrand = PaperIntegrand::f4(5);
    let reference = integrand.reference_value();
    let tol = 1e-3;

    let p = pagani(tol).integrate(&integrand);
    assert!(p.result.converged());
    assert!(p.result.true_relative_error(reference) < tol);

    let t = TwoPhase::new(
        small_device(),
        TwoPhaseConfig::test_small(Tolerances::rel(tol)),
    )
    .integrate(&integrand);
    assert!(t.converged(), "two-phase failed: {:?}", t.termination);
    assert!(t.true_relative_error(reference) < tol);

    // §4.3 of the paper notes the QMC baseline does *not* correctly evaluate 5D f4 at
    // three digits; assert only that it terminates cleanly and, if it does claim
    // convergence, that the claim is honest (within a statistical slack factor).
    let q = Qmc::new(
        small_device(),
        QmcConfig::new(Tolerances::rel(tol)).with_max_evaluations(2_000_000),
    )
    .integrate(&integrand);
    assert!(q.estimate.is_finite());
    if q.converged() {
        assert!(q.true_relative_error(reference) < 10.0 * tol);
    }
}

#[test]
fn oscillatory_integrand_requires_the_documented_flag() {
    // §3.5.1: for sign-oscillating integrands relative-error filtering must be off.
    let integrand = PaperIntegrand::f1(4);
    let tol = 1e-4;
    let config = PaganiConfig::test_small(Tolerances::rel(tol)).without_rel_err_filtering();
    let out = Pagani::new(small_device(), config).integrate(&integrand);
    assert!(out.result.converged());
    assert!(out.result.true_relative_error(integrand.reference_value()) < tol);
}

#[test]
fn estimated_errors_do_not_understate_true_errors_at_convergence() {
    // The §4.2 accuracy criterion: when a method claims convergence at τ_rel, its true
    // relative error should also be at or below τ_rel (for the well-behaved members).
    let tol = 1e-4;
    for integrand in [
        PaperIntegrand::f3(3),
        PaperIntegrand::f4(4),
        PaperIntegrand::f5(4),
    ] {
        let reference = integrand.reference_value();
        let p = pagani(tol).integrate(&integrand);
        if p.result.converged() {
            assert!(
                p.result.true_relative_error(reference) <= tol,
                "{}: true error {} above claimed tolerance",
                integrand.label(),
                p.result.true_relative_error(reference)
            );
        }
        let c = cuhre(tol).integrate(&integrand);
        if c.converged() {
            assert!(
                c.true_relative_error(reference) <= tol,
                "{}",
                integrand.label()
            );
        }
    }
}

#[test]
fn pagani_is_no_less_robust_than_two_phase_on_a_constrained_device() {
    // The paper's robustness claim in miniature: on a memory-constrained device at a
    // demanding tolerance, whenever the two-phase method converges PAGANI does too.
    let integrand = PaperIntegrand::f4(4);
    let tol = 1e-6;
    let pagani_result = Pagani::new(
        Device::new(DeviceConfig::test_small().with_memory_capacity(16 << 20)),
        PaganiConfig::test_small(Tolerances::rel(tol)),
    )
    .integrate(&integrand);
    let two_phase_result = TwoPhase::new(
        Device::new(DeviceConfig::test_small().with_memory_capacity(16 << 20)),
        TwoPhaseConfig::test_small(Tolerances::rel(tol)),
    )
    .integrate(&integrand);
    if two_phase_result.converged() {
        assert!(
            pagani_result.result.converged(),
            "two-phase converged but PAGANI did not"
        );
    }
    // Regardless of convergence, both must produce finite, sane estimates.
    assert!(pagani_result.result.estimate.is_finite());
    assert!(two_phase_result.estimate.is_finite());
}

#[test]
fn workload_integrands_are_consistent_across_methods() {
    // Scaled-down version of `workload_integrands_full_size` (which is
    // `#[ignore]`d and run in release mode by the CI smoke job): same
    // assertions, one dimension / one asset fewer and smaller evaluation
    // budgets so the debug-mode suite stays fast.
    let like = GaussianLikelihood::cosmology_like(3);
    let tol = 1e-4;
    let p = pagani(tol).integrate(&like);
    let c = cuhre(tol).integrate(&like);
    assert!(p.result.converged());
    assert!(c.converged());
    assert!(p.result.true_relative_error(like.reference_value()) < tol);
    assert!(c.true_relative_error(like.reference_value()) < tol);

    // A small equally-weighted basket like `demo_basket`, one asset shorter.
    let option = BasketOption::new(
        vec![100.0; 4],
        vec![0.25; 4],
        vec![0.2, 0.25, 0.3, 0.35],
        100.0,
        0.03,
        1.0,
    );
    let q = Qmc::new(
        small_device(),
        QmcConfig::new(Tolerances::rel(1e-3)).with_max_evaluations(1_000_000),
    )
    .integrate(&option);
    let p_option = Pagani::new(
        Device::new(DeviceConfig::test_small().with_memory_capacity(128 << 20)),
        PaganiConfig::test_small(Tolerances::rel(1e-3)),
    )
    .integrate(&option);
    assert!(q.estimate.is_finite() && q.estimate > 0.0);
    assert!(p_option.result.estimate.is_finite() && p_option.result.estimate > 0.0);
    let disagreement = (q.estimate - p_option.result.estimate).abs();
    assert!(
        disagreement <= 5.0 * (q.error_estimate + p_option.result.error_estimate).max(1e-3),
        "PAGANI {} vs QMC {}",
        p_option.result.estimate,
        q.estimate
    );
}

#[test]
#[ignore = "long tail (~minutes in debug): full-size workload consistency, run in release by the CI smoke job"]
fn workload_integrands_full_size() {
    let like = GaussianLikelihood::cosmology_like(4);
    let tol = 1e-4;
    let p = pagani(tol).integrate(&like);
    let c = cuhre(tol).integrate(&like);
    assert!(p.result.converged());
    assert!(c.converged());
    assert!(p.result.true_relative_error(like.reference_value()) < tol);
    assert!(c.true_relative_error(like.reference_value()) < tol);

    let option = BasketOption::demo_basket();
    let q = Qmc::new(
        small_device(),
        QmcConfig::new(Tolerances::rel(1e-3)).with_max_evaluations(5_000_000),
    )
    .integrate(&option);
    let p_option = Pagani::new(
        Device::new(DeviceConfig::test_small().with_memory_capacity(128 << 20)),
        PaganiConfig::test_small(Tolerances::rel(1e-3)),
    )
    .integrate(&option);
    assert!(q.estimate.is_finite() && q.estimate > 0.0);
    assert!(p_option.result.estimate.is_finite() && p_option.result.estimate > 0.0);
    let disagreement = (q.estimate - p_option.result.estimate).abs();
    assert!(
        disagreement <= 5.0 * (q.error_estimate + p_option.result.error_estimate).max(1e-3),
        "PAGANI {} vs QMC {}",
        p_option.result.estimate,
        q.estimate
    );
}
