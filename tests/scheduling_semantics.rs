//! Scheduling-layer semantics: one queue serving all five methods,
//! backpressure, deadlines, priorities and multi-device dispatch.
//!
//! The contract under test, across the worker-thread matrix (overridable via
//! `PAGANI_TEST_WORKER_THREADS`, which the CI `service-stress` job sets):
//!
//! * a per-job [`MethodConfig`] override routes the job through the matching
//!   `Box<dyn Integrator>` — and the answer matches running that method
//!   directly, bit for bit;
//! * cancellation is uniform: whatever the method, a cancelled job reports
//!   `Termination::Cancelled`;
//! * `try_submit` refuses with `QueueFull` at exactly the policy bound;
//! * a deadline landing mid-run cancels with partial statistics intact;
//! * priorities reorder claims but never starve a queued job;
//! * `MultiDeviceService` round-robin placement is pinned (job `i` on device
//!   `i mod n`) and cost-balanced placement never changes a result.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pagani::prelude::*;

mod common;
use common::{device_with_workers, worker_matrix};

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-4))
}

/// All five method configurations at a tolerance every method can reach on an
/// easy integrand.
fn all_methods() -> Vec<MethodConfig> {
    MethodConfig::all(Tolerances::rel(1e-3))
}

/// An integrand that parks its first evaluation until `release` flips and
/// counts how many evaluations have started.
fn blocking_integrand(
    started: Arc<AtomicUsize>,
    release: Arc<AtomicBool>,
) -> FnIntegrand<impl Fn(&[f64]) -> f64 + Send + Sync> {
    FnIntegrand::new(3, move |x: &[f64]| {
        started.fetch_add(1, Ordering::AcqRel);
        while !release.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
    })
}

#[test]
fn one_queue_serves_all_five_methods() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);
        let service = IntegrationService::new(device.clone(), config());
        let f: Arc<dyn Integrand + Send + Sync> =
            Arc::new(FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]));
        let handles: Vec<(MethodConfig, JobHandle)> = all_methods()
            .into_iter()
            .map(|method| {
                let job = BatchJob::shared(f.clone()).with_method(method.clone());
                (method, service.submit(job))
            })
            .collect();
        for (method, handle) in &handles {
            let output = handle.wait();
            assert!(
                output.result.converged(),
                "workers {workers}: {} did not converge through the queue",
                method.name()
            );
            assert!(
                (output.result.estimate - 1.25).abs() < 5e-3,
                "workers {workers}: {} estimate {}",
                method.name(),
                output.result.estimate
            );
            // The served answer is bit-identical to building and running the
            // method directly on an equivalent isolated view.
            let direct = method
                .build(&device.isolated_memory_view())
                .integrate(f.as_ref());
            assert_eq!(
                output.result.estimate.to_bits(),
                direct.estimate.to_bits(),
                "workers {workers}: {} diverged from its direct run",
                method.name()
            );
        }
        service.shutdown();
    }
}

#[test]
fn cancellation_is_uniform_across_methods() {
    // One worker parked on a blocker; one queued job per method, all
    // cancelled while still queued: every method reports Cancelled without
    // running.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = IntegrationService::with_workers(device_with_workers(1), config(), 1);
    let blocker = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    let f: Arc<dyn Integrand + Send + Sync> =
        Arc::new(FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]));
    let doomed: Vec<(MethodConfig, JobHandle)> = all_methods()
        .into_iter()
        .map(|method| {
            let handle = service.submit(BatchJob::shared(f.clone()).with_method(method.clone()));
            (method, handle)
        })
        .collect();
    for (_, handle) in &doomed {
        handle.cancel();
    }
    release.store(true, Ordering::Release);
    for (method, handle) in &doomed {
        let output = handle.wait();
        assert_eq!(
            output.result.termination,
            Termination::Cancelled,
            "{} did not report Cancelled",
            method.name()
        );
        assert_eq!(
            output.result.function_evaluations,
            0,
            "{} ran despite the queued cancel",
            method.name()
        );
    }
    assert!(blocker.wait().result.converged());
    service.shutdown();
}

#[test]
fn in_flight_cancel_lands_for_a_baseline_method() {
    // A Monte Carlo job (method override) parked inside its first sampling
    // round: the cancel is observed at the round boundary, not ignored.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = IntegrationService::with_workers(device_with_workers(1), config(), 1);
    let mc = MethodConfig::MonteCarlo(MonteCarloConfig::new(Tolerances::rel(1e-12)));
    let handle = service.submit(
        BatchJob::new(blocking_integrand(started.clone(), release.clone())).with_method(mc),
    );
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    handle.cancel();
    release.store(true, Ordering::Release);
    let output = handle.wait();
    assert_eq!(output.result.termination, Termination::Cancelled);
    assert!(
        output.result.function_evaluations > 0,
        "the first round's partial stats must survive"
    );
    service.shutdown();
}

#[test]
fn try_submit_refuses_at_exactly_the_bound_across_worker_counts() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let bound = 3;
        let service = IntegrationService::with_policy(
            device_with_workers(workers),
            config(),
            ServicePolicy::new()
                .with_workers(workers)
                .with_queue_bound(bound),
        );
        // Park every worker so submissions stay queued.
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let blockers: Vec<JobHandle> = (0..workers)
            .map(|_| {
                service.submit(BatchJob::new(blocking_integrand(
                    started.clone(),
                    release.clone(),
                )))
            })
            .collect();
        // Every blocker must be *claimed* (out of the queue, parked inside its
        // job) before the bound accounting below can be exact.  `started`
        // alone is not enough: one blocker's parallel evaluations can raise
        // it past `workers` while siblings still sit in the queue.
        while started.load(Ordering::Acquire) < workers || service.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        // Exactly `bound` submissions fit...
        let queued: Vec<JobHandle> = (0..bound)
            .map(|i| {
                service
                    .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
                    .unwrap_or_else(|_| panic!("workers {workers}: submission {i} refused early"))
            })
            .collect();
        assert_eq!(service.queued_jobs(), bound);
        // ...and the next is refused with the job handed back.
        let refused = service
            .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
            .expect_err("the queue is at its bound");
        assert_eq!(refused.bound, bound);
        release.store(true, Ordering::Release);
        for handle in blockers.iter().chain(&queued) {
            assert!(handle.wait().result.converged(), "workers {workers}");
        }
        service.shutdown();
    }
}

#[test]
fn deadline_mid_run_cancels_with_partial_stats_intact() {
    for workers in worker_matrix(&[1, 2]) {
        // Every evaluation dawdles, so the deadline fires mid-run; the
        // cancellation lands at the next driver iteration boundary.
        let slow = FnIntegrand::new(3, |x: &[f64]| {
            std::thread::sleep(Duration::from_micros(100));
            (x[0] * x[1] * x[2]).sin().mul_add(0.1, 1.0)
        });
        let tight = PaganiConfig::test_small(Tolerances::rel(1e-12));
        let service = IntegrationService::with_workers(device_with_workers(workers), tight, 1);
        let handle = service.submit(BatchJob::new(slow).with_deadline(Duration::from_millis(60)));
        let output = handle.wait();
        assert_eq!(
            output.result.termination,
            Termination::Cancelled,
            "workers {workers}"
        );
        assert!(output.result.iterations >= 1, "workers {workers}");
        assert!(output.result.function_evaluations > 0, "workers {workers}");
        assert!(output.result.estimate.is_finite());
        service.shutdown();
    }
}

#[test]
fn priorities_reorder_claims_but_never_starve() {
    // One worker parked on a blocker, a low-priority job submitted *first*,
    // then a stream of high-priority jobs: the highs are claimed first, but
    // the low still completes.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = IntegrationService::with_workers(device_with_workers(1), config(), 1);
    let blocker = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    let low = service.submit(BatchJob::new(PaperIntegrand::f4(3)).with_priority(Priority::Low));
    let highs: Vec<JobHandle> = (0..6)
        .map(|_| service.submit(BatchJob::new(PaperIntegrand::f3(3)).with_priority(Priority::High)))
        .collect();
    release.store(true, Ordering::Release);
    // The low-priority job is never starved: it completes.
    let low_output = low.wait();
    assert!(low_output.result.converged());
    // With a single worker, every high was claimed before the low.
    for (i, high) in highs.iter().enumerate() {
        assert!(
            high.is_finished(),
            "high-priority job {i} still pending after the low completed"
        );
        assert!(high.wait().result.converged());
    }
    assert!(blocker.wait().result.converged());
    service.shutdown();
}

#[test]
fn multi_device_round_robin_placement_is_pinned() {
    // Round-robin is the deterministic fallback: job i lands on device
    // i mod n, so with per-device distinguishable workloads the outputs must
    // be bit-identical to the same jobs run alone on their pinned device.
    let jobs: Vec<BatchJob> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                BatchJob::new(PaperIntegrand::f4(3))
            } else {
                BatchJob::new(PaperIntegrand::f3(4))
            }
        })
        .collect();
    let devices: Vec<Device> = (0..3).map(|_| device_with_workers(2)).collect();
    let service = MultiDeviceService::with_mode(devices, config(), DispatchMode::RoundRobin);
    let outputs = service.integrate_batch(&jobs);
    service.shutdown();
    let reference = Pagani::new(device_with_workers(2), config());
    for (i, (job, output)) in jobs.iter().zip(&outputs).enumerate() {
        let lone = reference.integrate_region(job.integrand(), job.region());
        assert_eq!(
            output.result.estimate.to_bits(),
            lone.result.estimate.to_bits(),
            "job {i} diverged from its pinned-device run"
        );
    }
}

#[test]
fn cost_balanced_dispatch_never_changes_results() {
    for workers in worker_matrix(&[1, 2]) {
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    BatchJob::new(PaperIntegrand::f4(4)) // heavy
                } else {
                    BatchJob::new(PaperIntegrand::f3(2)) // light
                }
            })
            .collect();
        let make_devices =
            || -> Vec<Device> { (0..2).map(|_| device_with_workers(workers)).collect() };
        let balanced = MultiDeviceService::new(make_devices(), config());
        let balanced_bits: Vec<u64> = balanced
            .integrate_batch(&jobs)
            .iter()
            .map(|o| o.result.estimate.to_bits())
            .collect();
        balanced.shutdown();
        let pinned =
            MultiDeviceService::with_mode(make_devices(), config(), DispatchMode::RoundRobin);
        let pinned_bits: Vec<u64> = pinned
            .integrate_batch(&jobs)
            .iter()
            .map(|o| o.result.estimate.to_bits())
            .collect();
        pinned.shutdown();
        assert_eq!(
            balanced_bits, pinned_bits,
            "workers {workers}: placement changed a result"
        );
    }
}
