//! Scheduling-layer semantics: one queue serving all five methods,
//! backpressure, deadlines, priorities and multi-device dispatch.
//!
//! The contract under test, across the worker-thread matrix (overridable via
//! `PAGANI_TEST_WORKER_THREADS`, which the CI `service-stress` job sets):
//!
//! * a per-job [`MethodConfig`] override routes the job through the matching
//!   `Box<dyn Integrator>` — and the answer matches running that method
//!   directly, bit for bit;
//! * cancellation is uniform: whatever the method, a cancelled job reports
//!   `Termination::Cancelled`;
//! * `try_submit` refuses with `Rejected::QueueFull` at exactly the policy
//!   bound, and with `Rejected::DeadlineInfeasible` when the measured cost
//!   model says the deadline cannot be met at the current backlog — the same
//!   job is accepted at depth 0;
//! * the cost model's EWMA convergence is a pure fold: deterministic across
//!   the worker matrix, and feedback never changes integration results;
//! * a deadline landing mid-run cancels with partial statistics intact;
//! * priorities reorder claims but never starve a queued job;
//! * `ServiceMetrics` accounts for all of the above (the `metrics_`-prefixed
//!   tests are what the CI `service-stress` job asserts on);
//! * `MultiDeviceService` round-robin placement is pinned (job `i` on device
//!   `i mod n`) and cost-balanced placement never changes a result.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pagani::prelude::*;

mod common;
use common::{device_with_workers, worker_matrix};

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-4))
}

/// All five method configurations at a tolerance every method can reach on an
/// easy integrand.
fn all_methods() -> Vec<MethodConfig> {
    MethodConfig::all(Tolerances::rel(1e-3))
}

/// An integrand that parks its first evaluation until `release` flips and
/// counts how many evaluations have started.
fn blocking_integrand(
    started: Arc<AtomicUsize>,
    release: Arc<AtomicBool>,
) -> FnIntegrand<impl Fn(&[f64]) -> f64 + Send + Sync> {
    FnIntegrand::new(3, move |x: &[f64]| {
        started.fetch_add(1, Ordering::AcqRel);
        while !release.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
    })
}

#[test]
fn one_queue_serves_all_five_methods() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let device = device_with_workers(workers);
        let service = ServiceBuilder::new(config()).device(device.clone()).build();
        let f: Arc<dyn Integrand + Send + Sync> =
            Arc::new(FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]));
        let handles: Vec<(MethodConfig, JobHandle)> = all_methods()
            .into_iter()
            .map(|method| {
                let job = BatchJob::shared(f.clone()).with_method(method.clone());
                (method, service.submit(job))
            })
            .collect();
        for (method, handle) in &handles {
            let output = handle.wait();
            assert!(
                output.result.converged(),
                "workers {workers}: {} did not converge through the queue",
                method.name()
            );
            assert!(
                (output.result.estimate - 1.25).abs() < 5e-3,
                "workers {workers}: {} estimate {}",
                method.name(),
                output.result.estimate
            );
            // The served answer is bit-identical to building and running the
            // method directly on an equivalent isolated view.
            let direct = method
                .build(&device.isolated_memory_view())
                .integrate(f.as_ref());
            assert_eq!(
                output.result.estimate.to_bits(),
                direct.estimate.to_bits(),
                "workers {workers}: {} diverged from its direct run",
                method.name()
            );
        }
        service.shutdown();
    }
}

#[test]
fn cancellation_is_uniform_across_methods() {
    // One worker parked on a blocker; one queued job per method, all
    // cancelled while still queued: every method reports Cancelled without
    // running.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let blocker = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    let f: Arc<dyn Integrand + Send + Sync> =
        Arc::new(FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]));
    let doomed: Vec<(MethodConfig, JobHandle)> = all_methods()
        .into_iter()
        .map(|method| {
            let handle = service.submit(BatchJob::shared(f.clone()).with_method(method.clone()));
            (method, handle)
        })
        .collect();
    for (_, handle) in &doomed {
        handle.cancel();
    }
    release.store(true, Ordering::Release);
    for (method, handle) in &doomed {
        let output = handle.wait();
        assert_eq!(
            output.result.termination,
            Termination::Cancelled,
            "{} did not report Cancelled",
            method.name()
        );
        assert_eq!(
            output.result.function_evaluations,
            0,
            "{} ran despite the queued cancel",
            method.name()
        );
    }
    assert!(blocker.wait().result.converged());
    service.shutdown();
}

#[test]
fn in_flight_cancel_lands_for_a_baseline_method() {
    // A Monte Carlo job (method override) parked inside its first sampling
    // round: the cancel is observed at the round boundary, not ignored.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let mc = MethodConfig::MonteCarlo(MonteCarloConfig::new(Tolerances::rel(1e-12)));
    let handle = service.submit(
        BatchJob::new(blocking_integrand(started.clone(), release.clone())).with_method(mc),
    );
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    handle.cancel();
    release.store(true, Ordering::Release);
    let output = handle.wait();
    assert_eq!(output.result.termination, Termination::Cancelled);
    assert!(
        output.result.function_evaluations > 0,
        "the first round's partial stats must survive"
    );
    service.shutdown();
}

#[test]
fn try_submit_refuses_at_exactly_the_bound_across_worker_counts() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let bound = 3;
        let service = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .workers(workers)
            .queue_bound(bound)
            .build();
        // Park every worker so submissions stay queued.
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let blockers: Vec<JobHandle> = (0..workers)
            .map(|_| {
                service.submit(BatchJob::new(blocking_integrand(
                    started.clone(),
                    release.clone(),
                )))
            })
            .collect();
        // Every blocker must be *claimed* (out of the queue, parked inside its
        // job) before the bound accounting below can be exact.  `started`
        // alone is not enough: one blocker's parallel evaluations can raise
        // it past `workers` while siblings still sit in the queue.
        while started.load(Ordering::Acquire) < workers || service.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        // Exactly `bound` submissions fit...
        let queued: Vec<JobHandle> = (0..bound)
            .map(|i| {
                service
                    .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
                    .unwrap_or_else(|_| panic!("workers {workers}: submission {i} refused early"))
            })
            .collect();
        assert_eq!(service.queued_jobs(), bound);
        // ...and the next is refused with the job handed back.
        let refused = service
            .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
            .expect_err("the queue is at its bound");
        let Rejected::QueueFull(ref full) = refused else {
            panic!("workers {workers}: expected QueueFull, got {refused:?}");
        };
        assert_eq!(full.bound, bound);
        assert_eq!(service.metrics().rejected_queue_full, 1);
        release.store(true, Ordering::Release);
        for handle in blockers.iter().chain(&queued) {
            assert!(handle.wait().result.converged(), "workers {workers}");
        }
        service.shutdown();
    }
}

/// Seed `service`'s cost model so that jobs in `key`'s bucket are predicted
/// to take exactly `predicted` — admission decisions become deterministic.
fn seed_model(service: &IntegrationService, key: &CostKey, predicted: Duration) {
    service.cost_model().record(key, predicted);
}

#[test]
fn deadline_infeasible_rejection_depends_on_queue_depth() {
    for workers in worker_matrix(&[1, 2, 8]) {
        let probe = || BatchJob::new(PaperIntegrand::f4(3));
        let key = CostKey::for_job(&probe(), config().tolerances);
        let predicted = Duration::from_millis(50);
        // The probe's deadline is 4× its own predicted duration: feasible on
        // an idle service, infeasible once the backlog alone exceeds it.
        let deadline = 4 * predicted;

        // Busy service: every worker parked, then 4×workers same-family jobs
        // queued — outstanding ≥ 4·workers·predicted, so the backlog term is
        // ≥ 4·predicted whatever the worker count and the probe cannot fit.
        let busy = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .workers(workers)
            .build();
        seed_model(&busy, &key, predicted);
        let started = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let blockers: Vec<JobHandle> = (0..workers)
            .map(|_| {
                busy.submit(BatchJob::new(blocking_integrand(
                    started.clone(),
                    release.clone(),
                )))
            })
            .collect();
        while started.load(Ordering::Acquire) < workers || busy.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        let queued: Vec<JobHandle> = (0..4 * workers).map(|_| busy.submit(probe())).collect();
        let estimated = busy
            .estimated_completion(&probe())
            .expect("a seeded model always predicts");
        assert!(estimated > deadline, "workers {workers}: backlog too small");
        let refused = busy
            .try_submit(probe().with_deadline(deadline))
            .expect_err("the backlog cannot fit the deadline");
        let Rejected::DeadlineInfeasible(ref infeasible) = refused else {
            panic!("workers {workers}: expected DeadlineInfeasible, got {refused:?}");
        };
        assert_eq!(infeasible.deadline, deadline);
        assert!(infeasible.estimated > deadline);
        assert_eq!(busy.metrics().rejected_deadline_infeasible, 1);
        // The refused job comes back intact.
        assert_eq!(refused.job().region().dim(), 3);
        release.store(true, Ordering::Release);
        for handle in blockers.iter().chain(&queued) {
            assert!(handle.wait().result.converged(), "workers {workers}");
        }
        busy.shutdown();

        // Idle service, identically seeded: the very same job is accepted at
        // queue depth 0 — its own predicted duration fits the deadline.
        let idle = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .workers(workers)
            .build();
        seed_model(&idle, &key, predicted);
        let accepted = idle
            .try_submit(probe().with_deadline(deadline))
            .unwrap_or_else(|refused| panic!("workers {workers}: idle service refused: {refused}"));
        let _ = accepted.wait();
        assert_eq!(idle.metrics().rejected_deadline_infeasible, 0);
        idle.shutdown();
    }
}

#[test]
fn ewma_cost_convergence_is_deterministic_across_worker_counts() {
    // The model's per-bucket EWMA is a pure fold: feeding the same
    // observation sequence yields bit-identical state whether the recording
    // threads number 1, 2 or 8 — concurrent recording into *distinct*
    // buckets cannot cross-contaminate.
    let observations: Vec<Duration> = (0..32)
        .map(|i| Duration::from_micros(500 + 137 * (i % 7)))
        .collect();
    let serial_fold = |key: &CostKey| -> u64 {
        let model = CostModel::new();
        for &obs in &observations {
            model.record(key, obs);
        }
        model
            .bucket(key)
            .and_then(|e| e.value())
            .expect("the bucket was observed")
            .to_bits()
    };
    for workers in worker_matrix(&[1, 2, 8]) {
        let model = CostModel::new();
        let keys: Vec<CostKey> = (0..workers)
            .map(|w| CostKey::new(format!("family-{w}"), 3, Tolerances::rel(1e-4)))
            .collect();
        std::thread::scope(|scope| {
            for key in &keys {
                let model = &model;
                let observations = &observations;
                scope.spawn(move || {
                    for &obs in observations {
                        model.record(key, obs);
                    }
                });
            }
        });
        for key in &keys {
            let concurrent = model
                .bucket(key)
                .and_then(|e| e.value())
                .expect("every bucket was observed")
                .to_bits();
            assert_eq!(
                concurrent,
                serial_fold(key),
                "workers {workers}: bucket {} diverged from the serial fold",
                key.family
            );
        }
        assert_eq!(model.observations(), (workers as u64) * 32);
    }
}

#[test]
fn cost_model_feedback_never_changes_results() {
    // A trained model reroutes and re-prices jobs but every job still runs
    // against an isolated memory view: the result is bit-identical to the
    // same job on a cold service.
    let probe = || BatchJob::new(PaperIntegrand::f4(3));
    let cold = ServiceBuilder::new(config())
        .device(device_with_workers(2))
        .workers(2)
        .build();
    assert_eq!(cold.cost_model().observations(), 0);
    let cold_bits = cold.submit(probe()).wait().result.estimate.to_bits();
    cold.shutdown();

    let trained = ServiceBuilder::new(config())
        .device(device_with_workers(2))
        .workers(2)
        .build();
    seed_model(
        &trained,
        &CostKey::for_job(&probe(), config().tolerances),
        Duration::from_millis(25),
    );
    // Real completions keep feeding the model while the probes run.
    for _ in 0..4 {
        assert!(trained.submit(probe()).wait().result.converged());
    }
    assert!(trained.cost_model().observations() >= 5);
    let trained_bits = trained.submit(probe()).wait().result.estimate.to_bits();
    trained.shutdown();

    assert_eq!(
        cold_bits, trained_bits,
        "cost-model feedback changed an integration result"
    );
}

#[test]
fn metrics_feasible_traffic_has_zero_misses_and_rejects() {
    // The CI service-stress matrix asserts this shape: generously-deadlined
    // traffic completes with no deadline misses, no rejections and no
    // cancellations, and every job's wait is accounted to its priority.
    for workers in worker_matrix(&[1, 2, 8]) {
        let service = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .workers(workers)
            .build();
        let jobs = 6;
        let handles: Vec<JobHandle> = (0..jobs)
            .map(|i| {
                let priority = match i % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                service.submit(
                    BatchJob::new(PaperIntegrand::f4(3))
                        .with_priority(priority)
                        .with_deadline(Duration::from_secs(600)),
                )
            })
            .collect();
        for handle in &handles {
            assert!(handle.wait().result.converged(), "workers {workers}");
        }
        let metrics = service.metrics();
        assert_eq!(metrics.queue_depth, 0, "workers {workers}");
        assert_eq!(metrics.submitted, jobs, "workers {workers}");
        assert_eq!(metrics.completed, jobs, "workers {workers}");
        assert_eq!(metrics.cancelled, 0, "workers {workers}");
        assert_eq!(metrics.rejected(), 0, "workers {workers}");
        assert_eq!(metrics.deadline_misses, 0, "workers {workers}");
        let waits: u64 = [Priority::Low, Priority::Normal, Priority::High]
            .into_iter()
            .map(|p| metrics.wait(p).count)
            .sum();
        assert_eq!(waits, jobs, "workers {workers}");
        service.shutdown();
    }
}

#[test]
fn metrics_infeasible_deadline_is_rejected_and_counted() {
    // The deterministic infeasible case the CI service-stress job asserts:
    // once the model prices a family, a 1ns deadline cannot be promised.
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(2))
        .workers(2)
        .build();
    let probe = || BatchJob::new(PaperIntegrand::f4(3));
    seed_model(
        &service,
        &CostKey::for_job(&probe(), config().tolerances),
        Duration::from_millis(50),
    );
    let refused = service
        .try_submit(probe().with_deadline(Duration::from_nanos(1)))
        .expect_err("a priced family cannot fit a 1ns deadline");
    assert!(matches!(refused, Rejected::DeadlineInfeasible(_)));
    let metrics = service.metrics();
    assert_eq!(metrics.rejected_deadline_infeasible, 1);
    assert_eq!(metrics.rejected(), 1);
    assert_eq!(metrics.submitted, 0, "a rejected job was never enqueued");
    service.shutdown();
}

#[test]
fn metrics_mid_run_deadline_miss_is_counted() {
    // A deadline that fires while its job is still running is a miss — and
    // the cancelled completion is excluded from the model's learning.
    let slow = FnIntegrand::new(3, |x: &[f64]| {
        std::thread::sleep(Duration::from_micros(100));
        (x[0] * x[1] * x[2]).sin().mul_add(0.1, 1.0)
    });
    let tight = PaganiConfig::test_small(Tolerances::rel(1e-12));
    let service = ServiceBuilder::new(tight)
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let handle = service.submit(BatchJob::new(slow).with_deadline(Duration::from_millis(60)));
    let output = handle.wait();
    assert_eq!(output.result.termination, Termination::Cancelled);
    let metrics = service.metrics();
    assert!(metrics.deadline_misses >= 1, "{metrics:?}");
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(
        service.cost_model().observations(),
        0,
        "a cancelled run's partial wall time must not train the model"
    );
    service.shutdown();
}

#[test]
fn metrics_cache_counters_track_hits_misses_and_checkpoints() {
    // Without a cache every counter stays zero; with one, a repeated job is
    // one miss then one hit, the converged tree is checkpointed into the
    // cache, and the hit banks the original run's evaluations.
    let plain = ServiceBuilder::new(config())
        .device(device_with_workers(2))
        .workers(2)
        .build();
    let _ = plain.submit(BatchJob::new(PaperIntegrand::f4(3))).wait();
    let baseline = plain.metrics();
    assert_eq!(baseline.cache_hits, 0);
    assert_eq!(baseline.cache_misses, 0);
    assert_eq!(baseline.warm_starts, 0);
    assert_eq!(baseline.resumed, 0);
    assert_eq!(baseline.checkpoints_written, 0);
    assert_eq!(baseline.evals_saved, 0);
    assert!(plain.result_cache().is_none());
    plain.shutdown();

    let cache = Arc::new(ResultCache::new(1 << 20));
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(2))
        .cache(cache)
        .build();
    let job =
        || BatchJob::shared(Arc::new(PaperIntegrand::f4(3)) as Arc<dyn Integrand + Send + Sync>);
    let cold = service.submit(job()).wait();
    assert!(cold.result.converged());
    let hit = service.submit(job()).wait();
    assert!(hit.result.converged());
    let metrics = service.metrics();
    assert_eq!(metrics.cache_misses, 1, "{metrics:?}");
    assert_eq!(metrics.cache_hits, 1, "{metrics:?}");
    assert!(metrics.checkpoints_written >= 1, "{metrics:?}");
    assert_eq!(metrics.evals_saved, cold.result.function_evaluations);
    // An exact hit is free: admission promises zero remaining work for it.
    let promised = service
        .estimated_completion(&job())
        .expect("idle service always estimates");
    assert_eq!(promised, Duration::ZERO, "{metrics:?}");
    service.shutdown();
}

#[test]
fn deadline_mid_run_cancels_with_partial_stats_intact() {
    for workers in worker_matrix(&[1, 2]) {
        // Every evaluation dawdles, so the deadline fires mid-run; the
        // cancellation lands at the next driver iteration boundary.
        let slow = FnIntegrand::new(3, |x: &[f64]| {
            std::thread::sleep(Duration::from_micros(100));
            (x[0] * x[1] * x[2]).sin().mul_add(0.1, 1.0)
        });
        let tight = PaganiConfig::test_small(Tolerances::rel(1e-12));
        let service = ServiceBuilder::new(tight)
            .device(device_with_workers(workers))
            .workers(1)
            .build();
        let handle = service.submit(BatchJob::new(slow).with_deadline(Duration::from_millis(60)));
        let output = handle.wait();
        assert_eq!(
            output.result.termination,
            Termination::Cancelled,
            "workers {workers}"
        );
        assert!(output.result.iterations >= 1, "workers {workers}");
        assert!(output.result.function_evaluations > 0, "workers {workers}");
        assert!(output.result.estimate.is_finite());
        service.shutdown();
    }
}

#[test]
fn priorities_reorder_claims_but_never_starve() {
    // One worker parked on a blocker, a low-priority job submitted *first*,
    // then a stream of high-priority jobs: the highs are claimed first, but
    // the low still completes.
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = ServiceBuilder::new(config())
        .device(device_with_workers(1))
        .workers(1)
        .build();
    let blocker = service.submit(BatchJob::new(blocking_integrand(
        started.clone(),
        release.clone(),
    )));
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    let low = service.submit(BatchJob::new(PaperIntegrand::f4(3)).with_priority(Priority::Low));
    let highs: Vec<JobHandle> = (0..6)
        .map(|_| service.submit(BatchJob::new(PaperIntegrand::f3(3)).with_priority(Priority::High)))
        .collect();
    release.store(true, Ordering::Release);
    // The low-priority job is never starved: it completes.
    let low_output = low.wait();
    assert!(low_output.result.converged());
    // With a single worker, every high was claimed before the low.
    for (i, high) in highs.iter().enumerate() {
        assert!(
            high.is_finished(),
            "high-priority job {i} still pending after the low completed"
        );
        assert!(high.wait().result.converged());
    }
    assert!(blocker.wait().result.converged());
    service.shutdown();
}

#[test]
fn multi_device_round_robin_placement_is_pinned() {
    // Round-robin is the deterministic fallback: job i lands on device
    // i mod n, so with per-device distinguishable workloads the outputs must
    // be bit-identical to the same jobs run alone on their pinned device.
    let jobs: Vec<BatchJob> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                BatchJob::new(PaperIntegrand::f4(3))
            } else {
                BatchJob::new(PaperIntegrand::f3(4))
            }
        })
        .collect();
    let devices: Vec<Device> = (0..3).map(|_| device_with_workers(2)).collect();
    let service = ServiceBuilder::new(config())
        .devices(devices)
        .dispatch(DispatchMode::RoundRobin)
        .build_multi();
    let outputs = service.integrate_batch(&jobs);
    service.shutdown();
    let reference = Pagani::new(device_with_workers(2), config());
    for (i, (job, output)) in jobs.iter().zip(&outputs).enumerate() {
        let lone = reference.integrate_region(job.integrand(), job.region());
        assert_eq!(
            output.result.estimate.to_bits(),
            lone.result.estimate.to_bits(),
            "job {i} diverged from its pinned-device run"
        );
    }
}

#[test]
fn cost_balanced_dispatch_never_changes_results() {
    for workers in worker_matrix(&[1, 2]) {
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    BatchJob::new(PaperIntegrand::f4(4)) // heavy
                } else {
                    BatchJob::new(PaperIntegrand::f3(2)) // light
                }
            })
            .collect();
        let make_devices =
            || -> Vec<Device> { (0..2).map(|_| device_with_workers(workers)).collect() };
        let balanced = ServiceBuilder::new(config())
            .devices(make_devices())
            .build_multi();
        let balanced_bits: Vec<u64> = balanced
            .integrate_batch(&jobs)
            .iter()
            .map(|o| o.result.estimate.to_bits())
            .collect();
        balanced.shutdown();
        let pinned = ServiceBuilder::new(config())
            .devices(make_devices())
            .dispatch(DispatchMode::RoundRobin)
            .build_multi();
        let pinned_bits: Vec<u64> = pinned
            .integrate_batch(&jobs)
            .iter()
            .map(|o| o.result.estimate.to_bits())
            .collect();
        pinned.shutdown();
        assert_eq!(
            balanced_bits, pinned_bits,
            "workers {workers}: placement changed a result"
        );
    }
}
