//! Semantics of the structure-of-arrays evaluation path and the pluggable
//! backend seam: bit-exact golden pins across worker counts, the
//! pack→unpack round trip, and launch batching observed through
//! [`CountingBackend`].

mod common;

use std::sync::Arc;

use pagani::core::region_list::RegionList;
use pagani::prelude::*;
use pagani::{CountingBackend, CpuBackend, RegionPack};
use proptest::prelude::*;

/// Golden results captured from the pre-backend scalar evaluation path.
/// Estimate and error are pinned to the bit: the SoA pack → batched launch →
/// unpack pipeline must reproduce the per-region arithmetic exactly, for any
/// worker count.
const GOLDEN: &[(&str, u64, u64, usize, u64, u64)] = &[
    (
        "3D f4",
        0x3f37_5af2_0ca7_0cc5,
        0x3e5b_3bd4_cb59_c55a,
        9,
        2920,
        96360,
    ),
    (
        "4D f3",
        0x3f45_9b27_a2bb_b554,
        0x3e6b_f9a0_615a_1659,
        6,
        400,
        22800,
    ),
];

fn golden_integrands() -> [PaperIntegrand; 2] {
    [PaperIntegrand::f4(3), PaperIntegrand::f3(4)]
}

#[test]
fn batched_evaluation_reproduces_the_scalar_golden_bits_for_any_worker_count() {
    for workers in common::worker_matrix(&[1, 2, 8]) {
        let device = common::device_with_workers(workers);
        let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)));
        for (f, &(label, est, err, iters, regions, evals)) in golden_integrands().iter().zip(GOLDEN)
        {
            let out = pagani.integrate(f);
            assert_eq!(
                out.result.estimate.to_bits(),
                est,
                "{label} estimate drifted with {workers} workers"
            );
            assert_eq!(
                out.result.error_estimate.to_bits(),
                err,
                "{label} error estimate drifted with {workers} workers"
            );
            assert_eq!(out.result.iterations, iters, "{label} iteration count");
            assert_eq!(out.result.regions_generated, regions, "{label} regions");
            assert_eq!(out.result.function_evaluations, evals, "{label} evals");
        }
    }
}

#[test]
fn counting_backend_sees_exactly_one_batched_launch_per_generation() {
    let config = pagani::device::DeviceConfig::test_small().with_memory_capacity(32 << 20);
    let counting = Arc::new(CountingBackend::new(Arc::new(CpuBackend::new(
        config.clone(),
    ))));
    let counted_device = Device::with_backend(counting.clone());
    let plain_device = Device::new(config);

    let f = PaperIntegrand::f4(3);
    let pagani_config = PaganiConfig::test_small(Tolerances::rel(1e-4));
    let counted = Pagani::new(counted_device, pagani_config.clone()).integrate(&f);
    let plain = Pagani::new(plain_device, pagani_config).integrate(&f);

    // SoA evaluation: the whole generation goes down in ONE batched launch,
    // so launches of the "evaluate" kernel equal driver iterations exactly.
    assert_eq!(counting.launches_for("evaluate"), counted.result.iterations);
    // And the wrapper is transparent: results match a plain device to the bit.
    assert_eq!(
        counted.result.estimate.to_bits(),
        plain.result.estimate.to_bits()
    );
    assert_eq!(
        counted.result.error_estimate.to_bits(),
        plain.result.error_estimate.to_bits()
    );
    assert_eq!(counted.result.iterations, plain.result.iterations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA pack reproduces `RegionList::centered_view`'s centre and
    /// half-width arithmetic bit-for-bit, region by region.
    #[test]
    fn prop_region_pack_round_trips_centered_view(
        dim in 1usize..5,
        depth in 1usize..4,
    ) {
        let device = common::device_with_workers(1);
        let list = RegionList::initial_split(
            &pagani::quadrature::Region::unit_cube(dim),
            depth,
            device.memory(),
        )
        .unwrap();
        let arena = pagani::prelude::ScratchArena::new();
        let pack = RegionPack::pack(&list, &arena);
        prop_assert_eq!(pack.len(), list.len());
        prop_assert_eq!(pack.dim(), dim);
        let mut center = vec![0.0; dim];
        let mut halfwidth = vec![0.0; dim];
        for i in 0..list.len() {
            list.centered_view(i, &mut center, &mut halfwidth);
            for axis in 0..dim {
                prop_assert_eq!(pack.center_of(i)[axis].to_bits(), center[axis].to_bits());
                prop_assert_eq!(
                    pack.halfwidth_of(i)[axis].to_bits(),
                    halfwidth[axis].to_bits()
                );
            }
        }
        pack.retire(&arena);
    }
}
