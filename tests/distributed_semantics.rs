//! Distributed-layer semantics: wire transparency (remote results are
//! bit-identical to local runs), slab splitting of oversized jobs, crash
//! recovery by requeue, cancel forwarding, and front-end admission.
//!
//! Workers here are in-process [`RemoteWorker`]s listening on loopback —
//! the same code path a separate worker process runs (see
//! `examples/distributed_service.rs` for the multi-process version).

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{device_with_workers, worker_matrix};
use pagani::prelude::*;
use pagani::{IntegrandRegistry, Rejected, RemoteWorker, ServiceBuilder};

fn config() -> PaganiConfig {
    PaganiConfig::test_small(Tolerances::rel(1e-5))
}

fn paper_registry() -> Arc<IntegrandRegistry> {
    Arc::new(IntegrandRegistry::with_paper_suite(5))
}

fn spawn_worker(
    config: PaganiConfig,
    device: Device,
    registry: &Arc<IntegrandRegistry>,
) -> RemoteWorker {
    RemoteWorker::bind(
        "127.0.0.1:0",
        ServiceBuilder::new(config).device(device),
        Arc::clone(registry),
    )
    .expect("bind a loopback worker")
}

/// A mixed-priority batch over the paper suite.
fn mixed_batch() -> Vec<BatchJob> {
    vec![
        BatchJob::new(PaperIntegrand::f4(3)).with_priority(Priority::High),
        BatchJob::new(PaperIntegrand::f1(2)).with_priority(Priority::Low),
        BatchJob::new(PaperIntegrand::f5(3)).with_priority(Priority::Normal),
        BatchJob::new(PaperIntegrand::f3(2)).with_priority(Priority::High),
        BatchJob::new(PaperIntegrand::f4(2)).with_priority(Priority::Low),
        BatchJob::new(PaperIntegrand::f7(2)).with_priority(Priority::Normal),
    ]
}

/// An integrand whose evaluations block until `gate` opens — lets tests pin
/// jobs in flight without racing the scheduler.
fn gated(name: &str, gate: &Arc<AtomicBool>) -> impl Integrand + Send + 'static {
    let gate = Arc::clone(gate);
    FnIntegrand::new(2, move |x: &[f64]| {
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        x[0] + x[1]
    })
    .named(name)
}

/// A *hard* gated integrand (a sharp Gaussian peak, far from converging in
/// one iteration), additionally raising `entered` once an evaluation has
/// started.  Cancellation is observed at iteration boundaries, so cancel
/// tests need an integrand guaranteed to still be running when the second
/// boundary comes around — a polynomial like [`gated`]'s would converge at
/// the end of iteration one and never see the cancel.
fn gated_hard(
    name: &str,
    gate: &Arc<AtomicBool>,
    entered: &Arc<AtomicBool>,
) -> impl Integrand + Send + 'static {
    let gate = Arc::clone(gate);
    let entered = Arc::clone(entered);
    FnIntegrand::new(2, move |x: &[f64]| {
        entered.store(true, Ordering::SeqCst);
        while !gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let dx = x[0] - 0.3;
        let dy = x[1] - 0.7;
        (-(dx * dx + dy * dy) * 200.0).exp()
    })
    .named(name)
}

/// Poll `flag` until it rises, failing after a generous timeout.
fn wait_until(flag: &Arc<AtomicBool>, message: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !flag.load(Ordering::SeqCst) {
        assert!(std::time::Instant::now() < deadline, "{message}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn assert_bit_identical(local: &IntegrationResult, remote: &IntegrationResult, label: &str) {
    assert_eq!(
        local.estimate.to_bits(),
        remote.estimate.to_bits(),
        "{label}: estimate drifted across the wire"
    );
    assert_eq!(
        local.error_estimate.to_bits(),
        remote.error_estimate.to_bits(),
        "{label}: error estimate drifted across the wire"
    );
    assert_eq!(
        local.termination, remote.termination,
        "{label}: termination"
    );
    assert_eq!(local.iterations, remote.iterations, "{label}: iterations");
    assert_eq!(
        local.function_evaluations, remote.function_evaluations,
        "{label}: function evaluations"
    );
    assert_eq!(
        local.regions_generated, remote.regions_generated,
        "{label}: regions generated"
    );
}

#[test]
fn remote_results_are_bit_identical_to_local_runs() {
    let registry = paper_registry();
    for workers in worker_matrix(&[1, 2, 8]) {
        let local = ServiceBuilder::new(config())
            .device(device_with_workers(workers))
            .build();
        let local_outputs: Vec<PaganiOutput> = mixed_batch()
            .into_iter()
            .map(|job| local.submit(job).wait())
            .collect();
        local.shutdown();

        let worker_a = spawn_worker(config(), device_with_workers(workers), &registry);
        let worker_b = spawn_worker(config(), device_with_workers(workers), &registry);
        let frontend = ServiceBuilder::new(config())
            .endpoint(worker_a.local_addr().to_string())
            .endpoint(worker_b.local_addr().to_string())
            .build_distributed()
            .expect("connect the front-end");
        assert_eq!(frontend.endpoint_count(), 2);
        assert_eq!(frontend.endpoints_alive(), 2);

        let remote_outputs = frontend.integrate_batch(&mixed_batch());
        let metrics = frontend.metrics();
        assert_eq!(metrics.completed, local_outputs.len() as u64);
        assert!(
            metrics.remote_dispatched >= local_outputs.len() as u64,
            "every job crossed the wire"
        );

        for (i, (local_out, remote_out)) in local_outputs.iter().zip(&remote_outputs).enumerate() {
            assert_bit_identical(
                &local_out.result,
                &remote_out.result,
                &format!("job {i} with {workers} worker threads"),
            );
        }
        frontend.shutdown();
        worker_a.shutdown();
        worker_b.shutdown();
    }
}

#[test]
fn an_oversized_job_slab_splits_and_matches_the_in_process_fold() {
    // dim-5 at 1e-6 estimates to ~4 MiB of regions; on 1 MiB devices both
    // the multi-device service and the distributed front-end must cut it
    // into the same slabs and fold them in the same order.
    let tight = PaganiConfig::test_small(Tolerances::rel(1e-6));
    let tiny = || Device::new(DeviceConfig::test_small().with_memory_capacity(1 << 20));
    let job = || BatchJob::new(PaperIntegrand::f4(5));

    let multi = ServiceBuilder::new(tight.clone())
        .devices([tiny(), tiny()])
        .build_multi();
    let local_out = multi.submit(job()).wait();
    multi.shutdown();

    let registry = paper_registry();
    let worker_a = spawn_worker(tight.clone(), tiny(), &registry);
    let worker_b = spawn_worker(tight.clone(), tiny(), &registry);
    let frontend = ServiceBuilder::new(tight)
        .endpoint(worker_a.local_addr().to_string())
        .endpoint(worker_b.local_addr().to_string())
        .build_distributed()
        .expect("connect the front-end");

    let remote_out = frontend.submit(job()).wait();
    let metrics = frontend.metrics();
    assert!(
        metrics.remote_dispatched >= 2,
        "the oversized job must slab-split into several wire jobs, dispatched {}",
        metrics.remote_dispatched
    );
    assert_bit_identical(&local_out.result, &remote_out.result, "slab-split f4(5)");

    frontend.shutdown();
    worker_a.shutdown();
    worker_b.shutdown();
}

#[test]
fn a_killed_worker_requeues_its_jobs_on_a_survivor() {
    let gate = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(IntegrandRegistry::new());
    registry.register(gated("blocker", &gate));

    let worker_a = spawn_worker(config(), device_with_workers(2), &registry);
    let worker_b = spawn_worker(config(), device_with_workers(2), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker_a.local_addr().to_string())
        .endpoint(worker_b.local_addr().to_string())
        .build_distributed()
        .expect("connect the front-end");

    // Pin four jobs in flight (the gate blocks their evaluations), then kill
    // one worker's connections the way a crashed process would.
    let handles: Vec<JobHandle> = (0..4)
        .map(|_| frontend.submit(BatchJob::new(gated("blocker", &gate))))
        .collect();
    assert_eq!(frontend.queued_jobs(), 4);
    worker_a.sever();

    // The front-end's reader observes the dead connection and requeues that
    // worker's jobs on the survivor.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while frontend.endpoints_alive() != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "front-end never noticed the severed worker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    gate.store(true, Ordering::SeqCst);
    for handle in &handles {
        let out = handle.wait();
        assert_eq!(out.result.termination, Termination::Converged);
        assert_eq!(out.result.estimate.to_bits(), 1.0f64.to_bits());
    }
    let metrics = frontend.metrics();
    assert_eq!(metrics.completed, 4, "every job completed despite the kill");
    assert!(
        metrics.remote_requeued >= 1,
        "the dead worker held jobs; at least one must have been requeued"
    );

    frontend.shutdown();
    worker_a.shutdown();
    worker_b.shutdown();
}

#[test]
fn cancel_is_forwarded_over_the_wire() {
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(IntegrandRegistry::new());
    registry.register(gated_hard("cancel-me", &gate, &entered));

    let worker = spawn_worker(config(), device_with_workers(2), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker.local_addr().to_string())
        .build_distributed()
        .expect("connect the front-end");

    let handle = frontend.submit(BatchJob::new(gated_hard("cancel-me", &gate, &entered)));
    wait_until(&entered, "the job never started evaluating");
    handle.cancel();
    gate.store(true, Ordering::SeqCst);
    let out = handle.wait();
    assert_eq!(out.result.termination, Termination::Cancelled);
    assert_eq!(frontend.metrics().cancelled, 1);

    frontend.shutdown();
    worker.shutdown();
}

#[test]
fn queue_full_and_deadline_infeasible_are_refused_at_the_front_end() {
    let gate = Arc::new(AtomicBool::new(false));
    let registry = paper_registry();
    registry.register(gated("filler", &gate));

    let worker = spawn_worker(config(), device_with_workers(2), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker.local_addr().to_string())
        .queue_bound(1)
        .build_distributed()
        .expect("connect the front-end");

    // Fill the single front-end slot with a gated job, then refuse the next.
    let filler = frontend.submit(BatchJob::new(gated("filler", &gate)));
    match frontend.try_submit(BatchJob::new(PaperIntegrand::f4(3))) {
        Err(Rejected::QueueFull(refusal)) => assert_eq!(refusal.bound, 1),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(frontend.metrics().rejected_queue_full, 1);
    gate.store(true, Ordering::SeqCst);
    let _ = filler.wait();

    // Train the cost model on a real run, then ask for the impossible: the
    // refusal happens before the job ever crosses the wire.
    let _ = frontend.submit(BatchJob::new(PaperIntegrand::f4(4))).wait();
    let dispatched_before = frontend.metrics().remote_dispatched;
    match frontend
        .try_submit(BatchJob::new(PaperIntegrand::f4(4)).with_deadline(Duration::from_nanos(1)))
    {
        Err(Rejected::DeadlineInfeasible(refusal)) => {
            assert!(refusal.estimated > refusal.deadline);
        }
        other => panic!("expected DeadlineInfeasible, got {other:?}"),
    }
    let metrics = frontend.metrics();
    assert_eq!(metrics.rejected_deadline_infeasible, 1);
    assert_eq!(
        metrics.remote_dispatched, dispatched_before,
        "a refused job must never cross the wire"
    );

    frontend.shutdown();
    worker.shutdown();
}

#[test]
fn a_cancelled_jobs_checkpoint_resumes_over_the_wire() {
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(IntegrandRegistry::new());
    registry.register(gated_hard("resume-me", &gate, &entered));

    let worker = spawn_worker(config(), device_with_workers(2), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker.local_addr().to_string())
        .cache(Arc::new(ResultCache::new(16 << 20)))
        .build_distributed()
        .expect("connect the front-end");

    // Cancel a gated job *after* its first evaluation has started, so the
    // worker winds it down at the next iteration boundary with real progress
    // in the tree, checkpoints it, and ships the snapshot back with the
    // Cancelled result; the front-end caches it.
    let handle = frontend.submit(BatchJob::new(gated_hard("resume-me", &gate, &entered)));
    wait_until(&entered, "the job never started evaluating");
    handle.cancel();
    gate.store(true, Ordering::SeqCst);
    let out = handle.wait();
    assert_eq!(out.result.termination, Termination::Cancelled);
    assert!(out.result.function_evaluations > 0, "the run made progress");

    // Resubmitting the same job re-ships the checkpoint: the worker resumes
    // the tree instead of restarting, and its service counts the resume.
    let out = frontend
        .submit(BatchJob::new(gated_hard("resume-me", &gate, &entered)))
        .wait();
    assert_eq!(out.result.termination, Termination::Converged);
    let worker_metrics = worker.service().metrics();
    assert!(
        worker_metrics.resumed >= 1,
        "the resubmitted job must resume the shipped checkpoint, metrics: {worker_metrics:?}"
    );

    frontend.shutdown();
    worker.shutdown();
}

#[test]
fn heartbeats_flow_and_are_counted() {
    let registry = paper_registry();
    let worker = spawn_worker(config(), device_with_workers(1), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker.local_addr().to_string())
        .heartbeat_interval(Duration::from_millis(10))
        .build_distributed()
        .expect("connect the front-end");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while frontend.metrics().remote_heartbeats == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no heartbeat ack arrived"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    frontend.shutdown();
    worker.shutdown();
}

#[test]
fn the_builder_constructs_every_topology() {
    // Single-device and multi-device from one builder vocabulary…
    let single = ServiceBuilder::new(config())
        .device(device_with_workers(1))
        .build();
    assert!(single
        .submit(BatchJob::new(PaperIntegrand::f4(2)))
        .wait()
        .result
        .converged());
    single.shutdown();

    let multi = ServiceBuilder::new(config())
        .devices([device_with_workers(1), device_with_workers(1)])
        .build_multi();
    assert_eq!(multi.device_count(), 2);
    multi.shutdown();

    // …and the distributed front-end from the same builder, plus an address
    // nobody listens on, which must surface as an io::Error, not a panic.
    let registry = paper_registry();
    let worker = spawn_worker(config(), device_with_workers(1), &registry);
    let frontend = ServiceBuilder::new(config())
        .endpoint(worker.local_addr().to_string())
        .build_distributed()
        .expect("connect the front-end");
    assert_eq!(frontend.endpoint_count(), 1);
    frontend.shutdown();
    worker.shutdown();

    assert!(ServiceBuilder::new(config())
        .endpoint("127.0.0.1:1")
        .build_distributed()
        .is_err());
}
