//! Smoke test: every integrator in the workspace — PAGANI, Cuhre, the
//! two-phase method, QMC and plain Monte Carlo — runs end to end **through the
//! unified `Integrator` trait** on one fixed Genz integrand and lands within
//! tolerance of the analytic reference value.  One loop over
//! `Box<dyn Integrator>` values covers all five methods; there is no
//! per-method block to fall out of sync.

use pagani::integrands::genz::{GenzFamily, GenzIntegrand};
use pagani::prelude::*;

/// A mild 3-D Gaussian-family Genz integrand with fixed parameters, smooth enough
/// that all methods (including plain MC) can reach their digits quickly.
fn gaussian_genz() -> GenzIntegrand {
    GenzIntegrand::new(
        GenzFamily::Gaussian,
        vec![3.0, 2.0, 2.5],
        vec![0.3, 0.6, 0.5],
    )
}

fn device() -> Device {
    Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20))
}

/// Each method with a test-sized configuration, its requested relative
/// tolerance, and the accuracy bar the estimate must clear against the
/// analytic reference (looser for the statistical-error methods).
fn cases() -> Vec<(MethodConfig, f64)> {
    let tol = 1e-3;
    vec![
        (
            MethodConfig::Pagani(PaganiConfig::test_small(Tolerances::rel(tol))),
            tol,
        ),
        (
            MethodConfig::Cuhre(
                CuhreConfig::new(Tolerances::rel(tol)).with_max_evaluations(10_000_000),
            ),
            tol,
        ),
        (
            MethodConfig::TwoPhase(TwoPhaseConfig::test_small(Tolerances::rel(tol))),
            tol,
        ),
        (
            MethodConfig::Qmc(QmcConfig::new(Tolerances::rel(tol)).with_max_evaluations(4_000_000)),
            tol,
        ),
        // Plain MC earns fewer digits per sample; ask for two digits with a
        // generous budget so the seeded run converges deterministically.
        (
            MethodConfig::MonteCarlo(
                MonteCarloConfig::new(Tolerances::rel(1e-2)).with_max_evaluations(50_000_000),
            ),
            5e-2,
        ),
    ]
}

#[test]
fn all_methods_agree_with_the_analytic_reference() {
    let integrand = gaussian_genz();
    let reference = integrand.reference_value();
    assert!(reference.is_finite() && reference > 0.0);
    let device = device();

    for (config, accuracy_bar) in cases() {
        let integrator: Box<dyn Integrator> = config.build(&device);
        assert_eq!(integrator.name(), config.name());
        assert!(
            integrator.capabilities().supports_dim(integrand.dim()),
            "{} cannot handle {} dims",
            integrator.name(),
            integrand.dim()
        );
        let result = integrator.integrate(&integrand);
        assert!(result.converged(), "{} did not converge", integrator.name());
        assert!(
            result.true_relative_error(reference) < accuracy_bar,
            "{}: estimate {} vs reference {reference} (true rel err {})",
            integrator.name(),
            result.estimate,
            result.true_relative_error(reference)
        );
    }
}

#[test]
fn region_slice_bounds_are_accepted_identically_by_every_method() {
    // The unified `&[Region]` entry point: splitting the domain in half and
    // integrating the slice must agree with integrating the whole cube, for
    // every deterministic method, through one shared code path.
    let integrand = gaussian_genz();
    let reference = integrand.reference_value();
    let device = device();
    let (left, right) = Region::unit_cube(integrand.dim()).split(0);
    let cover = [left, right];

    for (config, accuracy_bar) in cases() {
        let integrator: Box<dyn Integrator> = config.build(&device);
        let result = integrator.integrate_regions(&integrand, &cover);
        assert!(
            result.converged(),
            "{} did not converge on the region cover",
            integrator.name()
        );
        assert!(
            result.true_relative_error(reference) < 2.0 * accuracy_bar,
            "{}: cover estimate {} vs reference {reference}",
            integrator.name(),
            result.estimate
        );
    }
}
