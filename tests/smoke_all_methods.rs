//! Smoke test: every integrator in the workspace — PAGANI, Cuhre, the two-phase
//! method and QMC — runs end to end on one fixed Genz integrand and lands within
//! tolerance of the analytic reference value.

use pagani::integrands::genz::{GenzFamily, GenzIntegrand};
use pagani::prelude::*;

/// A mild 3-D Gaussian-family Genz integrand with fixed parameters, smooth enough
/// that all four methods (including QMC) can reach three digits quickly.
fn gaussian_genz() -> GenzIntegrand {
    GenzIntegrand::new(
        GenzFamily::Gaussian,
        vec![3.0, 2.0, 2.5],
        vec![0.3, 0.6, 0.5],
    )
}

fn device() -> Device {
    Device::new(DeviceConfig::test_small().with_memory_capacity(64 << 20))
}

#[test]
fn all_four_methods_agree_with_the_analytic_reference() {
    let integrand = gaussian_genz();
    let reference = integrand.reference_value();
    assert!(reference.is_finite() && reference > 0.0);
    let tol = 1e-3;

    let pagani =
        Pagani::new(device(), PaganiConfig::test_small(Tolerances::rel(tol))).integrate(&integrand);
    assert!(pagani.result.converged(), "PAGANI did not converge");
    assert!(
        pagani.result.true_relative_error(reference) < tol,
        "PAGANI estimate {} vs reference {reference}",
        pagani.result.estimate
    );

    let cuhre = Cuhre::new(CuhreConfig::new(Tolerances::rel(tol)).with_max_evaluations(10_000_000))
        .integrate(&integrand);
    assert!(cuhre.converged(), "Cuhre did not converge");
    assert!(
        cuhre.true_relative_error(reference) < tol,
        "Cuhre estimate {} vs reference {reference}",
        cuhre.estimate
    );

    let two_phase = TwoPhase::new(device(), TwoPhaseConfig::test_small(Tolerances::rel(tol)))
        .integrate(&integrand);
    assert!(two_phase.converged(), "two-phase did not converge");
    assert!(
        two_phase.true_relative_error(reference) < tol,
        "two-phase estimate {} vs reference {reference}",
        two_phase.estimate
    );

    let qmc = Qmc::new(
        device(),
        QmcConfig::new(Tolerances::rel(tol)).with_max_evaluations(4_000_000),
    )
    .integrate(&integrand);
    assert!(qmc.converged(), "QMC did not converge");
    assert!(
        qmc.true_relative_error(reference) < tol,
        "QMC estimate {} vs reference {reference}",
        qmc.estimate
    );
}
