//! # pagani
//!
//! A from-scratch Rust reproduction of **PAGANI** — the parallel adaptive algorithm
//! for multi-dimensional numerical integration of Sakiotis et al. (SC 2021) — together
//! with every substrate and baseline the paper's evaluation depends on:
//!
//! * a simulated massively-parallel device with tracked memory ([`device`]),
//! * Genz–Malik embedded cubature, two-level error estimation and 1-D quadrature
//!   ([`quadrature`]),
//! * the paper's test-integrand suite with analytic reference values ([`integrands`]),
//! * the PAGANI algorithm itself ([`core`]), and
//! * the baselines it is compared against: sequential Cuhre, the two-phase GPU method
//!   and randomized quasi-Monte Carlo ([`baselines`]).
//!
//! ## Quick start
//!
//! ```
//! use pagani::prelude::*;
//!
//! // A 4-dimensional Gaussian bump on the unit cube.
//! let f = FnIntegrand::new(4, |x: &[f64]| {
//!     (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
//! });
//!
//! let device = Device::test_small();
//! let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-5)));
//! let output = pagani.integrate(&f);
//!
//! assert!(output.result.converged());
//! assert!(output.result.relative_error_estimate() <= 1e-5);
//! ```
//!
//! ## Batch execution
//!
//! For throughput-oriented workloads — many independent integrals answered
//! from one device — [`integrate_batch`] runs jobs concurrently over the
//! device's one worker pool, recycling buffers across iterations and jobs.
//! Results are bit-identical to running the same jobs sequentially:
//!
//! ```
//! use pagani::prelude::*;
//!
//! let smooth = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
//! let bump = FnIntegrand::new(3, |x: &[f64]| {
//!     (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 10.0).exp()
//! });
//! let jobs = [BatchJob::new(&smooth), BatchJob::new(&bump)];
//!
//! let device = Device::test_small();
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
//! let outputs = pagani::integrate_batch(&device, &config, &jobs);
//!
//! assert!(outputs.iter().all(|o| o.result.converged()));
//! ```
//!
//! The `examples/` directory contains runnable end-to-end scenarios (quick start, a
//! cosmology-flavoured likelihood normalisation, a basket-option payoff, a
//! batch-throughput demo, the threshold search trace of the paper's Figure 3 and a
//! head-to-head method comparison), and the `pagani-bench` crate regenerates every
//! figure of the paper's evaluation.

#![warn(missing_docs)]

pub use pagani_baselines as baselines;
pub use pagani_core as core;
pub use pagani_device as device;
pub use pagani_integrands as integrands;
pub use pagani_quadrature as quadrature;

pub use pagani_core::batch::integrate_batch;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use pagani_baselines::{
        Cuhre, CuhreConfig, MonteCarlo, MonteCarloConfig, Qmc, QmcConfig, TwoPhase, TwoPhaseConfig,
    };
    pub use pagani_core::{
        integrate_batch, BatchJob, BatchRunner, HeuristicFiltering, MultiDeviceOutput,
        MultiDevicePagani, Pagani, PaganiConfig, PaganiOutput, ScratchArena,
    };
    pub use pagani_device::{Device, DeviceConfig};
    pub use pagani_integrands::paper::PaperIntegrand;
    pub use pagani_integrands::workloads::{BasketOption, GaussianLikelihood};
    pub use pagani_quadrature::{
        FnIntegrand, Integrand, IntegrationResult, Region, Termination, Tolerances,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let pagani = Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(1e-6)),
        );
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!((out.result.estimate - 1.0).abs() < 1e-6);
    }
}
