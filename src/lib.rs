//! # pagani
//!
//! A from-scratch Rust reproduction of **PAGANI** — the parallel adaptive algorithm
//! for multi-dimensional numerical integration of Sakiotis et al. (SC 2021) — together
//! with every substrate and baseline the paper's evaluation depends on:
//!
//! * a simulated massively-parallel device with tracked memory ([`device`]),
//! * Genz–Malik embedded cubature, two-level error estimation and 1-D quadrature
//!   ([`quadrature`]),
//! * the paper's test-integrand suite with analytic reference values ([`integrands`]),
//! * the PAGANI algorithm itself ([`core`]),
//! * bit-exact region-tree snapshots, a result cache and warm-start resumable
//!   integration ([`persist`]), and
//! * the baselines it is compared against: sequential Cuhre, the two-phase GPU method,
//!   randomized quasi-Monte Carlo and plain Monte Carlo ([`baselines`]).
//!
//! ## Quick start
//!
//! ```
//! use pagani::prelude::*;
//!
//! // A 4-dimensional Gaussian bump on the unit cube.
//! let f = FnIntegrand::new(4, |x: &[f64]| {
//!     (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 25.0).exp()
//! });
//!
//! let device = Device::test_small();
//! let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-5)));
//! let output = pagani.integrate(&f);
//!
//! assert!(output.result.converged());
//! assert!(output.result.relative_error_estimate() <= 1e-5);
//! ```
//!
//! ## One trait, five methods
//!
//! Every integrator implements [`Integrator`], so methods are values: build
//! any of them from a [`MethodConfig`] (or the fluent [`IntegratorBuilder`])
//! and sweep them through one loop:
//!
//! ```
//! use pagani::prelude::*;
//!
//! let f = FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]);
//! let device = Device::test_small();
//! for config in MethodConfig::all(Tolerances::rel(1e-3)) {
//!     let integrator: Box<dyn Integrator> = config.build(&device);
//!     let result = integrator.integrate(&f);
//!     assert!(result.converged(), "{} failed", integrator.name());
//! }
//! ```
//!
//! ## Serving traffic: the integration service
//!
//! [`IntegrationService`] keeps resident workers fed from a FIFO queue:
//! `submit` returns a [`JobHandle`] immediately, handles support polling,
//! blocking waits and cooperative cancellation, and completed results are
//! bit-identical to sequential `Pagani::integrate` runs:
//!
//! ```
//! use pagani::prelude::*;
//!
//! let device = Device::test_small();
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
//! let service = IntegrationService::new(device, config);
//! let handle = service.submit(BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1])));
//! assert!(handle.wait().result.converged());
//! service.shutdown();
//! ```
//!
//! ## Batch execution
//!
//! For a fixed set of independent integrals, [`integrate_batch`] is
//! submit-all-then-wait sugar over the service.  Results are bit-identical to
//! running the same jobs sequentially:
//!
//! ```
//! use pagani::prelude::*;
//!
//! let jobs = [
//!     BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1])),
//!     BatchJob::new(FnIntegrand::new(3, |x: &[f64]| {
//!         (-x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>() * 10.0).exp()
//!     })),
//! ];
//!
//! let device = Device::test_small();
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
//! let outputs = pagani::integrate_batch(&device, &config, &jobs);
//!
//! assert!(outputs.iter().all(|o| o.result.converged()));
//! ```
//!
//! ## One builder, three services
//!
//! [`ServiceBuilder`] is the single construction surface for every service
//! shape: `build()` for a one-device [`IntegrationService`], `build_multi()`
//! for a cost-balanced [`MultiDeviceService`], and (given
//! `endpoint(..)` addresses of [`RemoteWorker`] processes)
//! `build_distributed()` for a [`DistributedService`] sharding jobs over the
//! wire with the same priority/deadline/backpressure semantics:
//!
//! ```
//! use pagani::prelude::*;
//!
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
//! let service = ServiceBuilder::new(config)
//!     .device(Device::test_small())
//!     .queue_bound(32)
//!     .build();
//! let handle = service.submit(BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] * x[1])));
//! assert!(handle.wait().result.converged());
//! service.shutdown();
//! ```
//!
//! ## Pluggable compute backends
//!
//! The simulated device is one implementation of the [`ComputeBackend`]
//! trait — the four-primitive seam (batched launch over flat lane buffers,
//! memory views, reductions, scans) every layer above is written against.
//! Wrap or replace the backend without touching the algorithm; the bundled
//! [`CountingBackend`] proves the point by counting launches:
//!
//! ```
//! use std::sync::Arc;
//! use pagani::prelude::*;
//! use pagani::{CountingBackend, CpuBackend};
//!
//! let counting = Arc::new(CountingBackend::new(Arc::new(CpuBackend::new(
//!     DeviceConfig::test_small(),
//! ))));
//! let device = Device::with_backend(counting.clone());
//! let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)));
//! let out = pagani.integrate(&FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
//!
//! // Structure-of-arrays evaluation: exactly one batched launch per iteration.
//! assert_eq!(counting.launches_for("evaluate"), out.result.iterations);
//! ```
//!
//! The `examples/` directory contains runnable end-to-end scenarios (quick start, a
//! cosmology-flavoured likelihood normalisation, a basket-option payoff, a
//! batch-throughput demo, the threshold search trace of the paper's Figure 3 and a
//! head-to-head method comparison), and the `pagani-bench` crate regenerates every
//! figure of the paper's evaluation.

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub use pagani_baselines as baselines;
pub use pagani_core as core;
pub use pagani_device as device;
pub use pagani_integrands as integrands;
pub use pagani_persist as persist;
pub use pagani_quadrature as quadrature;

pub use pagani_baselines::{IntegratorBuilder, MethodConfig};
pub use pagani_core::batch::integrate_batch;
pub use pagani_core::{
    Capabilities, CostKey, CostModel, DeadlineInfeasible, DispatchMode, DistributedService,
    Evaluation, IntegrandRegistry, IntegrationService, Integrator, IntegratorFactory, JobHandle,
    Message, MultiDeviceService, Priority, QueueFull, RegionPack, Rejected, RemoteWorker,
    ResumableOutput, ResumeError, ServiceBuilder, ServiceMetrics, ServicePolicy, WaitStats,
    WireError, EVAL_LANES, PROTOCOL_VERSION,
};
pub use pagani_device::{BackendCaps, ComputeBackend, CountingBackend, CpuBackend};
pub use pagani_persist::{CacheKey, CachedResult, ResultCache, Snapshot, WarmStartInfo};

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use pagani_baselines::{
        Cuhre, CuhreConfig, IntegratorBuilder, MethodConfig, MonteCarlo, MonteCarloConfig, Qmc,
        QmcConfig, TwoPhase, TwoPhaseConfig,
    };
    pub use pagani_core::{
        integrate_batch, BatchJob, BatchRunner, CancelToken, Capabilities, CostKey, CostModel,
        DispatchMode, DistributedService, HeuristicFiltering, IntegrandRegistry,
        IntegrationService, Integrator, IntegratorFactory, JobHandle, MultiDeviceOutput,
        MultiDevicePagani, MultiDeviceService, Pagani, PaganiConfig, PaganiOutput, Priority,
        QueueFull, Rejected, RemoteWorker, ResultCache, ScratchArena, ServiceBuilder,
        ServiceMetrics, ServicePolicy, Snapshot, WaitStats,
    };
    pub use pagani_device::{ComputeBackend, Device, DeviceConfig};
    pub use pagani_integrands::paper::PaperIntegrand;
    pub use pagani_integrands::workloads::{BasketOption, GaussianLikelihood};
    pub use pagani_quadrature::{
        FnIntegrand, Integrand, IntegrationResult, Region, Termination, Tolerances,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let pagani = Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(1e-6)),
        );
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!((out.result.estimate - 1.0).abs() < 1e-6);
    }

    #[test]
    fn prelude_exposes_the_unified_front_door() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let device = Device::test_small();
        let integrator = IntegratorBuilder::pagani(PaganiConfig::test_small(Tolerances::rel(1e-6)))
            .build(&device);
        assert!(integrator.integrate(&f).converged());
        let service =
            IntegrationService::new(device, PaganiConfig::test_small(Tolerances::rel(1e-6)));
        let handle = service.submit(BatchJob::new(f));
        assert!(handle.wait().result.converged());
        service.shutdown();
    }
}
