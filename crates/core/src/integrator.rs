//! The unified front door: one [`Integrator`] trait for every method in the
//! workspace.
//!
//! The paper's evaluation treats PAGANI, Cuhre, the two-phase method and
//! (quasi-)Monte Carlo as interchangeable answers to one question — *integrate
//! `f` over these bounds to tolerance τ* — and a serving front-end needs the
//! same shape: pick a method at runtime, hand it an integrand and bounds, get
//! back one [`IntegrationResult`].  `Integrator` is that dyn-dispatchable
//! contract.  `Pagani` implements it here; the four baselines implement it in
//! `pagani-baselines`, and the `MethodConfig`/`IntegratorBuilder` pair there
//! turns a configuration value into a `Box<dyn Integrator>`.
//!
//! All methods accept bounds identically: a single [`Region`] through
//! [`Integrator::integrate_region`], the integrand's default bounds through
//! [`Integrator::integrate`], or any `&[Region]` cover of a disjoint union
//! through [`Integrator::integrate_regions`] — the slice form is implemented
//! once, here, so no method can re-declare its own shape.
//!
//! Cancellation is part of the contract: the one *required* entry point,
//! [`Integrator::integrate_region_cancellable`], threads a [`CancelToken`]
//! through every method, and each driver polls it at its iteration (or
//! heap-pop, or sampling-round) boundary through the one shared
//! [`check_cancelled`] hook — so `Termination::Cancelled` means the same thing
//! whatever the method: the run stopped within one checkpoint of the request,
//! carrying its partial statistics.
//!
//! In the serving stack this trait is **layer 1**: [`crate::IntegrationService`]
//! (one device, priority queue, deadline-aware admission) sits on top of it,
//! and [`crate::MultiDeviceService`] (N lanes, one shared cost model) on top
//! of that.  `ARCHITECTURE.md` at the repository root draws the full picture.

use std::time::Instant;

use pagani_device::Device;
use pagani_quadrature::{Integrand, IntegrationResult, Region, Termination, Tolerances};

use crate::arena::ScratchArena;
use crate::driver::{CancelToken, Pagani};

/// What a method can and cannot do, for runtime method selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Repeated runs on equal inputs are bit-identical.
    pub deterministic: bool,
    /// The method launches kernels on the simulated device (and therefore
    /// profits from its worker pool) rather than running on the host alone.
    pub uses_device: bool,
    /// The method subdivides the domain adaptively.
    pub adaptive: bool,
    /// The error estimate is statistical (a standard error across randomised
    /// replicas) rather than a cubature-style error bound estimate.
    pub statistical_errors: bool,
    /// Smallest supported dimensionality.
    pub min_dim: usize,
    /// Largest supported dimensionality, if bounded.
    pub max_dim: Option<usize>,
}

impl Capabilities {
    /// Whether the method supports `dim`-dimensional integrands.
    #[must_use]
    pub fn supports_dim(&self, dim: usize) -> bool {
        dim >= self.min_dim && self.max_dim.is_none_or(|max| dim <= max)
    }
}

/// A numerical integration method, usable through dynamic dispatch.
///
/// Every method in the workspace — [`Pagani`] and the four baselines —
/// answers the same question through this trait, so harnesses, examples and
/// the serving layer can hold a `Vec<Box<dyn Integrator>>` and sweep methods
/// without per-method code.
///
/// Implementations only provide [`Integrator::integrate_region_cancellable`]
/// (plus the descriptors); the uncancellable, default-bounds and region-slice
/// entry points are derived from it identically for every method.
pub trait Integrator: Send + Sync {
    /// Short stable method name (`"pagani"`, `"cuhre"`, ...), used in tables
    /// and benchmark output.
    fn name(&self) -> &'static str;

    /// What this method can do.
    fn capabilities(&self) -> Capabilities;

    /// Integrate `f` over a single axis-aligned region, polling `cancel` at
    /// every checkpoint (driver iteration, heap pop or sampling round).
    ///
    /// A cancelled run stops within one checkpoint and reports
    /// [`Termination::Cancelled`] together with whatever cumulative estimate
    /// and counters it had accumulated.  An uncancelled token never changes a
    /// result.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ, or the dimension
    /// is outside the method's supported range.
    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult;

    /// Integrate `f` over a single axis-aligned region.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ, or the dimension
    /// is outside the method's supported range.
    fn integrate_region(&self, f: &dyn Integrand, region: &Region) -> IntegrationResult {
        self.integrate_region_cancellable(f, region, &CancelToken::new())
    }

    /// Integrate `f` over its default bounds (the unit cube for the paper's
    /// suite).
    fn integrate(&self, f: &dyn Integrand) -> IntegrationResult {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over a disjoint union of regions and combine the
    /// per-region results: estimates, errors, function evaluations, generated
    /// regions and final active-region counts are summed; `iterations` is the
    /// maximum over the parts (the parts are independent runs, not one longer
    /// run); the most severe per-region termination is reported.
    ///
    /// An empty slice yields an exact zero result.
    fn integrate_regions(&self, f: &dyn Integrand, regions: &[Region]) -> IntegrationResult {
        let start = Instant::now();
        let mut combined = IntegrationResult {
            estimate: 0.0,
            error_estimate: 0.0,
            termination: Termination::Converged,
            iterations: 0,
            function_evaluations: 0,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: start.elapsed(),
        };
        for region in regions {
            let part = self.integrate_region(f, region);
            combined.estimate += part.estimate;
            combined.error_estimate += part.error_estimate;
            combined.iterations = combined.iterations.max(part.iterations);
            combined.function_evaluations += part.function_evaluations;
            combined.regions_generated += part.regions_generated;
            combined.active_regions_final += part.active_regions_final;
            combined.termination = worst_termination(combined.termination, part.termination);
        }
        combined.wall_time = start.elapsed();
        combined
    }
}

/// The more severe of two terminations, for combining per-region results:
/// `Cancelled > MemoryExhausted > MaxEvaluations > MaxIterations > Converged`.
#[must_use]
pub fn worst_termination(a: Termination, b: Termination) -> Termination {
    fn severity(t: Termination) -> u8 {
        match t {
            Termination::Converged => 0,
            Termination::MaxIterations => 1,
            Termination::MaxEvaluations => 2,
            Termination::MemoryExhausted => 3,
            Termination::Cancelled => 4,
        }
    }
    if severity(b) > severity(a) {
        b
    } else {
        a
    }
}

/// The one dimension check every method applies to explicit bounds.
///
/// # Panics
/// Panics if the region and integrand dimensions differ.
pub fn ensure_matching_dims<F: Integrand + ?Sized>(f: &F, region: &Region) {
    assert_eq!(
        region.dim(),
        f.dim(),
        "integration region and integrand dimensions differ"
    );
}

/// The one cancellation checkpoint every driver polls.
///
/// Returns `Some(Termination::Cancelled)` when cancellation has been
/// requested, so a driver loop reads as
///
/// ```ignore
/// if let Some(t) = check_cancelled(cancel) {
///     termination = t;
///     break;
/// }
/// ```
///
/// at each of its iteration / heap-pop / sampling-round boundaries.  Sharing
/// this helper (instead of five hand-rolled flag checks) is what keeps
/// `Termination::Cancelled` uniform across methods.
#[must_use]
pub fn check_cancelled(cancel: &CancelToken) -> Option<Termination> {
    cancel.is_cancelled().then_some(Termination::Cancelled)
}

/// Builds a live [`Integrator`] on a device — the hook through which a
/// scheduling service turns a per-job method configuration into the
/// `Box<dyn Integrator>` that actually runs the job.
///
/// `pagani-baselines` implements this for its `MethodConfig` enum, so any of
/// the five methods can ride along with a job; custom factories (a tuned
/// in-house method, a mock for tests) plug into the same slot.
pub trait IntegratorFactory: Send + Sync + std::fmt::Debug {
    /// Stable method name, matching [`Integrator::name`] of the built method.
    fn method_name(&self) -> &'static str;

    /// The error targets the built integrator will pursue, when the
    /// configuration knows them.  Cost-based dispatch uses this to weigh the
    /// job; `None` falls back to the service's default tolerances.
    fn tolerances(&self) -> Option<Tolerances> {
        None
    }

    /// Instantiate the method on `device`.
    fn build(&self, device: &Device) -> Box<dyn Integrator>;
}

impl Integrator for Pagani {
    fn name(&self) -> &'static str {
        "pagani"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            deterministic: true,
            uses_device: true,
            adaptive: true,
            statistical_errors: false,
            min_dim: 2,
            max_dim: Some(30),
        }
    }

    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        Pagani::integrate_region_with(self, f, region, &ScratchArena::default(), cancel).result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaganiConfig;
    use pagani_device::Device;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn boxed_pagani(tol: f64) -> Box<dyn Integrator> {
        Box::new(Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(tol)),
        ))
    }

    #[test]
    fn dyn_dispatch_matches_the_inherent_api() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1]);
        let pagani = Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(1e-6)),
        );
        let inherent = pagani.integrate(&f).result;
        let trait_obj: &dyn Integrator = &pagani;
        let dynamic = trait_obj.integrate(&f);
        assert_eq!(inherent.estimate.to_bits(), dynamic.estimate.to_bits());
        assert_eq!(trait_obj.name(), "pagani");
        assert!(trait_obj.capabilities().deterministic);
        assert!(trait_obj.capabilities().supports_dim(5));
        assert!(!trait_obj.capabilities().supports_dim(31));
    }

    #[test]
    fn region_slice_matches_the_whole_domain() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let integrator = boxed_pagani(1e-8);
        let whole = integrator.integrate(&f);
        let (left, right) = Region::unit_cube(2).split(0);
        let halves = integrator.integrate_regions(&f, &[left, right]);
        assert!(whole.converged() && halves.converged());
        assert!((whole.estimate - halves.estimate).abs() < 1e-7);
    }

    #[test]
    fn empty_region_slice_is_exactly_zero() {
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        let result = boxed_pagani(1e-3).integrate_regions(&f, &[]);
        assert_eq!(result.estimate, 0.0);
        assert_eq!(result.function_evaluations, 0);
        assert!(result.converged());
    }

    #[test]
    fn termination_severity_ordering() {
        use Termination::*;
        assert_eq!(worst_termination(Converged, MaxIterations), MaxIterations);
        assert_eq!(
            worst_termination(MemoryExhausted, MaxEvaluations),
            MemoryExhausted
        );
        assert_eq!(worst_termination(Cancelled, MemoryExhausted), Cancelled);
        assert_eq!(worst_termination(Converged, Converged), Converged);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn dimension_mismatch_is_rejected() {
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        ensure_matching_dims(&f, &Region::unit_cube(3));
    }

    #[test]
    fn check_cancelled_mirrors_the_token() {
        let token = CancelToken::new();
        assert_eq!(check_cancelled(&token), None);
        token.cancel();
        assert_eq!(check_cancelled(&token), Some(Termination::Cancelled));
        // Idempotent: asking again reports the same thing.
        assert_eq!(check_cancelled(&token), Some(Termination::Cancelled));
    }

    #[test]
    fn cancellable_trait_entry_point_honours_a_pre_cancelled_token() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let integrator = boxed_pagani(1e-6);
        let token = CancelToken::new();
        token.cancel();
        let result = integrator.integrate_region_cancellable(&f, &Region::unit_cube(2), &token);
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn cancellable_trait_entry_point_is_bit_transparent_when_uncancelled() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1]);
        let integrator = boxed_pagani(1e-6);
        let plain = integrator.integrate_region(&f, &Region::unit_cube(2));
        let with_token =
            integrator.integrate_region_cancellable(&f, &Region::unit_cube(2), &CancelToken::new());
        assert_eq!(plain.estimate.to_bits(), with_token.estimate.to_bits());
    }
}
