//! The flat, structure-of-arrays region list.
//!
//! PAGANI never builds a tree or a heap: the regions alive at one iteration are stored
//! as two flat coordinate arrays (per-axis left edge and per-axis length), exactly like
//! the `dRegions` / `dRegionsLength` buffers of the CUDA implementation.  All geometry
//! arrays are allocated from the simulated device's [`MemoryPool`], so subdivision
//! fails with `OutOfDeviceMemory` at the same point it would fail on the 16 GiB V100.
//!
//! The generation produced by [`RegionList::split_all`] uses the sibling layout the
//! `RefineError` kernel expects: splitting `m` parents yields `2m` children with all
//! left halves in slots `0..m` and all right halves in slots `m..2m`; child `i` and
//! `i ± m` are siblings and their parent is `i mod m`.

use pagani_device::{DeviceBuffer, DeviceResult, MemoryPool};
use pagani_quadrature::Region;

use crate::arena::ScratchArena;

/// Structure-of-arrays storage for one generation of sub-regions.
#[derive(Debug)]
pub struct RegionList {
    dim: usize,
    len: usize,
    /// `len * dim` left edges, region-major (`lefts[i*dim + axis]`).
    lefts: DeviceBuffer<f64>,
    /// `len * dim` edge lengths, region-major.
    lengths: DeviceBuffer<f64>,
}

/// Charge a geometry pair against `pool`.  On failure, whatever storage is
/// still recoverable goes back to `arena`: the sibling vector (and, when the
/// *second* charge fails, the already-charged first buffer), but not the
/// vector consumed by the failing `adopt_vec` itself — so an OOM retry
/// re-allocates at most one of the two arrays.
fn adopt_pair(
    pool: &MemoryPool,
    arena: &ScratchArena,
    lefts: Vec<f64>,
    lengths: Vec<f64>,
) -> DeviceResult<(DeviceBuffer<f64>, DeviceBuffer<f64>)> {
    let lefts = match arena.adopt_f64(pool, lefts) {
        Ok(buf) => buf,
        Err(err) => {
            arena.put_f64(lengths);
            return Err(err);
        }
    };
    match arena.adopt_f64(pool, lengths) {
        Ok(lengths) => Ok((lefts, lengths)),
        Err(err) => {
            arena.retire_f64(lefts);
            Err(err)
        }
    }
}

impl RegionList {
    /// Bytes of device memory needed to store `count` regions of dimension `dim`.
    #[must_use]
    pub fn bytes_for(count: usize, dim: usize) -> usize {
        2 * count * dim * std::mem::size_of::<f64>()
    }

    /// Build the initial list by uniformly splitting `root` into `d` parts per axis.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the `d^dim` regions do not fit in the pool.
    pub fn initial_split(root: &Region, d: usize, pool: &MemoryPool) -> DeviceResult<Self> {
        Self::initial_split_in(root, d, pool, &ScratchArena::default())
    }

    /// [`RegionList::initial_split`] drawing its backing storage from `arena`.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the `d^dim` regions do not fit in the pool.
    pub fn initial_split_in(
        root: &Region,
        d: usize,
        pool: &MemoryPool,
        arena: &ScratchArena,
    ) -> DeviceResult<Self> {
        let dim = root.dim();
        let count = d.pow(dim as u32);
        let mut lefts = arena.take_f64(count * dim);
        let mut lengths = arena.take_f64(count * dim);
        let mut coords = vec![0usize; dim];
        for _ in 0..count {
            for (axis, &c) in coords.iter().enumerate() {
                let step = root.extent(axis) / d as f64;
                lefts.push(root.lo()[axis] + c as f64 * step);
                lengths.push(step);
            }
            for c in coords.iter_mut().rev() {
                *c += 1;
                if *c < d {
                    break;
                }
                *c = 0;
            }
        }
        let (lefts, lengths) = adopt_pair(pool, arena, lefts, lengths)?;
        Ok(Self {
            dim,
            len: count,
            lefts,
            lengths,
        })
    }

    /// Build a list from explicit owned regions (used by the baselines and tests).
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the regions do not fit in the pool.
    ///
    /// # Panics
    /// Panics if `regions` is empty or the regions disagree in dimension.
    pub fn from_regions(regions: &[Region], pool: &MemoryPool) -> DeviceResult<Self> {
        assert!(!regions.is_empty(), "region list cannot be empty");
        let dim = regions[0].dim();
        assert!(
            regions.iter().all(|r| r.dim() == dim),
            "regions must share a dimension"
        );
        let mut lefts = Vec::with_capacity(regions.len() * dim);
        let mut lengths = Vec::with_capacity(regions.len() * dim);
        for region in regions {
            for axis in 0..dim {
                lefts.push(region.lo()[axis]);
                lengths.push(region.extent(axis));
            }
        }
        Ok(Self {
            dim,
            len: regions.len(),
            lefts: pool.adopt_vec(lefts)?,
            lengths: pool.adopt_vec(lengths)?,
        })
    }

    /// Rebuild a list from flat region-major geometry (the snapshot/resume
    /// path): `lefts[i*dim + axis]` / `lengths[i*dim + axis]` exactly as
    /// [`Self::lefts`] / [`Self::lengths`] expose them.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the regions do not fit in the pool; the
    /// staging buffers are shelved back into the arena on failure.
    ///
    /// # Panics
    /// Panics if `dim` is zero, the buffers disagree in length, the length is
    /// not a multiple of `dim`, or the geometry is empty.
    pub fn from_flat_in(
        dim: usize,
        lefts: &[f64],
        lengths: &[f64],
        pool: &MemoryPool,
        arena: &ScratchArena,
    ) -> DeviceResult<Self> {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(lefts.len(), lengths.len(), "geometry buffers must match");
        assert_eq!(lefts.len() % dim, 0, "geometry must be region-major");
        assert!(!lefts.is_empty(), "region list cannot be empty");
        let mut left_buf = arena.take_f64(lefts.len());
        left_buf.extend_from_slice(lefts);
        let mut length_buf = arena.take_f64(lengths.len());
        length_buf.extend_from_slice(lengths);
        let (left_buf, length_buf) = adopt_pair(pool, arena, left_buf, length_buf)?;
        Ok(Self {
            dim,
            len: lefts.len() / dim,
            lefts: left_buf,
            lengths: length_buf,
        })
    }

    /// Number of regions in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the regions.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Device-memory bytes charged by this list.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        self.lefts.charged_bytes() + self.lengths.charged_bytes()
    }

    /// The whole flat left-edge array, region-major (`[i*dim + axis]`) —
    /// the buffer a batched structure-of-arrays launch packs from.
    #[must_use]
    pub fn lefts(&self) -> &[f64] {
        &self.lefts[..self.len * self.dim]
    }

    /// The whole flat edge-length array, region-major (`[i*dim + axis]`).
    #[must_use]
    pub fn lengths(&self) -> &[f64] {
        &self.lengths[..self.len * self.dim]
    }

    /// Left edges of region `i`.
    #[must_use]
    pub fn lefts_of(&self, i: usize) -> &[f64] {
        &self.lefts[i * self.dim..(i + 1) * self.dim]
    }

    /// Edge lengths of region `i`.
    #[must_use]
    pub fn lengths_of(&self, i: usize) -> &[f64] {
        &self.lengths[i * self.dim..(i + 1) * self.dim]
    }

    /// Centre and half-widths of region `i`, written into the provided buffers.
    pub fn centered_view(&self, i: usize, center: &mut [f64], halfwidth: &mut [f64]) {
        let lefts = self.lefts_of(i);
        let lengths = self.lengths_of(i);
        for axis in 0..self.dim {
            halfwidth[axis] = 0.5 * lengths[axis];
            center[axis] = lefts[axis] + halfwidth[axis];
        }
    }

    /// Materialise region `i` as an owned [`Region`].
    #[must_use]
    pub fn region(&self, i: usize) -> Region {
        let lefts = self.lefts_of(i);
        let lengths = self.lengths_of(i);
        let lo: Vec<f64> = lefts.to_vec();
        let hi: Vec<f64> = lefts.iter().zip(lengths).map(|(&l, &s)| l + s).collect();
        Region::new(lo, hi)
    }

    /// Total volume of all regions in the list.
    #[must_use]
    pub fn total_volume(&self) -> f64 {
        (0..self.len)
            .map(|i| self.lengths_of(i).iter().product::<f64>())
            .sum()
    }

    /// Keep only the regions whose `mask` entry is non-zero.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the compacted copy does not fit (the original
    /// list is still alive while the copy is built, as on the GPU).
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn filter(&self, mask: &[u8], pool: &MemoryPool) -> DeviceResult<Self> {
        self.filter_in(mask, pool, &ScratchArena::default())
    }

    /// [`RegionList::filter`] drawing the compacted copy's storage from `arena`.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the compacted copy does not fit.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn filter_in(
        &self,
        mask: &[u8],
        pool: &MemoryPool,
        arena: &ScratchArena,
    ) -> DeviceResult<Self> {
        assert_eq!(mask.len(), self.len, "mask length mismatch");
        let mut survivors = arena.take_axes(self.len);
        survivors.extend(
            mask.iter()
                .enumerate()
                .filter(|(_, &m)| m != 0)
                .map(|(i, _)| i),
        );
        let mut lefts = arena.take_f64(survivors.len() * self.dim);
        let mut lengths = arena.take_f64(survivors.len() * self.dim);
        for &i in &survivors {
            lefts.extend_from_slice(self.lefts_of(i));
            lengths.extend_from_slice(self.lengths_of(i));
        }
        let len = survivors.len();
        arena.put_axes(survivors);
        let (lefts, lengths) = adopt_pair(pool, arena, lefts, lengths)?;
        Ok(Self {
            dim: self.dim,
            len,
            lefts,
            lengths,
        })
    }

    /// Split every region in half along its per-region `axes` entry, producing the
    /// next generation in the sibling layout described in the module docs.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the doubled list does not fit while this one is
    /// still allocated — the condition PAGANI's memory-exhaustion handling watches for.
    ///
    /// # Panics
    /// Panics if `axes.len() != self.len()` or any axis is out of range.
    pub fn split_all(&self, axes: &[usize], pool: &MemoryPool) -> DeviceResult<Self> {
        self.split_all_in(axes, pool, &ScratchArena::default())
    }

    /// [`RegionList::split_all`] drawing the children's storage from `arena`.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the doubled list does not fit while this
    /// one is still allocated.
    ///
    /// # Panics
    /// Panics if `axes.len() != self.len()` or any axis is out of range.
    pub fn split_all_in(
        &self,
        axes: &[usize],
        pool: &MemoryPool,
        arena: &ScratchArena,
    ) -> DeviceResult<Self> {
        assert_eq!(axes.len(), self.len, "axis list length mismatch");
        let m = self.len;
        let dim = self.dim;
        let mut lefts = arena.take_f64(2 * m * dim);
        lefts.resize(2 * m * dim, 0.0);
        let mut lengths = arena.take_f64(2 * m * dim);
        lengths.resize(2 * m * dim, 0.0);
        for i in 0..m {
            let axis = axes[i];
            assert!(axis < dim, "split axis {axis} out of range for dim {dim}");
            let src_left = self.lefts_of(i);
            let src_len = self.lengths_of(i);
            let half = 0.5 * src_len[axis];
            // Left child in slot i, right child in slot m + i.
            let left_slot = &mut lefts[i * dim..(i + 1) * dim];
            left_slot.copy_from_slice(src_left);
            let right_slot_start = (m + i) * dim;
            lefts[right_slot_start..right_slot_start + dim].copy_from_slice(src_left);
            lefts[right_slot_start + axis] += half;

            lengths[i * dim..(i + 1) * dim].copy_from_slice(src_len);
            lengths[i * dim + axis] = half;
            lengths[right_slot_start..right_slot_start + dim].copy_from_slice(src_len);
            lengths[right_slot_start + axis] = half;
        }
        let (lefts, lengths) = adopt_pair(pool, arena, lefts, lengths)?;
        Ok(Self {
            dim,
            len: 2 * m,
            lefts,
            lengths,
        })
    }

    /// Consume the list, releasing its device-memory charge and shelving its
    /// backing storage into `arena` for the next generation or job.
    pub fn retire(self, arena: &ScratchArena) {
        arena.retire_f64(self.lefts);
        arena.retire_f64(self.lengths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::MemoryPool;
    use proptest::prelude::*;

    fn big_pool() -> MemoryPool {
        MemoryPool::new(64 << 20)
    }

    #[test]
    fn initial_split_covers_the_root() {
        let pool = big_pool();
        let root = Region::unit_cube(3);
        let list = RegionList::initial_split(&root, 4, &pool).unwrap();
        assert_eq!(list.len(), 64);
        assert_eq!(list.dim(), 3);
        assert!((list.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_split_charges_memory() {
        let pool = big_pool();
        let root = Region::unit_cube(2);
        let list = RegionList::initial_split(&root, 8, &pool).unwrap();
        assert_eq!(list.charged_bytes(), RegionList::bytes_for(64, 2));
        assert_eq!(pool.usage().used, list.charged_bytes());
    }

    #[test]
    fn out_of_memory_surfaces() {
        let pool = MemoryPool::new(128);
        let root = Region::unit_cube(3);
        assert!(RegionList::initial_split(&root, 8, &pool).is_err());
    }

    #[test]
    fn region_roundtrip() {
        let pool = big_pool();
        let root = Region::new(vec![-1.0, 2.0], vec![1.0, 6.0]);
        let list = RegionList::initial_split(&root, 2, &pool).unwrap();
        // Region 0 is the lowest-corner cell.
        let r0 = list.region(0);
        assert_eq!(r0.lo(), &[-1.0, 2.0]);
        assert_eq!(r0.hi(), &[0.0, 4.0]);
        // The last region is the highest-corner cell.
        let r3 = list.region(3);
        assert_eq!(r3.lo(), &[0.0, 4.0]);
        assert_eq!(r3.hi(), &[1.0, 6.0]);
    }

    #[test]
    fn centered_view_matches_region() {
        let pool = big_pool();
        let list = RegionList::from_regions(&[Region::new(vec![0.0, 1.0], vec![2.0, 5.0])], &pool)
            .unwrap();
        let mut center = [0.0; 2];
        let mut halfwidth = [0.0; 2];
        list.centered_view(0, &mut center, &mut halfwidth);
        assert_eq!(center, [1.0, 3.0]);
        assert_eq!(halfwidth, [1.0, 2.0]);
    }

    #[test]
    fn split_all_uses_sibling_layout() {
        let pool = big_pool();
        let regions = vec![
            Region::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            Region::new(vec![2.0, 0.0], vec![4.0, 2.0]),
        ];
        let list = RegionList::from_regions(&regions, &pool).unwrap();
        let children = list.split_all(&[0, 1], &pool).unwrap();
        assert_eq!(children.len(), 4);
        // Parent 0 split along axis 0: left child occupies [0, 0.5].
        assert_eq!(children.region(0).hi()[0], 0.5);
        assert_eq!(children.region(2).lo()[0], 0.5);
        // Parent 1 split along axis 1: left child occupies [0, 1] on axis 1.
        assert_eq!(children.region(1).hi()[1], 1.0);
        assert_eq!(children.region(3).lo()[1], 1.0);
        // Volume is conserved.
        assert!((children.total_volume() - list.total_volume()).abs() < 1e-12);
    }

    #[test]
    fn filter_keeps_marked_regions_in_order() {
        let pool = big_pool();
        let root = Region::unit_cube(1);
        let list = RegionList::initial_split(&root, 4, &pool).unwrap();
        let filtered = list.filter(&[0, 1, 0, 1], &pool).unwrap();
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.region(0).lo()[0], 0.25);
        assert_eq!(filtered.region(1).lo()[0], 0.75);
    }

    #[test]
    fn memory_is_released_when_lists_drop() {
        let pool = big_pool();
        {
            let list = RegionList::initial_split(&Region::unit_cube(3), 4, &pool).unwrap();
            let children = list.split_all(&vec![0; list.len()], &pool).unwrap();
            assert!(pool.usage().used >= children.charged_bytes());
        }
        assert_eq!(pool.usage().used, 0);
    }

    #[test]
    fn arena_path_produces_identical_geometry() {
        let pool = big_pool();
        let arena = ScratchArena::new();
        let root = Region::unit_cube(3);
        let plain = RegionList::initial_split(&root, 4, &pool).unwrap();
        let arenad = RegionList::initial_split_in(&root, 4, &pool, &arena).unwrap();
        assert_eq!(plain.len(), arenad.len());
        for i in 0..plain.len() {
            assert_eq!(plain.lefts_of(i), arenad.lefts_of(i));
            assert_eq!(plain.lengths_of(i), arenad.lengths_of(i));
        }
        let axes = vec![0usize; plain.len()];
        let mask: Vec<u8> = (0..plain.len()).map(|i| (i % 2) as u8).collect();
        let plain_children = plain.split_all(&axes, &pool).unwrap();
        let arena_children = arenad.split_all_in(&axes, &pool, &arena).unwrap();
        for i in 0..plain_children.len() {
            assert_eq!(plain_children.lefts_of(i), arena_children.lefts_of(i));
        }
        let plain_filtered = plain.filter(&mask, &pool).unwrap();
        let arena_filtered = arenad.filter_in(&mask, &pool, &arena).unwrap();
        assert_eq!(plain_filtered.len(), arena_filtered.len());
        for i in 0..plain_filtered.len() {
            assert_eq!(plain_filtered.lefts_of(i), arena_filtered.lefts_of(i));
        }
    }

    #[test]
    fn retire_releases_charge_and_enables_reuse() {
        let pool = big_pool();
        let arena = ScratchArena::new();
        let list = RegionList::initial_split_in(&Region::unit_cube(3), 4, &pool, &arena).unwrap();
        let bytes = list.charged_bytes();
        assert_eq!(pool.usage().used, bytes);
        list.retire(&arena);
        assert_eq!(pool.usage().used, 0);
        // The next generation of the same shape is served from the shelf.
        let _again = RegionList::initial_split_in(&Region::unit_cube(3), 4, &pool, &arena).unwrap();
        assert!(arena.reuse_hits() >= 2, "hits {}", arena.reuse_hits());
    }

    #[test]
    fn split_failure_when_pool_is_tight() {
        // Pool fits the initial list but not the doubled generation.
        let dim = 2;
        let initial = RegionList::bytes_for(16, dim);
        let pool = MemoryPool::new(initial + RegionList::bytes_for(8, dim));
        let list = RegionList::initial_split(&Region::unit_cube(dim), 4, &pool).unwrap();
        assert!(list.split_all(&[0; 16], &pool).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_split_all_preserves_volume(
            dim in 1usize..5,
            d in 1usize..4,
            axis_seed in 0usize..1000,
        ) {
            let pool = MemoryPool::new(256 << 20);
            let list = RegionList::initial_split(&Region::unit_cube(dim), d, &pool).unwrap();
            let axes: Vec<usize> = (0..list.len()).map(|i| (axis_seed + i) % dim).collect();
            let children = list.split_all(&axes, &pool).unwrap();
            prop_assert_eq!(children.len(), 2 * list.len());
            prop_assert!((children.total_volume() - list.total_volume()).abs() < 1e-10);
        }

        #[test]
        fn prop_filter_then_volume_is_partial_sum(
            d in 2usize..5,
            seed in 0u64..u64::MAX,
        ) {
            let pool = MemoryPool::new(64 << 20);
            let list = RegionList::initial_split(&Region::unit_cube(2), d, &pool).unwrap();
            let mask: Vec<u8> = (0..list.len()).map(|i| ((seed >> (i % 59)) & 1) as u8).collect();
            let expected: f64 = (0..list.len())
                .filter(|&i| mask[i] != 0)
                .map(|i| list.lengths_of(i).iter().product::<f64>())
                .sum();
            let filtered = list.filter(&mask, &pool).unwrap();
            prop_assert!((filtered.total_volume() - expected).abs() < 1e-12);
        }
    }
}
