//! One fluent construction path for every service flavour.
//!
//! The service layer grew three times — [`IntegrationService`] (one device),
//! [`MultiDeviceService`] (N in-process lanes), and now the distributed
//! front-end [`DistributedService`] — and each growth step used to add
//! another `with_*` constructor to every type.  [`ServiceBuilder`] replaces
//! that constructor zoo: collect devices, a [`ServicePolicy`], a
//! [`DispatchMode`], an optional [`ResultCache`], an optional shared
//! [`CostModel`] and (for the distributed service) remote worker endpoints,
//! then call the `build_*` method matching the topology you want.  The
//! historical constructors survive as thin delegates of this builder.
//!
//! ```
//! use pagani_core::ServiceBuilder;
//! use pagani_core::{BatchJob, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let service = ServiceBuilder::new(PaganiConfig::test_small(Tolerances::rel(1e-6)))
//!     .device(Device::test_small())
//!     .queue_bound(32)
//!     .build();
//! let handle = service.submit(BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1])));
//! assert!(handle.wait().result.converged());
//! service.shutdown();
//! ```

use std::sync::Arc;
use std::time::Duration;

use pagani_device::Device;
use pagani_persist::ResultCache;

use crate::config::PaganiConfig;
use crate::cost::CostModel;
use crate::multi_device::{DispatchMode, MultiDeviceService};
use crate::remote::{DistributedService, IntegrandRegistry};
use crate::service::{IntegrationService, ServicePolicy};

/// The default interval between heartbeat probes on a remote connection.
pub(crate) const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Fluent builder for [`IntegrationService`], [`MultiDeviceService`] and
/// [`DistributedService`] — see the [module docs](crate::builder) for the
/// rationale and an example.
///
/// Build methods are strict about topology so a mis-assembled builder fails
/// loudly instead of silently ignoring half its configuration:
/// [`ServiceBuilder::build`] wants exactly one device and no endpoints,
/// [`ServiceBuilder::build_multi`] at least one device and no endpoints,
/// [`ServiceBuilder::build_distributed`] at least one endpoint and no
/// devices (remote workers bring their own).
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    pub(crate) config: PaganiConfig,
    pub(crate) devices: Vec<Device>,
    pub(crate) policy: ServicePolicy,
    pub(crate) dispatch: DispatchMode,
    pub(crate) cache: Option<Arc<ResultCache>>,
    pub(crate) model: Option<Arc<CostModel>>,
    pub(crate) endpoints: Vec<String>,
    pub(crate) registry: Option<Arc<IntegrandRegistry>>,
    pub(crate) heartbeat_interval: Duration,
}

impl ServiceBuilder {
    /// Start a builder around the default job configuration `config` (the
    /// tolerances and PAGANI parameters applied to jobs without a per-job
    /// method override).
    #[must_use]
    pub fn new(config: PaganiConfig) -> Self {
        Self {
            config,
            devices: Vec::new(),
            policy: ServicePolicy::default(),
            dispatch: DispatchMode::default(),
            cache: None,
            model: None,
            endpoints: Vec::new(),
            registry: None,
            heartbeat_interval: DEFAULT_HEARTBEAT_INTERVAL,
        }
    }

    /// Add one device lane.
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.devices.push(device);
        self
    }

    /// Add several device lanes at once.
    #[must_use]
    pub fn devices(mut self, devices: impl IntoIterator<Item = Device>) -> Self {
        self.devices.extend(devices);
        self
    }

    /// Use an explicit [`ServicePolicy`] (queue bound + worker count).
    #[must_use]
    pub fn policy(mut self, policy: ServicePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bound the submission queue (per lane; at the front-end for the
    /// distributed service) — sugar for [`ServicePolicy::with_queue_bound`].
    #[must_use]
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.policy = self.policy.with_queue_bound(bound);
        self
    }

    /// Use an explicit worker-thread count per lane — sugar for
    /// [`ServicePolicy::with_workers`].
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.policy = self.policy.with_workers(workers);
        self
    }

    /// Choose how jobs are assigned to lanes (multi-device topologies only).
    #[must_use]
    pub fn dispatch(mut self, mode: DispatchMode) -> Self {
        self.dispatch = mode;
        self
    }

    /// Attach a shared [`ResultCache`]: exact hits, warm starts and partial
    /// snapshots, shared by every lane (see
    /// [`IntegrationService::with_cache`]).  The distributed front-end uses
    /// it as the crash-recovery store: partial snapshots shipped back by
    /// workers are kept here and re-shipped when a job is requeued.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Share an externally owned measured [`CostModel`] instead of creating a
    /// fresh one — lanes (or services) built from the same model pool their
    /// learning.
    #[must_use]
    pub fn cost_model(mut self, model: Arc<CostModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// Add one remote worker endpoint (`host:port`) for
    /// [`ServiceBuilder::build_distributed`].
    #[must_use]
    pub fn endpoint(mut self, addr: impl Into<String>) -> Self {
        self.endpoints.push(addr.into());
        self
    }

    /// Add several remote worker endpoints at once.
    #[must_use]
    pub fn endpoints<I, S>(mut self, addrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.endpoints.extend(addrs.into_iter().map(Into::into));
        self
    }

    /// The [`IntegrandRegistry`] naming the integrands jobs may reference —
    /// required by [`crate::remote::RemoteWorker`]; optional at the front-end
    /// (jobs there carry their integrand and only its *name* crosses the
    /// wire).
    #[must_use]
    pub fn registry(mut self, registry: Arc<IntegrandRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Interval between heartbeat probes on each remote connection
    /// (distributed topologies only; minimum 10 ms).
    #[must_use]
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval.max(Duration::from_millis(10));
        self
    }

    /// Build a single-device [`IntegrationService`].
    ///
    /// # Panics
    /// Panics unless exactly one device was supplied and no remote endpoints
    /// were configured.
    #[must_use]
    pub fn build(mut self) -> IntegrationService {
        assert!(
            self.endpoints.is_empty(),
            "remote endpoints were configured: build_distributed() is the matching topology"
        );
        assert!(
            self.devices.len() == 1,
            "build() wants exactly one device ({} supplied); use build_multi() for a pool",
            self.devices.len()
        );
        let device = self.devices.pop().expect("length checked above");
        IntegrationService::with_policy_and_model(
            device,
            self.config,
            self.policy,
            self.model.unwrap_or_else(|| Arc::new(CostModel::new())),
            self.cache,
        )
    }

    /// Build a [`MultiDeviceService`]: one lane per supplied device, all
    /// lanes sharing one cost model (and the cache, when one is attached).
    ///
    /// # Panics
    /// Panics unless at least one device was supplied and no remote
    /// endpoints were configured.
    #[must_use]
    pub fn build_multi(self) -> MultiDeviceService {
        assert!(
            self.endpoints.is_empty(),
            "remote endpoints were configured: build_distributed() is the matching topology"
        );
        MultiDeviceService::from_builder(self)
    }

    /// Connect to every configured endpoint and build a
    /// [`DistributedService`] front-end sharding jobs across those remote
    /// workers.
    ///
    /// # Errors
    /// Propagates connection failures and handshake rejections (protocol
    /// version mismatch) as `io::Error`.
    ///
    /// # Panics
    /// Panics if no endpoints were configured, or if devices were (remote
    /// workers bring their own devices).
    pub fn build_distributed(self) -> std::io::Result<DistributedService> {
        assert!(
            !self.endpoints.is_empty(),
            "build_distributed() needs at least one remote worker endpoint"
        );
        assert!(
            self.devices.is_empty(),
            "devices were configured: remote workers bring their own; use build()/build_multi() for local topologies"
        );
        DistributedService::from_builder(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchJob;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::Tolerances;

    fn config() -> PaganiConfig {
        PaganiConfig::test_small(Tolerances::rel(1e-4))
    }

    #[test]
    fn builds_a_single_device_service() {
        let service = ServiceBuilder::new(config())
            .device(Device::test_small())
            .queue_bound(8)
            .workers(2)
            .build();
        assert_eq!(service.worker_count(), 2);
        assert_eq!(service.policy().queue_bound, Some(8));
        let out = service.submit(BatchJob::new(PaperIntegrand::f4(3))).wait();
        assert!(out.result.converged());
        service.shutdown();
    }

    #[test]
    fn builds_a_multi_device_service_with_shared_model() {
        let model = Arc::new(CostModel::new());
        let service = ServiceBuilder::new(config())
            .devices([Device::test_small(), Device::test_small()])
            .dispatch(DispatchMode::RoundRobin)
            .cost_model(Arc::clone(&model))
            .build_multi();
        assert_eq!(service.device_count(), 2);
        assert_eq!(service.mode(), DispatchMode::RoundRobin);
        assert!(Arc::ptr_eq(service.cost_model(), &model));
        service.shutdown();
    }

    #[test]
    #[should_panic(expected = "exactly one device")]
    fn build_refuses_a_device_pool() {
        let _ = ServiceBuilder::new(config())
            .devices([Device::test_small(), Device::test_small()])
            .build();
    }

    #[test]
    #[should_panic(expected = "build_distributed() is the matching topology")]
    fn build_refuses_remote_endpoints() {
        let _ = ServiceBuilder::new(config())
            .device(Device::test_small())
            .endpoint("127.0.0.1:1")
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one remote worker endpoint")]
    fn build_distributed_wants_endpoints() {
        let _ = ServiceBuilder::new(config()).build_distributed();
    }

    #[test]
    fn cache_reaches_every_lane() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let service = ServiceBuilder::new(config())
            .device(Device::test_small())
            .cache(Arc::clone(&cache))
            .build();
        assert!(service
            .result_cache()
            .is_some_and(|c| Arc::ptr_eq(c, &cache)));
        service.shutdown();
    }
}
