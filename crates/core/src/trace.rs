//! Execution traces: per-iteration statistics and threshold-search probes.
//!
//! The trace is what the benchmark harness mines to regenerate Figure 3 (the threshold
//! search), Figure 9 (generated sub-regions), the tree-shape comparison of Figure 2
//! and the §4.3.2 performance breakdown.  Collecting it costs a few scalars per
//! iteration and can be disabled in [`crate::PaganiConfig`].

/// One probe of the threshold search (one dotted line of the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdProbe {
    /// Candidate threshold value.
    pub threshold: f64,
    /// Fraction of the currently-processed regions that the candidate would finish.
    pub fraction_finished: f64,
    /// Fraction of the remaining error budget that the finished regions would consume.
    pub budget_fraction: f64,
    /// Whether both the memory and the accuracy requirements were met.
    pub accepted: bool,
}

/// Summary of one invocation of the threshold classification.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSearchRecord {
    /// Iteration at which the search ran.
    pub iteration: usize,
    /// Why the search was triggered.
    pub trigger: ThresholdTrigger,
    /// All probes, in the order they were tried.
    pub probes: Vec<ThresholdProbe>,
    /// Whether an acceptable threshold was found.
    pub successful: bool,
}

/// What triggered a threshold classification (§3.5.2 lists exactly two causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdTrigger {
    /// The cumulative integral estimate's requested significant digits stopped
    /// changing while the error was still too large.
    EstimateConverged,
    /// The next subdivision would exhaust device memory.
    MemoryPressure,
}

/// Per-iteration statistics of a PAGANI run.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Number of regions evaluated this iteration.
    pub regions_processed: usize,
    /// Number of regions still active after all classification steps.
    pub active_after_classify: usize,
    /// Cumulative integral estimate (active + finished) at the end of the iteration.
    pub cumulative_estimate: f64,
    /// Cumulative error estimate (active + finished) at the end of the iteration.
    pub cumulative_error: f64,
    /// Integral contribution accumulated from finished regions so far.
    pub finished_estimate: f64,
    /// Error contribution accumulated from finished regions so far.
    pub finished_error: f64,
    /// Device-memory bytes in use at the end of the iteration.
    pub memory_used: usize,
    /// Whether the heuristic threshold classification ran this iteration.
    pub threshold_invoked: bool,
}

/// Full execution trace of one PAGANI run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// Records of every threshold search that ran.
    pub threshold_searches: Vec<ThresholdSearchRecord>,
}

impl ExecutionTrace {
    /// Maximum number of regions alive in any single iteration.
    #[must_use]
    pub fn peak_regions(&self) -> usize {
        self.iterations
            .iter()
            .map(|r| r.regions_processed)
            .max()
            .unwrap_or(0)
    }

    /// Total regions evaluated across all iterations (Figure 9's "generated regions").
    #[must_use]
    pub fn total_regions_processed(&self) -> u64 {
        self.iterations
            .iter()
            .map(|r| r.regions_processed as u64)
            .sum()
    }

    /// The width of the sub-region tree per depth — the Figure 2 comparison data.
    #[must_use]
    pub fn tree_widths(&self) -> Vec<usize> {
        self.iterations
            .iter()
            .map(|r| r.regions_processed)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iteration: usize, regions: usize) -> IterationRecord {
        IterationRecord {
            iteration,
            regions_processed: regions,
            active_after_classify: regions / 2,
            cumulative_estimate: 1.0,
            cumulative_error: 0.1,
            finished_estimate: 0.5,
            finished_error: 0.05,
            memory_used: regions * 64,
            threshold_invoked: false,
        }
    }

    #[test]
    fn peak_and_total_regions() {
        let trace = ExecutionTrace {
            iterations: vec![record(0, 100), record(1, 200), record(2, 150)],
            threshold_searches: Vec::new(),
        };
        assert_eq!(trace.peak_regions(), 200);
        assert_eq!(trace.total_regions_processed(), 450);
        assert_eq!(trace.tree_widths(), vec![100, 200, 150]);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let trace = ExecutionTrace::default();
        assert_eq!(trace.peak_regions(), 0);
        assert_eq!(trace.total_regions_processed(), 0);
        assert!(trace.tree_widths().is_empty());
    }
}
