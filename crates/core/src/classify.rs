//! Relative-error classification (Algorithm 2, line 12).
//!
//! A region whose own error estimate already satisfies the user tolerance relative to
//! its own integral estimate does not need further subdivision: by Lemma 3.1 of the
//! paper, if *every* region satisfied it (and all estimates share a sign) the global
//! tolerance would be satisfied too, so finishing such regions early never hurts the
//! convergence of the cumulative estimate.  For integrands that oscillate between
//! signs the lemma does not apply and the classification must be disabled
//! (`rel_err_filtering = false`), leaving every region active.

use pagani_quadrature::Tolerances;

/// Classification mask entry for an active region (needs further subdivision).
pub const ACTIVE: u8 = 1;
/// Classification mask entry for a finished region.
pub const FINISHED: u8 = 0;

/// Classify every region: `1` if the region must stay active, `0` if it is finished.
///
/// When `filtering_enabled` is false all regions stay active (the §3.5.1 escape hatch
/// for sign-oscillating integrands).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn rel_err_classify(
    integrals: &[f64],
    errors: &[f64],
    tolerances: Tolerances,
    filtering_enabled: bool,
) -> Vec<u8> {
    let mut mask = Vec::new();
    rel_err_classify_into(integrals, errors, tolerances, filtering_enabled, &mut mask);
    mask
}

/// [`rel_err_classify`] writing the mask into `out`, reusing its capacity.
///
/// `out` is cleared and refilled; this is the scratch-arena variant that lets
/// repeated iterations recycle one mask vector per generation.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rel_err_classify_into(
    integrals: &[f64],
    errors: &[f64],
    tolerances: Tolerances,
    filtering_enabled: bool,
    out: &mut Vec<u8>,
) {
    assert_eq!(integrals.len(), errors.len(), "length mismatch");
    out.clear();
    if !filtering_enabled {
        out.resize(integrals.len(), ACTIVE);
        return;
    }
    out.extend(integrals.iter().zip(errors).map(|(&v, &e)| {
        if tolerances.satisfied_by(v, e) {
            FINISHED
        } else {
            ACTIVE
        }
    }));
}

/// Count the active regions in a classification mask.
#[must_use]
pub fn active_count(mask: &[u8]) -> usize {
    mask.iter().filter(|&&m| m != FINISHED).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regions_meeting_their_relative_tolerance_are_finished() {
        let integrals = [1.0, 1.0, 0.0];
        let errors = [1e-5, 1e-2, 1e-25];
        let mask = rel_err_classify(&integrals, &errors, Tolerances::rel(1e-3), true);
        assert_eq!(mask, vec![FINISHED, ACTIVE, FINISHED]);
        assert_eq!(active_count(&mask), 1);
    }

    #[test]
    fn absolute_tolerance_also_finishes_regions() {
        let tol = Tolerances {
            rel: 1e-12,
            abs: 1e-6,
        };
        let mask = rel_err_classify(&[0.0, 5.0], &[1e-7, 1e-3], tol, true);
        assert_eq!(mask, vec![FINISHED, ACTIVE]);
    }

    #[test]
    fn disabling_filtering_keeps_everything_active() {
        let mask = rel_err_classify(&[1.0, 1.0], &[0.0, 0.0], Tolerances::rel(1e-3), false);
        assert_eq!(mask, vec![ACTIVE, ACTIVE]);
    }

    #[test]
    fn negative_estimates_use_magnitude() {
        let mask = rel_err_classify(&[-2.0], &[1e-4], Tolerances::rel(1e-3), true);
        assert_eq!(mask, vec![FINISHED]);
    }

    proptest! {
        #[test]
        fn prop_lemma_3_1_same_sign_finished_regions_satisfy_global_tolerance(
            values in proptest::collection::vec(1e-6f64..10.0, 1..200),
            rel in 1e-6f64..1e-2,
        ) {
            // Give every region an error just inside its own relative tolerance; the
            // cumulative relative error must then satisfy the tolerance too.
            let errors: Vec<f64> = values.iter().map(|&v| v * rel * 0.99).collect();
            let tol = Tolerances { rel, abs: 0.0 };
            let mask = rel_err_classify(&values, &errors, tol, true);
            prop_assert!(mask.iter().all(|&m| m == FINISHED));
            let v: f64 = values.iter().sum();
            let e: f64 = errors.iter().sum();
            prop_assert!(e <= rel * v.abs());
        }

        #[test]
        fn prop_classification_is_pointwise(
            values in proptest::collection::vec(-10.0f64..10.0, 1..100),
            errs in proptest::collection::vec(0.0f64..1.0, 1..100),
        ) {
            let n = values.len().min(errs.len());
            let tol = Tolerances::rel(1e-3);
            let mask = rel_err_classify(&values[..n], &errs[..n], tol, true);
            for i in 0..n {
                let expected = if tol.satisfied_by(values[i], errs[i]) { FINISHED } else { ACTIVE };
                prop_assert_eq!(mask[i], expected);
            }
        }
    }
}
