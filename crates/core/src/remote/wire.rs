//! The hand-rolled wire protocol: length-prefixed frames over `std::net`.
//!
//! The environment is offline, so there is no serde and no protobuf — every
//! message is a tag byte followed by fixed-layout little-endian fields,
//! wrapped in a `u32` length prefix.  Two rules keep the protocol honest:
//!
//! * **f64s travel as `to_bits` words**, exactly like
//!   `pagani-persist::Snapshot`'s JSON encoding, so an estimate computed on a
//!   remote worker round-trips to the front-end bit-exactly (pinned
//!   invariant 9, wire transparency).
//! * **Integrands travel by registry name** — the same identity scheme as
//!   [`pagani_persist::CacheKey`] — never by value; both ends must agree on
//!   an [`crate::remote::IntegrandRegistry`].
//!
//! The handshake is versioned: the front-end opens with
//! [`Message::Hello`], the worker answers [`Message::HelloAck`] (carrying its
//! capacity so the front-end can plan slab splitting) or
//! [`Message::HelloReject`] on a version mismatch.

use std::io::{Read, Write};

use pagani_quadrature::Termination;

use crate::service::Priority;

/// Version of the wire protocol spoken by this build.  Bumped on any frame
/// layout change; a mismatch is refused at the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's payload (64 MiB) — a corrupt or hostile
/// length prefix must not make a reader allocate unbounded memory.
const MAX_FRAME_BYTES: usize = 64 << 20;

/// Sentinel for "no deadline" in [`Message::Submit::deadline_micros`].
pub(crate) const NO_DEADLINE: u64 = u64::MAX;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The frame decoded to nonsense: unknown tag, truncated field, invalid
    /// UTF-8.
    Corrupt(&'static str),
    /// The length prefix exceeded the frame bound.
    TooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "wire i/o error: {err}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            WireError::TooLarge(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        WireError::Io(err)
    }
}

/// One protocol message.  See the [`crate::remote`] module docs for the framing and
/// encoding rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Front-end → worker: open a connection.
    Hello {
        /// The sender's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Worker → front-end: connection accepted.
    HelloAck {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
        /// The worker device's memory capacity in bytes (drives the
        /// front-end's slab-splitting admission).
        memory_capacity: u64,
        /// Worker threads serving the remote service (drives load
        /// normalisation in dispatch).
        workers: u32,
    },
    /// Worker → front-end: connection refused (version mismatch).
    HelloReject {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
        /// Human-readable refusal reason.
        message: String,
    },
    /// Front-end → worker: run a job.
    Submit {
        /// Front-end-assigned job identifier, echoed in the reply.
        job_id: u64,
        /// Registry name of the integrand ([`pagani_quadrature::Integrand::name`]).
        integrand: String,
        /// Dimensionality of the region (sanity-checked against the registry
        /// entry on the worker).
        dim: u32,
        /// Region lower bounds, `f64::to_bits` per axis.
        lo_bits: Vec<u64>,
        /// Region upper bounds, `f64::to_bits` per axis.
        hi_bits: Vec<u64>,
        /// Scheduling priority tag (0 = low, 1 = normal, 2 = high).
        priority: u8,
        /// Deadline in microseconds from submission, `u64::MAX` for
        /// none.
        deadline_micros: u64,
        /// Optional warm-start snapshot (the persist layer's JSON encoding,
        /// f64s already `to_bits` inside) from a previous partial run.
        snapshot_json: Option<String>,
    },
    /// Worker → front-end: a job finished.  All f64s as `to_bits`.
    JobDone {
        /// Echoed job identifier.
        job_id: u64,
        /// `estimate.to_bits()`.
        estimate_bits: u64,
        /// `error_estimate.to_bits()`.
        error_bits: u64,
        /// Termination tag (converged, max-iterations, memory-exhausted, cancelled).
        termination: u8,
        /// Outer iterations executed.
        iterations: u64,
        /// Total integrand evaluations.
        function_evaluations: u64,
        /// Total sub-regions ever created.
        regions_generated: u64,
        /// Regions still active at termination.
        active_regions_final: u64,
        /// Wall-clock time on the worker, microseconds.
        wall_micros: u64,
        /// Partial-progress snapshot for cancelled / memory-exhausted runs,
        /// so the front-end can resume the job elsewhere.
        snapshot_json: Option<String>,
    },
    /// Worker → front-end: a job could not run (unknown integrand, dimension
    /// mismatch, or it panicked).
    JobFailed {
        /// Echoed job identifier.
        job_id: u64,
        /// What went wrong.
        message: String,
    },
    /// Front-end → worker: cancel an in-flight job cooperatively.
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Front-end → worker: liveness probe.
    Heartbeat {
        /// Monotonic probe sequence number.
        seq: u64,
    },
    /// Worker → front-end: liveness answer.
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_HELLO_REJECT: u8 = 3;
const TAG_SUBMIT: u8 = 4;
const TAG_JOB_DONE: u8 = 5;
const TAG_JOB_FAILED: u8 = 6;
const TAG_CANCEL: u8 = 7;
const TAG_HEARTBEAT: u8 = 8;
const TAG_HEARTBEAT_ACK: u8 = 9;

/// Map a [`Priority`] to its wire tag.
#[must_use]
pub(crate) fn priority_to_tag(priority: Priority) -> u8 {
    match priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

/// Map a wire tag back to a [`Priority`].
pub(crate) fn tag_to_priority(tag: u8) -> Result<Priority, WireError> {
    match tag {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        _ => Err(WireError::Corrupt("unknown priority tag")),
    }
}

/// Map a [`Termination`] to its wire tag.
#[must_use]
pub(crate) fn termination_to_tag(termination: Termination) -> u8 {
    match termination {
        Termination::Converged => 0,
        Termination::MaxIterations => 1,
        Termination::MaxEvaluations => 2,
        Termination::MemoryExhausted => 3,
        Termination::Cancelled => 4,
    }
}

/// Map a wire tag back to a [`Termination`].
pub(crate) fn tag_to_termination(tag: u8) -> Result<Termination, WireError> {
    match tag {
        0 => Ok(Termination::Converged),
        1 => Ok(Termination::MaxIterations),
        2 => Ok(Termination::MaxEvaluations),
        3 => Ok(Termination::MemoryExhausted),
        4 => Ok(Termination::Cancelled),
        _ => Err(WireError::Corrupt("unknown termination tag")),
    }
}

// ---- encoding -------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string fits a frame"));
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&String>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, u32::try_from(vs.len()).expect("vector fits a frame"));
    for &v in vs {
        put_u64(buf, v);
    }
}

// ---- decoding -------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Corrupt("truncated field"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("invalid UTF-8 string"))
    }

    fn opt_string(&mut self) -> Result<Option<String>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.string()?)),
            _ => Err(WireError::Corrupt("invalid option flag")),
        }
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        if count > MAX_FRAME_BYTES / 8 {
            return Err(WireError::Corrupt("vector length exceeds frame bound"));
        }
        (0..count).map(|_| self.u64()).collect()
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Corrupt("trailing bytes after message"))
        }
    }
}

impl Message {
    /// Encode this message as one payload (tag + fields, no length prefix).
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello { version } => {
                put_u8(&mut buf, TAG_HELLO);
                put_u32(&mut buf, *version);
            }
            Message::HelloAck {
                version,
                memory_capacity,
                workers,
            } => {
                put_u8(&mut buf, TAG_HELLO_ACK);
                put_u32(&mut buf, *version);
                put_u64(&mut buf, *memory_capacity);
                put_u32(&mut buf, *workers);
            }
            Message::HelloReject { version, message } => {
                put_u8(&mut buf, TAG_HELLO_REJECT);
                put_u32(&mut buf, *version);
                put_str(&mut buf, message);
            }
            Message::Submit {
                job_id,
                integrand,
                dim,
                lo_bits,
                hi_bits,
                priority,
                deadline_micros,
                snapshot_json,
            } => {
                put_u8(&mut buf, TAG_SUBMIT);
                put_u64(&mut buf, *job_id);
                put_str(&mut buf, integrand);
                put_u32(&mut buf, *dim);
                put_u64s(&mut buf, lo_bits);
                put_u64s(&mut buf, hi_bits);
                put_u8(&mut buf, *priority);
                put_u64(&mut buf, *deadline_micros);
                put_opt_str(&mut buf, snapshot_json.as_ref());
            }
            Message::JobDone {
                job_id,
                estimate_bits,
                error_bits,
                termination,
                iterations,
                function_evaluations,
                regions_generated,
                active_regions_final,
                wall_micros,
                snapshot_json,
            } => {
                put_u8(&mut buf, TAG_JOB_DONE);
                put_u64(&mut buf, *job_id);
                put_u64(&mut buf, *estimate_bits);
                put_u64(&mut buf, *error_bits);
                put_u8(&mut buf, *termination);
                put_u64(&mut buf, *iterations);
                put_u64(&mut buf, *function_evaluations);
                put_u64(&mut buf, *regions_generated);
                put_u64(&mut buf, *active_regions_final);
                put_u64(&mut buf, *wall_micros);
                put_opt_str(&mut buf, snapshot_json.as_ref());
            }
            Message::JobFailed { job_id, message } => {
                put_u8(&mut buf, TAG_JOB_FAILED);
                put_u64(&mut buf, *job_id);
                put_str(&mut buf, message);
            }
            Message::Cancel { job_id } => {
                put_u8(&mut buf, TAG_CANCEL);
                put_u64(&mut buf, *job_id);
            }
            Message::Heartbeat { seq } => {
                put_u8(&mut buf, TAG_HEARTBEAT);
                put_u64(&mut buf, *seq);
            }
            Message::HeartbeatAck { seq } => {
                put_u8(&mut buf, TAG_HEARTBEAT_ACK);
                put_u64(&mut buf, *seq);
            }
        }
        buf
    }

    /// Decode one payload (tag + fields, no length prefix).
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(bytes);
        let message = match d.u8()? {
            TAG_HELLO => Message::Hello { version: d.u32()? },
            TAG_HELLO_ACK => Message::HelloAck {
                version: d.u32()?,
                memory_capacity: d.u64()?,
                workers: d.u32()?,
            },
            TAG_HELLO_REJECT => Message::HelloReject {
                version: d.u32()?,
                message: d.string()?,
            },
            TAG_SUBMIT => Message::Submit {
                job_id: d.u64()?,
                integrand: d.string()?,
                dim: d.u32()?,
                lo_bits: d.u64s()?,
                hi_bits: d.u64s()?,
                priority: d.u8()?,
                deadline_micros: d.u64()?,
                snapshot_json: d.opt_string()?,
            },
            TAG_JOB_DONE => Message::JobDone {
                job_id: d.u64()?,
                estimate_bits: d.u64()?,
                error_bits: d.u64()?,
                termination: d.u8()?,
                iterations: d.u64()?,
                function_evaluations: d.u64()?,
                regions_generated: d.u64()?,
                active_regions_final: d.u64()?,
                wall_micros: d.u64()?,
                snapshot_json: d.opt_string()?,
            },
            TAG_JOB_FAILED => Message::JobFailed {
                job_id: d.u64()?,
                message: d.string()?,
            },
            TAG_CANCEL => Message::Cancel { job_id: d.u64()? },
            TAG_HEARTBEAT => Message::Heartbeat { seq: d.u64()? },
            TAG_HEARTBEAT_ACK => Message::HeartbeatAck { seq: d.u64()? },
            _ => return Err(WireError::Corrupt("unknown message tag")),
        };
        d.finish()?;
        Ok(message)
    }

    /// Write this message as one length-prefixed frame and flush.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        let payload = self.encode();
        debug_assert!(payload.len() <= MAX_FRAME_BYTES, "oversized outbound frame");
        let len = u32::try_from(payload.len()).expect("payload fits a u32 prefix");
        writer.write_all(&len.to_le_bytes())?;
        writer.write_all(&payload)?;
        writer.flush()
    }

    /// Read one length-prefixed frame and decode it.
    ///
    /// # Errors
    /// [`WireError::Io`] on socket failure or EOF, [`WireError::TooLarge`]
    /// on a length prefix past the frame bound, [`WireError::Corrupt`] on a
    /// malformed payload.
    pub fn read_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let mut prefix = [0u8; 4];
        reader.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::TooLarge(len));
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        Self::decode(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: Message) {
        let mut frame = Vec::new();
        message.write_to(&mut frame).unwrap();
        let decoded = Message::read_from(&mut frame.as_slice()).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn every_message_round_trips_bit_exactly() {
        round_trip(Message::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip(Message::HelloAck {
            version: PROTOCOL_VERSION,
            memory_capacity: 8 << 20,
            workers: 8,
        });
        round_trip(Message::HelloReject {
            version: 99,
            message: "speak v1".into(),
        });
        round_trip(Message::Submit {
            job_id: 42,
            integrand: "oscillatory-5d".into(),
            dim: 5,
            lo_bits: vec![0.0f64.to_bits(); 5],
            hi_bits: vec![1.0f64.to_bits(); 5],
            priority: priority_to_tag(Priority::High),
            deadline_micros: 1_500_000,
            snapshot_json: Some("{\"format\":\"pagani-snapshot\"}".into()),
        });
        round_trip(Message::JobDone {
            job_id: 42,
            estimate_bits: std::f64::consts::PI.to_bits(),
            error_bits: 1e-7f64.to_bits(),
            termination: termination_to_tag(Termination::Converged),
            iterations: 12,
            function_evaluations: 1 << 20,
            regions_generated: 1 << 16,
            active_regions_final: 0,
            wall_micros: 250_000,
            snapshot_json: None,
        });
        round_trip(Message::JobFailed {
            job_id: 7,
            message: "unknown integrand".into(),
        });
        round_trip(Message::Cancel { job_id: 42 });
        round_trip(Message::Heartbeat { seq: 3 });
        round_trip(Message::HeartbeatAck { seq: 3 });
    }

    #[test]
    fn f64_payloads_survive_as_exact_bits() {
        // The awkward values: negative zero, subnormals, NaN payloads.
        for value in [
            -0.0f64,
            f64::MIN_POSITIVE / 2.0,
            f64::NAN,
            1.0 + f64::EPSILON,
        ] {
            let message = Message::JobDone {
                job_id: 0,
                estimate_bits: value.to_bits(),
                error_bits: (-value).to_bits(),
                termination: 0,
                iterations: 0,
                function_evaluations: 0,
                regions_generated: 0,
                active_regions_final: 0,
                wall_micros: 0,
                snapshot_json: None,
            };
            let mut frame = Vec::new();
            message.write_to(&mut frame).unwrap();
            let Message::JobDone {
                estimate_bits,
                error_bits,
                ..
            } = Message::read_from(&mut frame.as_slice()).unwrap()
            else {
                panic!("tag changed in flight");
            };
            assert_eq!(estimate_bits, value.to_bits());
            assert_eq!(error_bits, (-value).to_bits());
        }
    }

    #[test]
    fn corrupt_frames_are_refused_not_trusted() {
        // Unknown tag.
        let mut frame = Vec::new();
        Message::Cancel { job_id: 1 }.write_to(&mut frame).unwrap();
        frame[4] = 0xFF;
        assert!(matches!(
            Message::read_from(&mut frame.as_slice()),
            Err(WireError::Corrupt(_))
        ));
        // Oversized length prefix.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(matches!(
            Message::read_from(&mut huge.as_slice()),
            Err(WireError::TooLarge(_))
        ));
        // Truncated payload is an Io error (read_exact hits EOF).
        let mut short = Vec::new();
        Message::Heartbeat { seq: 9 }.write_to(&mut short).unwrap();
        short.truncate(short.len() - 2);
        assert!(matches!(
            Message::read_from(&mut short.as_slice()),
            Err(WireError::Io(_))
        ));
        // Trailing garbage after a valid message.
        let mut padded = Vec::new();
        Message::Heartbeat { seq: 9 }.write_to(&mut padded).unwrap();
        let len = (padded.len() - 4 + 3) as u32;
        padded.splice(0..4, len.to_le_bytes());
        padded.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            Message::read_from(&mut padded.as_slice()),
            Err(WireError::Corrupt("trailing bytes after message"))
        ));
    }

    #[test]
    fn priority_and_termination_tags_are_total() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(tag_to_priority(priority_to_tag(p)).unwrap(), p);
        }
        for t in [
            Termination::Converged,
            Termination::MaxIterations,
            Termination::MaxEvaluations,
            Termination::MemoryExhausted,
            Termination::Cancelled,
        ] {
            assert_eq!(tag_to_termination(termination_to_tag(t)).unwrap(), t);
        }
        assert!(tag_to_priority(3).is_err());
        assert!(tag_to_termination(5).is_err());
    }
}
