//! Integrand identity across process boundaries.
//!
//! Closures do not serialise; the wire protocol therefore references
//! integrands **by name** — the same identity scheme
//! [`pagani_persist::CacheKey`] already uses for the result cache.  A
//! [`RemoteWorker`](crate::remote::RemoteWorker) resolves each incoming name
//! against its [`IntegrandRegistry`]; a name the worker does not know is
//! answered with a `JobFailed` rather than a guess.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use pagani_integrands::paper::PaperIntegrand;
use pagani_quadrature::Integrand;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A name → integrand table shared by the two ends of a wire connection.
///
/// Keys are the integrands' own [`Integrand::name`] values — register the
/// same constructions on the worker and the front-end and jobs travel by
/// name alone.
///
/// ```
/// use pagani_core::IntegrandRegistry;
/// use pagani_quadrature::FnIntegrand;
///
/// let registry = IntegrandRegistry::new();
/// registry.register(FnIntegrand::new(2, |x: &[f64]| x[0] * x[1]).named("product-2d"));
/// assert!(registry.get("product-2d").is_some());
/// assert!(registry.get("unknown").is_none());
/// ```
#[derive(Default)]
pub struct IntegrandRegistry {
    entries: Mutex<HashMap<String, Arc<dyn Integrand + Send + Sync>>>,
}

impl std::fmt::Debug for IntegrandRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntegrandRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl IntegrandRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the paper's Genz suite at every dimension
    /// in `2..=max_dim` (`f2` and `f6` are fixed-dimension integrands and
    /// appear once) — the vocabulary the examples and stress tests speak.
    #[must_use]
    pub fn with_paper_suite(max_dim: usize) -> Self {
        let registry = Self::new();
        registry.register(PaperIntegrand::f2());
        registry.register(PaperIntegrand::f6());
        for dim in 2..=max_dim.max(2) {
            for integrand in [
                PaperIntegrand::f1(dim),
                PaperIntegrand::f3(dim),
                PaperIntegrand::f4(dim),
                PaperIntegrand::f5(dim),
                PaperIntegrand::f7(dim),
                PaperIntegrand::f8(dim),
            ] {
                registry.register(integrand);
            }
        }
        registry
    }

    /// Register `integrand` under its own [`Integrand::name`], replacing any
    /// previous entry with that name (latest wins, matching the cache-key
    /// convention that a name *is* the identity).
    pub fn register(&self, integrand: impl Integrand + Send + 'static) {
        self.register_shared(Arc::new(integrand));
    }

    /// [`IntegrandRegistry::register`] for an integrand already behind an
    /// `Arc` (e.g. one also used in local jobs).
    pub fn register_shared(&self, integrand: Arc<dyn Integrand + Send + Sync>) {
        lock(&self.entries).insert(integrand.name(), integrand);
    }

    /// Resolve a wire name to its integrand.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn Integrand + Send + Sync>> {
        lock(&self.entries).get(name).cloned()
    }

    /// Every registered name, sorted (deterministic for display and tests).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered integrands.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock(&self.entries).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::FnIntegrand;

    #[test]
    fn names_are_the_identity_and_latest_wins() {
        let registry = IntegrandRegistry::new();
        registry.register(FnIntegrand::new(2, |x: &[f64]| x[0]).named("same"));
        registry.register(FnIntegrand::new(3, |x: &[f64]| x[1]).named("same"));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.get("same").unwrap().dim(), 3);
    }

    #[test]
    fn paper_suite_covers_every_family_and_dimension() {
        let registry = IntegrandRegistry::with_paper_suite(4);
        // Six dimension-parametric families at dims 2, 3, 4, plus the two
        // fixed-dimension integrands f2 and f6.
        assert_eq!(registry.len(), 20);
        assert!(registry.get(&PaperIntegrand::f4(3).name()).is_some());
        let names = registry.names();
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    }
}
