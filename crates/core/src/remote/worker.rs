//! The worker side of the wire: a TCP listener wrapping one
//! [`IntegrationService`].
//!
//! A [`RemoteWorker`] accepts front-end connections, resolves incoming jobs
//! against its [`IntegrandRegistry`], runs them on its ordinary local
//! service (priorities, deadlines, cancellation and the persist layer's
//! warm starts all work unchanged), and streams results back as
//! [`Message::JobDone`] frames.  Because the service is the same one a
//! single-process deployment uses, a result computed here is bit-identical
//! to the local run — the wire adds transport, never arithmetic.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use pagani_persist::{CacheKey, ResultCache, Snapshot};
use pagani_quadrature::{Region, Termination};

use crate::batch::BatchJob;
use crate::builder::ServiceBuilder;
use crate::remote::registry::IntegrandRegistry;
use crate::remote::wire::{
    tag_to_priority, termination_to_tag, Message, WireError, NO_DEADLINE, PROTOCOL_VERSION,
};
use crate::service::{panic_message, IntegrationService, JobHandle};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Size of the crash-recovery cache a worker attaches when its builder
/// carries none: partial snapshots of cancelled/exhausted runs live here so
/// a requeued job can resume instead of restarting.
const DEFAULT_WORKER_CACHE_BYTES: usize = 64 << 20;

/// One accepted front-end connection: the duplex stream plus the jobs it
/// currently has in flight (cancelled wholesale if the connection dies).
#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    inflight: Mutex<HashMap<u64, JobHandle>>,
}

#[derive(Debug)]
struct WorkerShared {
    service: IntegrationService,
    registry: Arc<IntegrandRegistry>,
    cache: Arc<ResultCache>,
    shutting_down: AtomicBool,
    connections: Mutex<Vec<Arc<Connection>>>,
    /// Connection-handler and result-waiter threads, joined at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A worker process: one [`IntegrationService`] behind a TCP listener.
///
/// Bind it with a [`ServiceBuilder`] carrying exactly one device (the
/// builder's cache, policy and cost model apply to the wrapped service) and
/// the [`IntegrandRegistry`] naming the jobs it may be asked to run:
///
/// ```no_run
/// use std::sync::Arc;
/// use pagani_core::{IntegrandRegistry, PaganiConfig, RemoteWorker, ServiceBuilder};
/// use pagani_device::Device;
/// use pagani_quadrature::Tolerances;
///
/// let worker = RemoteWorker::bind(
///     "127.0.0.1:0",
///     ServiceBuilder::new(PaganiConfig::test_small(Tolerances::rel(1e-5)))
///         .device(Device::test_small()),
///     Arc::new(IntegrandRegistry::with_paper_suite(6)),
/// )
/// .expect("bind the worker listener");
/// println!("serving on {}", worker.local_addr());
/// ```
#[derive(Debug)]
pub struct RemoteWorker {
    shared: Arc<WorkerShared>,
    listener_addr: std::net::SocketAddr,
    acceptor: JoinHandle<()>,
}

impl RemoteWorker {
    /// Bind a listener on `addr` (use port 0 for an OS-assigned port) and
    /// start accepting front-end connections.
    ///
    /// If `builder` carries no [`ResultCache`], a worker-local one is
    /// attached so cancelled and memory-exhausted runs leave resumable
    /// snapshots behind — the crash-recovery half of the requeue story.
    ///
    /// # Errors
    /// Propagates listener bind failures.
    ///
    /// # Panics
    /// Panics unless the builder carries exactly one device and no remote
    /// endpoints (a worker *is* the remote end).
    pub fn bind(
        addr: impl ToSocketAddrs,
        builder: ServiceBuilder,
        registry: Arc<IntegrandRegistry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let listener_addr = listener.local_addr()?;
        let builder = if builder.cache.is_none() {
            builder.cache(Arc::new(ResultCache::new(DEFAULT_WORKER_CACHE_BYTES)))
        } else {
            builder
        };
        let cache = Arc::clone(builder.cache.as_ref().expect("cache attached above"));
        let service = builder.build();
        let shared = Arc::new(WorkerShared {
            service,
            registry,
            cache,
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("pagani-remote-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_shared))
            .expect("spawning the remote acceptor thread");
        Ok(Self {
            shared,
            listener_addr,
            acceptor,
        })
    }

    /// The address the worker is listening on (with the OS-assigned port
    /// resolved).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener_addr
    }

    /// The wrapped local service — its metrics are the worker's metrics.
    #[must_use]
    pub fn service(&self) -> &IntegrationService {
        &self.shared.service
    }

    /// Chaos hook for crash-recovery tests: abruptly sever every front-end
    /// connection *without* draining in-flight jobs or sending any farewell
    /// frame, exactly as a killed process would.  The worker keeps running;
    /// front-ends observe a dead connection and requeue.
    pub fn sever(&self) {
        for connection in lock(&self.shared.connections).iter() {
            let _ = connection.stream.shutdown(Shutdown::Both);
        }
    }

    /// Graceful shutdown: stop accepting, sever connections, cancel
    /// in-flight jobs, join every connection thread and drain the wrapped
    /// service.
    pub fn shutdown(self) {
        self.shared
            .shutting_down
            .store(true, AtomicOrdering::SeqCst);
        // Unblock `accept` by dialling ourselves; the acceptor checks the
        // flag before handling what it accepted.
        let _ = TcpStream::connect(self.listener_addr);
        self.sever();
        let _ = self.acceptor.join();
        loop {
            let Some(thread) = lock(&self.shared.threads).pop() else {
                break;
            };
            let _ = thread.join();
        }
        let shared =
            Arc::try_unwrap(self.shared).expect("all worker threads joined, no clones outstanding");
        shared.service.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<WorkerShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if shared.shutting_down.load(AtomicOrdering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let connection = Arc::new(Connection {
            stream,
            writer: Mutex::new(writer),
            inflight: Mutex::new(HashMap::new()),
        });
        lock(&shared.connections).push(Arc::clone(&connection));
        let conn_shared = Arc::clone(shared);
        let handler = std::thread::Builder::new()
            .name("pagani-remote-conn".into())
            .spawn(move || connection_loop(&conn_shared, &connection))
            .expect("spawning the remote connection thread");
        lock(&shared.threads).push(handler);
    }
}

fn connection_loop(shared: &Arc<WorkerShared>, connection: &Arc<Connection>) {
    let Ok(mut reader) = connection.stream.try_clone() else {
        return;
    };
    while let Ok(message) = Message::read_from(&mut reader) {
        let keep_going = match message {
            Message::Hello { version } => handle_hello(shared, connection, version),
            Message::Submit {
                job_id,
                integrand,
                dim,
                lo_bits,
                hi_bits,
                priority,
                deadline_micros,
                snapshot_json,
            } => {
                handle_submit(
                    shared,
                    connection,
                    SubmitFrame {
                        job_id,
                        integrand,
                        dim,
                        lo_bits,
                        hi_bits,
                        priority,
                        deadline_micros,
                        snapshot_json,
                    },
                );
                true
            }
            Message::Cancel { job_id } => {
                if let Some(handle) = lock(&connection.inflight).get(&job_id) {
                    handle.cancel();
                }
                true
            }
            Message::Heartbeat { seq } => send(connection, &Message::HeartbeatAck { seq }).is_ok(),
            // Anything else is a protocol confusion; drop the connection
            // rather than guess.
            _ => false,
        };
        if !keep_going {
            break;
        }
    }
    // Connection gone (EOF, error, or protocol breach): the front-end can no
    // longer receive these results, so cancel its in-flight jobs — it will
    // requeue them elsewhere.
    let orphaned: Vec<JobHandle> = lock(&connection.inflight).drain().map(|(_, h)| h).collect();
    for handle in orphaned {
        handle.cancel();
    }
    let _ = connection.stream.shutdown(Shutdown::Both);
    lock(&shared.connections).retain(|c| !Arc::ptr_eq(c, connection));
}

fn handle_hello(shared: &Arc<WorkerShared>, connection: &Arc<Connection>, version: u32) -> bool {
    if version == PROTOCOL_VERSION {
        send(
            connection,
            &Message::HelloAck {
                version: PROTOCOL_VERSION,
                memory_capacity: shared.service.device().config().memory_capacity as u64,
                workers: shared.service.worker_count() as u32,
            },
        )
        .is_ok()
    } else {
        let _ = send(
            connection,
            &Message::HelloReject {
                version: PROTOCOL_VERSION,
                message: format!("worker speaks wire protocol v{PROTOCOL_VERSION}, got v{version}"),
            },
        );
        false
    }
}

/// The fields of one `Submit` frame, bundled to keep signatures readable.
struct SubmitFrame {
    job_id: u64,
    integrand: String,
    dim: u32,
    lo_bits: Vec<u64>,
    hi_bits: Vec<u64>,
    priority: u8,
    deadline_micros: u64,
    snapshot_json: Option<String>,
}

fn handle_submit(shared: &Arc<WorkerShared>, connection: &Arc<Connection>, frame: SubmitFrame) {
    let job_id = frame.job_id;
    let refuse = |message: String| {
        let _ = send(connection, &Message::JobFailed { job_id, message });
    };
    let Some(integrand) = shared.registry.get(&frame.integrand) else {
        return refuse(format!("unknown integrand {:?}", frame.integrand));
    };
    let dim = frame.dim as usize;
    if integrand.dim() != dim {
        return refuse(format!(
            "integrand {:?} is {}-dimensional, job says {dim}",
            frame.integrand,
            integrand.dim()
        ));
    }
    if frame.lo_bits.len() != dim || frame.hi_bits.len() != dim {
        return refuse(format!("region bounds do not match dim {dim}"));
    }
    let lo: Vec<f64> = frame.lo_bits.iter().copied().map(f64::from_bits).collect();
    let hi: Vec<f64> = frame.hi_bits.iter().copied().map(f64::from_bits).collect();
    if lo
        .iter()
        .zip(&hi)
        .any(|(l, h)| l.partial_cmp(h) != Some(std::cmp::Ordering::Less))
    {
        return refuse("degenerate region bounds".to_owned());
    }
    let priority = match tag_to_priority(frame.priority) {
        Ok(priority) => priority,
        Err(_) => return refuse(format!("unknown priority tag {}", frame.priority)),
    };

    // A shipped warm-start snapshot goes into the worker's cache *before*
    // submission, so the service's ordinary warm-start machinery resumes the
    // checkpointed tree instead of restarting from scratch.
    if let Some(json) = &frame.snapshot_json {
        match Snapshot::from_json_str(json).and_then(|s| s.validate().map(|()| s)) {
            Ok(snapshot) => {
                let tolerances = shared.service.config().tolerances;
                shared.cache.store(
                    CacheKey::new(&frame.integrand, &lo, &hi, tolerances.rel, tolerances.abs),
                    None,
                    Some(snapshot),
                );
            }
            Err(err) => {
                // A bad snapshot is not fatal — run the job cold.
                let _ = err;
            }
        }
    }

    let mut job = BatchJob::shared(integrand)
        .over(Region::new(lo, hi))
        .with_priority(priority);
    if frame.deadline_micros != NO_DEADLINE {
        job = job.with_deadline(std::time::Duration::from_micros(frame.deadline_micros));
    }
    let handle = shared.service.submit(job);
    lock(&connection.inflight).insert(job_id, handle.clone());

    let waiter_shared = Arc::clone(shared);
    let waiter_conn = Arc::clone(connection);
    let waiter = std::thread::Builder::new()
        .name("pagani-remote-result".into())
        .spawn(move || {
            wait_and_report(
                &waiter_shared,
                &waiter_conn,
                job_id,
                &handle,
                &frame.integrand,
                &frame.lo_bits,
                &frame.hi_bits,
            );
        })
        .expect("spawning the remote result-waiter thread");
    lock(&shared.threads).push(waiter);
}

/// Block on one job and stream its outcome back, then retire it from the
/// connection's in-flight set.
fn wait_and_report(
    shared: &Arc<WorkerShared>,
    connection: &Arc<Connection>,
    job_id: u64,
    handle: &JobHandle,
    integrand: &str,
    lo_bits: &[u64],
    hi_bits: &[u64],
) {
    let reply = match std::panic::catch_unwind(AssertUnwindSafe(|| handle.wait())) {
        Ok(output) => {
            let result = &output.result;
            // Interrupted runs ship their persisted checkpoint back so the
            // front-end can resume the job on another worker (the service
            // stored it in the worker cache when the run wound down).
            let snapshot_json = matches!(
                result.termination,
                Termination::Cancelled | Termination::MemoryExhausted
            )
            .then(|| {
                shared
                    .cache
                    .lookup_snapshot(integrand, lo_bits, hi_bits)
                    .map(|snapshot| snapshot.to_json_string())
            })
            .flatten();
            Message::JobDone {
                job_id,
                estimate_bits: result.estimate.to_bits(),
                error_bits: result.error_estimate.to_bits(),
                termination: termination_to_tag(result.termination),
                iterations: result.iterations as u64,
                function_evaluations: result.function_evaluations,
                regions_generated: result.regions_generated,
                active_regions_final: result.active_regions_final as u64,
                wall_micros: result.wall_time.as_micros().min(u128::from(u64::MAX)) as u64,
                snapshot_json,
            }
        }
        Err(payload) => Message::JobFailed {
            job_id,
            message: panic_message(payload.as_ref()),
        },
    };
    lock(&connection.inflight).remove(&job_id);
    let _ = send(connection, &reply);
}

fn send(connection: &Connection, message: &Message) -> Result<(), WireError> {
    let mut writer = lock(&connection.writer);
    message.write_to(&mut *writer)?;
    writer.flush()?;
    Ok(())
}
