//! The distributed layer: PAGANI services stretched across processes.
//!
//! Three pieces, layered bottom-up:
//!
//! * the wire protocol ([`Message`], [`PROTOCOL_VERSION`]) — hand-rolled
//!   length-prefixed framing on `std::net`
//!   (the environment is offline; no serde): versioned handshake,
//!   job/result/cancel/heartbeat messages, every f64 travelling as
//!   `to_bits` so results round-trip **bit-exactly** (pinned invariant 9).
//! * [`IntegrandRegistry`] — integrand identity by name, the same scheme as
//!   [`pagani_persist::CacheKey`]; closures never cross the wire.
//! * [`RemoteWorker`] / [`DistributedService`] — a worker process wraps an
//!   ordinary [`crate::IntegrationService`] behind a TCP listener; the
//!   front-end shards jobs across workers with the *same*
//!   priority/deadline/backpressure/admission semantics as the in-process
//!   services: deadline-infeasible refused at the front-end,
//!   [`crate::QueueFull`] propagated, cancel forwarded over the wire, and a
//!   dead connection requeues its jobs on a surviving worker (resuming from
//!   a persisted checkpoint where one exists).
//!
//! Construction goes through [`crate::ServiceBuilder`]:
//! `builder.endpoint(addr).build_distributed()` for the front-end,
//! [`RemoteWorker::bind`] for the worker side.

mod distributed;
mod registry;
mod wire;
mod worker;

pub use distributed::DistributedService;
pub use registry::IntegrandRegistry;
pub use wire::{Message, WireError, PROTOCOL_VERSION};
pub use worker::RemoteWorker;
