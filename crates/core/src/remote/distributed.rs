//! The front-end of the distributed scheduler: one submission surface
//! sharding jobs across remote worker processes.
//!
//! [`DistributedService`] mirrors the in-process services' semantics on
//! purpose — the same admission, the same refusals, the same handle type:
//!
//! * **Backpressure**: [`ServicePolicy::queue_bound`] bounds the front-end's
//!   in-flight set; `submit` blocks for space, `try_submit` refuses with
//!   [`Rejected::QueueFull`].
//! * **Admission**: a deadline the shared [`CostModel`] predicts cannot be
//!   met at the current backlog is refused with
//!   [`Rejected::DeadlineInfeasible`] *at the front-end* — the job never
//!   crosses the wire.
//! * **Cancellation**: [`crate::JobHandle::cancel`] forwards a
//!   [`Message::Cancel`] frame to whichever worker currently holds the job.
//! * **Crash recovery**: a dead connection requeues its in-flight jobs on a
//!   surviving worker ([`ServiceMetrics::remote_requeued`] counts them),
//!   re-shipping the latest persisted checkpoint where one exists so
//!   completed iterations are not recomputed.
//! * **Slab splitting**: a job whose estimated footprint exceeds every
//!   worker's device memory is cut into [`MultiDevicePagani::partition`]
//!   slabs, dispatched as independent wire jobs, and recombined
//!   bit-deterministically in slab order.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use pagani_persist::{CacheKey, ResultCache, Snapshot};
use pagani_quadrature::{IntegrationResult, Termination, Tolerances};

use crate::batch::BatchJob;
use crate::builder::ServiceBuilder;
use crate::cost::{
    estimated_job_footprint_bytes, job_tolerances, remote_lane_load, slab_weights, CostModel,
};
use crate::driver::PaganiOutput;
use crate::multi_device::{combine_slab_outputs, MultiDevicePagani};
use crate::remote::wire::{
    priority_to_tag, tag_to_termination, Message, NO_DEADLINE, PROTOCOL_VERSION,
};
use crate::service::{
    DeadlineInfeasible, JobHandle, JobOutcome, JobState, Observability, QueueFull, Rejected,
    ServiceMetrics, ServicePolicy,
};
use crate::trace::ExecutionTrace;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One connected remote worker.
#[derive(Debug)]
struct Endpoint {
    addr: String,
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    /// Estimated cost of jobs dispatched here and not yet completed — the
    /// same ledger discipline as [`crate::MultiDeviceService`]'s lanes.
    outstanding: Mutex<f64>,
    alive: AtomicBool,
    /// From the worker's `HelloAck`: its device memory (drives slab
    /// admission) …
    memory_capacity: u64,
    /// … and its worker-thread count (normalises load for dispatch).
    workers: u32,
}

impl Endpoint {
    fn send(&self, message: &Message) -> std::io::Result<()> {
        message.write_to(&mut *lock(&self.writer))
    }
}

/// One job in flight: enough to complete its handle, retire its charge, and
/// requeue it if its worker dies.
#[derive(Debug)]
struct Pending {
    job: BatchJob,
    state: Arc<JobState>,
    endpoint: usize,
    charge: f64,
}

#[derive(Debug)]
struct DistShared {
    endpoints: Vec<Arc<Endpoint>>,
    policy: ServicePolicy,
    tolerances: Tolerances,
    model: Arc<CostModel>,
    /// Front-end crash-recovery store: checkpoints shipped back by workers
    /// land here and are re-shipped on requeue.
    cache: Option<Arc<ResultCache>>,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Signalled whenever `pending` shrinks; `submit` waits on it for queue
    /// space and `shutdown` for drain.
    space: Condvar,
    next_job_id: AtomicU64,
    obs: Observability,
    shutting_down: AtomicBool,
}

/// The distributed front-end.  Construct it through
/// [`ServiceBuilder::build_distributed`]; see the [`crate::remote`] module docs for
/// the semantics it guarantees.
#[derive(Debug)]
pub struct DistributedService {
    shared: Arc<DistShared>,
    /// Reader and heartbeat threads, one pair per endpoint.
    threads: Vec<JoinHandle<()>>,
}

impl DistributedService {
    /// Connect to every endpoint in `builder` and start the per-connection
    /// reader and heartbeat threads.  Called by
    /// [`ServiceBuilder::build_distributed`].
    pub(crate) fn from_builder(builder: ServiceBuilder) -> std::io::Result<Self> {
        let tolerances = builder.config.tolerances;
        let model = builder.model.unwrap_or_else(|| Arc::new(CostModel::new()));
        let mut endpoints = Vec::with_capacity(builder.endpoints.len());
        for addr in &builder.endpoints {
            endpoints.push(Arc::new(connect(addr)?));
        }
        let shared = Arc::new(DistShared {
            endpoints,
            policy: builder.policy,
            tolerances,
            model,
            cache: builder.cache,
            pending: Mutex::new(HashMap::new()),
            space: Condvar::new(),
            next_job_id: AtomicU64::new(0),
            obs: Observability::new(),
            shutting_down: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(shared.endpoints.len() * 2);
        for index in 0..shared.endpoints.len() {
            let reader_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("pagani-remote-reader".into())
                    .spawn(move || reader_loop(&reader_shared, index))
                    .expect("spawning the remote reader thread"),
            );
            let beat_shared = Arc::clone(&shared);
            let interval = builder.heartbeat_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("pagani-remote-heartbeat".into())
                    .spawn(move || heartbeat_loop(&beat_shared, index, interval))
                    .expect("spawning the remote heartbeat thread"),
            );
        }
        Ok(Self { shared, threads })
    }

    /// Number of configured worker endpoints.
    #[must_use]
    pub fn endpoint_count(&self) -> usize {
        self.shared.endpoints.len()
    }

    /// The configured endpoint addresses, in builder order.
    #[must_use]
    pub fn endpoint_addrs(&self) -> Vec<String> {
        self.shared
            .endpoints
            .iter()
            .map(|e| e.addr.clone())
            .collect()
    }

    /// Number of endpoints whose connection is currently alive.
    #[must_use]
    pub fn endpoints_alive(&self) -> usize {
        self.shared
            .endpoints
            .iter()
            .filter(|e| e.alive.load(AtomicOrdering::SeqCst))
            .count()
    }

    /// Jobs currently in flight across all workers.
    #[must_use]
    pub fn queued_jobs(&self) -> usize {
        lock(&self.shared.pending).len()
    }

    /// The measured [`CostModel`] the front-end plans with.  Workers report
    /// wall times with every result, so the model trains across the wire.
    #[must_use]
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.shared.model
    }

    /// A [`ServiceMetrics`] snapshot — the same vocabulary as the local
    /// services, with the `remote_*` counters live.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.obs.snapshot(self.queued_jobs())
    }

    /// Dispatch `job` to the least-loaded live worker and return its handle.
    /// Blocks while the in-flight set is at [`ServicePolicy::queue_bound`].
    ///
    /// Oversized jobs (estimated footprint past every worker's device
    /// memory) slab-split exactly like
    /// [`crate::MultiDeviceService::submit`]: children ship as independent
    /// wire jobs and a combiner thread recombines them in slab order.
    #[must_use]
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        if let Some(parts) = self.slab_parts(&job) {
            return self.submit_slabbed(job, parts);
        }
        let mut pending = lock(&self.shared.pending);
        if let Some(bound) = self.shared.policy.queue_bound {
            while pending.len() >= bound && !self.shared.shutting_down.load(AtomicOrdering::SeqCst)
            {
                pending = self
                    .shared
                    .space
                    .wait(pending)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        dispatch_locked(&self.shared, pending, job, false)
    }

    /// [`DistributedService::submit`] with refuse-instead-of-wait semantics,
    /// mirroring [`crate::IntegrationService::try_submit`]: a full front-end
    /// queue refuses with [`Rejected::QueueFull`]; a deadline the model
    /// predicts cannot be met at the current cross-worker backlog refuses
    /// with [`Rejected::DeadlineInfeasible`] — the job never crosses the
    /// wire.
    ///
    /// # Errors
    /// [`Rejected::QueueFull`] and [`Rejected::DeadlineInfeasible`], each
    /// handing the job back unmodified.
    pub fn try_submit(&self, job: BatchJob) -> Result<JobHandle, Rejected> {
        let pending = lock(&self.shared.pending);
        if let Some(bound) = self.shared.policy.queue_bound {
            if pending.len() >= bound {
                drop(pending);
                self.shared
                    .obs
                    .rejected_queue_full
                    .fetch_add(1, AtomicOrdering::Relaxed);
                return Err(Rejected::QueueFull(Box::new(QueueFull { bound, job })));
            }
        }
        if let Some(deadline) = job.deadline() {
            if let Some(estimated) = self.estimated_completion(&job) {
                if estimated > deadline {
                    drop(pending);
                    self.shared
                        .obs
                        .rejected_deadline_infeasible
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    return Err(Rejected::DeadlineInfeasible(Box::new(DeadlineInfeasible {
                        estimated,
                        deadline,
                        job,
                    })));
                }
            }
        }
        if let Some(parts) = self.slab_parts(&job) {
            drop(pending);
            return Ok(self.submit_slabbed(job, parts));
        }
        Ok(dispatch_locked(&self.shared, pending, job, false))
    }

    /// Predicted time to complete `job` from now: the live workers' pooled
    /// backlog (outstanding charge over total worker threads) plus the job's
    /// own predicted duration.  `None` while the model is cold — admission
    /// stays optimistic until real work has been measured, exactly like the
    /// in-process services.
    #[must_use]
    pub fn estimated_completion(&self, job: &BatchJob) -> Option<Duration> {
        let own = self.shared.model.predict_job(job, self.shared.tolerances)?;
        let (outstanding, workers) = self
            .shared
            .endpoints
            .iter()
            .filter(|e| e.alive.load(AtomicOrdering::SeqCst))
            .fold((0.0f64, 0usize), |(sum, workers), e| {
                (sum + *lock(&e.outstanding), workers + e.workers as usize)
            });
        let backlog =
            Duration::from_secs_f64((outstanding / 1e6 / workers.max(1) as f64).clamp(0.0, 1e9));
        Some(backlog + own)
    }

    /// Run a fixed batch across the workers, returning outputs in job order
    /// — the distributed analogue of
    /// [`crate::MultiDeviceService::integrate_batch`].
    #[must_use]
    pub fn integrate_batch(&self, jobs: &[BatchJob]) -> Vec<PaganiOutput> {
        let handles: Vec<JobHandle> = jobs.iter().map(|job| self.submit(job.clone())).collect();
        handles.iter().map(JobHandle::wait).collect()
    }

    /// Graceful shutdown: wait for every in-flight job to complete, then
    /// close the connections and join the reader and heartbeat threads.
    /// Workers keep running — they belong to their own processes.
    pub fn shutdown(self) {
        {
            let mut pending = lock(&self.shared.pending);
            while !pending.is_empty() {
                pending = self
                    .shared
                    .space
                    .wait(pending)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.shared
            .shutting_down
            .store(true, AtomicOrdering::SeqCst);
        for endpoint in &self.shared.endpoints {
            endpoint.alive.store(false, AtomicOrdering::SeqCst);
            let _ = endpoint.stream.shutdown(Shutdown::Both);
        }
        for thread in self.threads {
            let _ = thread.join();
        }
    }

    /// How many slabs `job` needs, or `None` when some live worker can hold
    /// it whole (or it carries a method override — no slab-composition story
    /// for baselines).  Mirrors the [`crate::MultiDeviceService`] check with
    /// the budget taken from the *largest* live worker: one big box should
    /// serve a big job whole rather than splitting it.
    fn slab_parts(&self, job: &BatchJob) -> Option<usize> {
        if job.method().is_some() {
            return None;
        }
        let budget = self
            .shared
            .endpoints
            .iter()
            .filter(|e| e.alive.load(AtomicOrdering::SeqCst))
            .map(|e| e.memory_capacity)
            .max()? as f64;
        let footprint = estimated_job_footprint_bytes(job, self.shared.tolerances);
        if footprint <= budget {
            return None;
        }
        Some(((footprint / budget).ceil() as usize).clamp(2, 64))
    }

    /// Slab-split an oversized job: children dispatch as independent wire
    /// jobs (inheriting priority and deadline), a combiner thread waits in
    /// slab order and publishes the [`combine_slab_outputs`] fold — the same
    /// bit-determinism contract as the in-process slab path.
    fn submit_slabbed(&self, job: BatchJob, parts: usize) -> JobHandle {
        let slabs = MultiDevicePagani::partition(job.region(), parts);
        let total_cost = self.shared.model.weigh_job(&job, self.shared.tolerances);
        let weights = slab_weights(total_cost, &slabs);
        let children: Vec<JobHandle> = slabs
            .into_iter()
            .zip(&weights)
            .map(|(slab, _)| {
                // Children carry their own wire charges (weigh_job of the
                // child); the slab_weights apportionment documents the
                // parent's split for ledger introspection.
                let pending = lock(&self.shared.pending);
                dispatch_locked(&self.shared, pending, job.clone().over(slab), false)
            })
            .collect();
        let tolerances = job_tolerances(&job, self.shared.tolerances);
        let parent = Arc::new(JobState::new());
        let state = Arc::clone(&parent);
        let waited = children.clone();
        std::thread::Builder::new()
            .name("pagani-slab-combiner".into())
            .spawn(move || {
                let mut outputs = Vec::with_capacity(waited.len());
                for child in &waited {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| child.wait())) {
                        Ok(output) => outputs.push(output),
                        Err(payload) => {
                            state.complete(JobOutcome::Panicked(crate::service::panic_message(
                                payload.as_ref(),
                            )));
                            return;
                        }
                    }
                }
                state.complete(JobOutcome::Finished(combine_slab_outputs(
                    &outputs, tolerances,
                )));
            })
            .expect("spawning the slab-combiner thread");
        JobHandle::detached(
            parent,
            Some(Arc::new(move || {
                for child in &children {
                    child.cancel();
                }
            })),
        )
    }
}

/// Dial one worker and run the versioned handshake.
fn connect(addr: &str) -> std::io::Result<Endpoint> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let writer = stream.try_clone()?;
    Message::Hello {
        version: PROTOCOL_VERSION,
    }
    .write_to(&mut &stream)?;
    match Message::read_from(&mut reader) {
        Ok(Message::HelloAck {
            memory_capacity,
            workers,
            ..
        }) => Ok(Endpoint {
            addr: addr.to_owned(),
            stream,
            writer: Mutex::new(writer),
            outstanding: Mutex::new(0.0),
            alive: AtomicBool::new(true),
            memory_capacity,
            workers,
        }),
        Ok(Message::HelloReject { message, .. }) => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("worker {addr} refused the handshake: {message}"),
        )),
        Ok(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("worker {addr} answered the handshake with a non-handshake frame"),
        )),
        Err(err) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("handshake with worker {addr} failed: {err}"),
        )),
    }
}

/// The front-end cache key of a job — same scheme as the local services'
/// `job_cache_key`.
fn cache_key(job: &BatchJob, tolerances: Tolerances) -> CacheKey {
    CacheKey::new(
        &job.integrand().name(),
        job.region().lo(),
        job.region().hi(),
        tolerances.rel,
        tolerances.abs,
    )
}

/// Build the `Submit` frame for `job`, attaching the best persisted
/// checkpoint when the front-end cache holds one.
fn submit_frame(shared: &DistShared, job_id: u64, job: &BatchJob) -> Message {
    let snapshot_json = shared.cache.as_ref().and_then(|cache| {
        let key = cache_key(job, shared.tolerances);
        cache
            .lookup_snapshot(&key.integrand_id, &key.region_lo_bits, &key.region_hi_bits)
            .map(|snapshot| snapshot.to_json_string())
    });
    Message::Submit {
        job_id,
        integrand: job.integrand().name(),
        dim: job.region().dim() as u32,
        lo_bits: job.region().lo().iter().map(|v| v.to_bits()).collect(),
        hi_bits: job.region().hi().iter().map(|v| v.to_bits()).collect(),
        priority: priority_to_tag(job.priority()),
        deadline_micros: job.deadline().map_or(NO_DEADLINE, |d| {
            d.as_micros().min(u128::from(u64::MAX)) as u64
        }),
        snapshot_json,
    }
}

/// The live endpoint with the least per-worker-thread outstanding load.
fn least_loaded(shared: &DistShared) -> Option<usize> {
    shared
        .endpoints
        .iter()
        .enumerate()
        .filter(|(_, e)| e.alive.load(AtomicOrdering::SeqCst))
        .min_by(|(_, a), (_, b)| {
            let la = remote_lane_load(*lock(&a.outstanding), a.workers as usize);
            let lb = remote_lane_load(*lock(&b.outstanding), b.workers as usize);
            la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// Register `job` as pending (holding the lock so queue-bound checks stay
/// exact), then ship it.  Returns a detached handle whose cancel hook
/// forwards a `Cancel` frame to whichever worker currently holds the job.
fn dispatch_locked(
    shared: &Arc<DistShared>,
    mut pending: MutexGuard<'_, HashMap<u64, Pending>>,
    job: BatchJob,
    requeue: bool,
) -> JobHandle {
    let job_id = shared.next_job_id.fetch_add(1, AtomicOrdering::Relaxed);
    let state = Arc::new(JobState::new());
    pending.insert(
        job_id,
        Pending {
            job: job.clone(),
            state: Arc::clone(&state),
            endpoint: usize::MAX, // patched by ship()
            charge: 0.0,
        },
    );
    drop(pending);
    shared.obs.submitted.fetch_add(1, AtomicOrdering::Relaxed);
    ship(shared, job_id, requeue);
    let hook_shared = Arc::clone(shared);
    JobHandle::detached(
        state,
        Some(Arc::new(move || {
            let endpoint = lock(&hook_shared.pending)
                .get(&job_id)
                .map(|entry| entry.endpoint);
            if let Some(index) = endpoint {
                if let Some(endpoint) = hook_shared.endpoints.get(index) {
                    let _ = endpoint.send(&Message::Cancel { job_id });
                }
            }
        })),
    )
}

/// Ship (or re-ship) a registered pending job to the least-loaded live
/// worker, charging its weight to that endpoint's ledger.  If every worker
/// is gone the job's handle completes with a panic outcome — there is no
/// one left to run it.
fn ship(shared: &Arc<DistShared>, job_id: u64, requeue: bool) {
    loop {
        let Some(job) = lock(&shared.pending).get(&job_id).map(|p| p.job.clone()) else {
            return; // completed (or failed) in the meantime
        };
        let Some(index) = least_loaded(shared) else {
            let entry = lock(&shared.pending).remove(&job_id);
            if let Some(entry) = entry {
                entry.state.complete(JobOutcome::Panicked(
                    "connection to every remote worker lost".to_owned(),
                ));
                shared.space.notify_all();
            }
            return;
        };
        let endpoint = &shared.endpoints[index];
        let charge = shared.model.weigh_job(&job, shared.tolerances);
        {
            let mut pending = lock(&shared.pending);
            let Some(entry) = pending.get_mut(&job_id) else {
                return;
            };
            entry.endpoint = index;
            entry.charge = charge;
        }
        *lock(&endpoint.outstanding) += charge;
        let frame = submit_frame(shared, job_id, &job);
        if endpoint.send(&frame).is_ok() {
            if requeue {
                shared
                    .obs
                    .remote_requeued
                    .fetch_add(1, AtomicOrdering::Relaxed);
            }
            shared
                .obs
                .remote_dispatched
                .fetch_add(1, AtomicOrdering::Relaxed);
            return;
        }
        // The write failed: this endpoint is dead.  Retire the charge, mark
        // it, wake its reader (which requeues *its* other jobs), and try the
        // next survivor for this one.
        *lock(&endpoint.outstanding) -= charge;
        endpoint.alive.store(false, AtomicOrdering::SeqCst);
        let _ = endpoint.stream.shutdown(Shutdown::Both);
    }
}

/// Per-endpoint reader: completes jobs, counts heartbeat acks, and on a
/// dead connection requeues the endpoint's in-flight jobs on a survivor.
fn reader_loop(shared: &Arc<DistShared>, index: usize) {
    let endpoint = &shared.endpoints[index];
    let Ok(mut reader) = endpoint.stream.try_clone() else {
        return;
    };
    loop {
        match Message::read_from(&mut reader) {
            Ok(Message::JobDone {
                job_id,
                estimate_bits,
                error_bits,
                termination,
                iterations,
                function_evaluations,
                regions_generated,
                active_regions_final,
                wall_micros,
                snapshot_json,
            }) => {
                let Ok(termination) = tag_to_termination(termination) else {
                    continue;
                };
                let result = IntegrationResult {
                    estimate: f64::from_bits(estimate_bits),
                    error_estimate: f64::from_bits(error_bits),
                    termination,
                    iterations: iterations as usize,
                    function_evaluations,
                    regions_generated,
                    active_regions_final: active_regions_final as usize,
                    wall_time: Duration::from_micros(wall_micros),
                };
                complete_job(
                    shared,
                    job_id,
                    JobOutcome::Finished(PaganiOutput {
                        result,
                        trace: ExecutionTrace::default(),
                    }),
                    snapshot_json,
                );
            }
            Ok(Message::JobFailed { job_id, message }) => {
                complete_job(shared, job_id, JobOutcome::Panicked(message), None);
            }
            Ok(Message::HeartbeatAck { .. }) => {
                shared
                    .obs
                    .remote_heartbeats
                    .fetch_add(1, AtomicOrdering::Relaxed);
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    if shared.shutting_down.load(AtomicOrdering::SeqCst) {
        return;
    }
    // Connection died mid-run: mark the endpoint dead and requeue every job
    // it held on a surviving worker (with its checkpoint, where one was
    // shipped back earlier).
    endpoint.alive.store(false, AtomicOrdering::SeqCst);
    let _ = endpoint.stream.shutdown(Shutdown::Both);
    let mut orphans: Vec<u64> = lock(&shared.pending)
        .iter()
        .filter(|(_, entry)| entry.endpoint == index)
        .map(|(&job_id, _)| job_id)
        .collect();
    orphans.sort_unstable();
    for job_id in orphans {
        {
            let mut pending = lock(&shared.pending);
            let Some(entry) = pending.get_mut(&job_id) else {
                continue;
            };
            *lock(&endpoint.outstanding) -= entry.charge;
            entry.charge = 0.0;
        }
        ship(shared, job_id, true);
    }
}

/// Retire one completed job: ledger, model training, checkpoint capture,
/// handle completion, queue-space wakeup.
fn complete_job(
    shared: &Arc<DistShared>,
    job_id: u64,
    outcome: JobOutcome,
    snapshot_json: Option<String>,
) {
    let Some(entry) = lock(&shared.pending).remove(&job_id) else {
        return;
    };
    if let Some(endpoint) = shared.endpoints.get(entry.endpoint) {
        *lock(&endpoint.outstanding) -= entry.charge;
    }
    if let JobOutcome::Finished(output) = &outcome {
        let cancelled = output.result.termination == Termination::Cancelled;
        if cancelled {
            shared.obs.cancelled.fetch_add(1, AtomicOrdering::Relaxed);
        } else {
            // Train the shared model with the worker-measured wall time —
            // what one worker learns prices that family everywhere.
            shared
                .model
                .record_job(&entry.job, shared.tolerances, output.result.wall_time);
        }
        if let (Some(cache), Some(json)) = (&shared.cache, &snapshot_json) {
            if let Ok(snapshot) = Snapshot::from_json_str(json) {
                if snapshot.validate().is_ok() {
                    cache.store(
                        cache_key(&entry.job, shared.tolerances),
                        None,
                        Some(snapshot),
                    );
                }
            }
        }
    }
    shared.obs.completed.fetch_add(1, AtomicOrdering::Relaxed);
    entry.state.complete(outcome);
    shared.space.notify_all();
}

/// Per-endpoint heartbeat: a [`Message::Heartbeat`] every `interval`,
/// sleeping in short ticks so shutdown stays responsive.  No clock is read —
/// tick counting is all the precision liveness probing needs.
fn heartbeat_loop(shared: &Arc<DistShared>, index: usize, interval: Duration) {
    let endpoint = &shared.endpoints[index];
    let tick = Duration::from_millis(10);
    let ticks_per_beat = (interval.as_millis() / tick.as_millis()).max(1) as u32;
    let mut seq = 0u64;
    loop {
        for _ in 0..ticks_per_beat {
            if shared.shutting_down.load(AtomicOrdering::SeqCst)
                || !endpoint.alive.load(AtomicOrdering::SeqCst)
            {
                return;
            }
            std::thread::sleep(tick);
        }
        seq += 1;
        if endpoint.send(&Message::Heartbeat { seq }).is_err() {
            // Writing failed: let the reader observe the dead socket and run
            // the requeue path; this thread's job is done.
            let _ = endpoint.stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_addresses_survive_construction() {
        // `connect` is exercised end-to-end in tests/distributed_semantics.rs
        // (it needs a live worker); here pin the pure pieces.
        let key = cache_key(
            &BatchJob::new(pagani_integrands::paper::PaperIntegrand::f4(3)),
            Tolerances::rel(1e-4),
        );
        assert_eq!(key.region_lo_bits.len(), 3);
    }
}
