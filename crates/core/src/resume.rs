//! Checkpoint/resume support types for the driver.
//!
//! [`crate::Pagani::integrate_resumable`] runs the normal breadth-first loop
//! while capturing [`Snapshot`]s of the region tree — periodically every K
//! generations and at every exit point where the tree is still a valid
//! starting state (cancellation, memory exhaustion, iteration exhaustion,
//! convergence).  [`crate::Pagani::resume_from`] re-enters the loop from such
//! a snapshot; because snapshots are bit-exact and the loop is deterministic,
//! the continuation is bit-identical to the uninterrupted run past the
//! checkpoint.

use std::fmt;

use pagani_persist::Snapshot;

use crate::driver::PaganiOutput;

/// Output of a resumable run: the normal result plus the snapshots captured
/// along the way.
#[derive(Debug, Clone)]
pub struct ResumableOutput {
    /// Estimate, error estimate, termination status, counters and trace —
    /// identical to what the non-resumable entry points return.
    pub output: PaganiOutput,
    /// Periodic checkpoints, one per K generations (empty when periodic
    /// checkpointing was not requested).
    pub checkpoints: Vec<Snapshot>,
    /// State at the end of the run, when the region tree was still resumable
    /// there: present after cancellation, memory exhaustion, iteration
    /// exhaustion and convergence (a converged tree warm-starts a
    /// tighter-tolerance request).  `None` only when the run died before any
    /// region tree existed.
    pub final_snapshot: Option<Snapshot>,
}

/// Why [`crate::Pagani::resume_from`] refused a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot's dimensionality does not match the integrand's.
    DimensionMismatch {
        /// The integrand's dimensionality.
        expected: usize,
        /// The snapshot's dimensionality.
        found: usize,
    },
    /// The snapshot holds no regions to resume from.
    EmptySnapshot,
    /// The snapshot is internally inconsistent (mismatched geometry buffers,
    /// a parent list that does not pair with the region count, ...).
    Corrupt(&'static str),
    /// The snapshot's region tree does not fit in this device's memory.
    OutOfMemory,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot dimension {found} does not match integrand dimension {expected}"
                )
            }
            ResumeError::EmptySnapshot => write!(f, "snapshot holds no regions"),
            ResumeError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            ResumeError::OutOfMemory => {
                write!(f, "snapshot region tree does not fit in device memory")
            }
        }
    }
}

impl std::error::Error for ResumeError {}
