//! PAGANI configuration.

use pagani_quadrature::Tolerances;

/// When the heuristic threshold classification (Algorithm 3) may be invoked.
///
/// The paper's Figure 8 ablates exactly these three settings ("PAGANI",
/// "Mem-exhaustion" and "No filtering").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeuristicFiltering {
    /// Invoke when the integral estimate has converged to the requested digits *or*
    /// when device memory would be exhausted by the next subdivision (§3.5.2).
    Full,
    /// Invoke only to avoid memory exhaustion.
    MemoryExhaustionOnly,
    /// Never invoke; only relative-error filtering is applied.
    Disabled,
}

/// Tuning knobs of the PAGANI driver.
#[derive(Debug, Clone, PartialEq)]
pub struct PaganiConfig {
    /// Relative / absolute error targets.
    pub tolerances: Tolerances,
    /// Maximum number of breadth-first iterations.
    pub max_iterations: usize,
    /// Number of parts each axis is cut into by the initial uniform split
    /// (Algorithm 2, line 4).  `None` picks the largest `d` with
    /// `d^dim ≤ initial_region_target`.
    pub splits_per_axis: Option<usize>,
    /// Target size of the initial region list when `splits_per_axis` is `None`.
    /// The paper sizes the initial list to fill the device (2^15 blocks on the V100).
    pub initial_region_target: usize,
    /// Whether individual regions may be finished by their relative error (§3.5.1).
    /// Must be disabled for integrands that oscillate between signs.
    pub rel_err_filtering: bool,
    /// When the heuristic threshold classification may run.
    pub heuristic_filtering: HeuristicFiltering,
    /// Whether Berntsen's two-level error refinement is applied (ablation knob;
    /// the paper always applies it).
    pub two_level_errors: bool,
    /// Record per-iteration statistics and threshold-search probes in the trace.
    pub collect_trace: bool,
}

impl PaganiConfig {
    /// Configuration with the paper's defaults for a given tolerance.
    #[must_use]
    pub fn new(tolerances: Tolerances) -> Self {
        Self {
            tolerances,
            max_iterations: 100,
            splits_per_axis: None,
            initial_region_target: 1 << 15,
            rel_err_filtering: true,
            heuristic_filtering: HeuristicFiltering::Full,
            two_level_errors: true,
            collect_trace: true,
        }
    }

    /// Configuration targeting `digits` decimal digits of relative precision.
    #[must_use]
    pub fn digits(digits: f64) -> Self {
        Self::new(Tolerances::digits(digits))
    }

    /// Small initial lists and few iterations — suitable for unit tests on the
    /// laptop-scale test device.
    #[must_use]
    pub fn test_small(tolerances: Tolerances) -> Self {
        Self {
            initial_region_target: 256,
            max_iterations: 60,
            ..Self::new(tolerances)
        }
    }

    /// Replace the error targets, keeping every other knob.
    #[must_use]
    pub fn with_tolerances(mut self, tolerances: Tolerances) -> Self {
        self.tolerances = tolerances;
        self
    }

    /// Disable relative-error filtering (for sign-oscillating integrands, §3.5.1).
    #[must_use]
    pub fn without_rel_err_filtering(mut self) -> Self {
        self.rel_err_filtering = false;
        self
    }

    /// Select the heuristic-filtering mode (Figure 8 ablation).
    #[must_use]
    pub fn with_heuristic_filtering(mut self, mode: HeuristicFiltering) -> Self {
        self.heuristic_filtering = mode;
        self
    }

    /// Fix the number of initial splits per axis.
    #[must_use]
    pub fn with_splits_per_axis(mut self, d: usize) -> Self {
        self.splits_per_axis = Some(d);
        self
    }

    /// The number of parts `d` each axis is cut into for a `dim`-dimensional problem.
    ///
    /// # Panics
    /// Panics if an explicit `splits_per_axis` of zero was configured.
    #[must_use]
    pub fn resolve_splits_per_axis(&self, dim: usize) -> usize {
        if let Some(d) = self.splits_per_axis {
            assert!(d >= 1, "splits_per_axis must be at least 1");
            return d;
        }
        // Largest d ≥ 2 with d^dim ≤ initial_region_target (but never more than the
        // target itself in one dimension).
        let target = self.initial_region_target.max(2);
        let mut d = 2usize;
        loop {
            let next = d + 1;
            let Some(count) = next.checked_pow(dim as u32) else {
                break;
            };
            if count > target {
                break;
            }
            d = next;
        }
        d
    }
}

impl Default for PaganiConfig {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = PaganiConfig::default();
        assert_eq!(cfg.initial_region_target, 1 << 15);
        assert!(cfg.rel_err_filtering);
        assert_eq!(cfg.heuristic_filtering, HeuristicFiltering::Full);
        assert!(cfg.two_level_errors);
    }

    #[test]
    fn splits_per_axis_auto_scaling() {
        let cfg = PaganiConfig::default();
        // 8 dimensions: 3^8 = 6561 ≤ 32768 < 4^8.
        assert_eq!(cfg.resolve_splits_per_axis(8), 3);
        // 5 dimensions: 8^5 = 32768 ≤ 32768 < 9^5.
        assert_eq!(cfg.resolve_splits_per_axis(5), 8);
        // 2 dimensions: 181² = 32761 ≤ 32768.
        assert_eq!(cfg.resolve_splits_per_axis(2), 181);
    }

    #[test]
    fn explicit_splits_override_auto() {
        let cfg = PaganiConfig::default().with_splits_per_axis(4);
        assert_eq!(cfg.resolve_splits_per_axis(8), 4);
    }

    #[test]
    fn builder_toggles() {
        let cfg = PaganiConfig::digits(5.0)
            .without_rel_err_filtering()
            .with_heuristic_filtering(HeuristicFiltering::Disabled);
        assert!(!cfg.rel_err_filtering);
        assert_eq!(cfg.heuristic_filtering, HeuristicFiltering::Disabled);
        assert!((cfg.tolerances.rel - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn test_small_shrinks_initial_list() {
        let cfg = PaganiConfig::test_small(Tolerances::rel(1e-3));
        assert!(cfg.initial_region_target <= 256);
        assert!(cfg.max_iterations >= 50);
        // 3 dimensions: 6^3 = 216 ≤ 256 < 7^3.
        assert_eq!(cfg.resolve_splits_per_axis(3), 6);
    }
}
