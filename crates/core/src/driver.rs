//! The PAGANI driver: Algorithm 2 of the paper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pagani_device::{scan, Device, DeviceError};
use pagani_persist::{Snapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION};
use pagani_quadrature::two_level::refine_generation;
use pagani_quadrature::{GenzMalik, Integrand, IntegrationResult, Region, Termination};

use crate::arena::ScratchArena;
use crate::classify::{active_count, rel_err_classify_into};
use crate::config::{HeuristicFiltering, PaganiConfig};
use crate::evaluate::evaluate_all_in;
use crate::integrator::{check_cancelled, ensure_matching_dims};
use crate::region_list::RegionList;
use crate::resume::{ResumableOutput, ResumeError};
use crate::threshold::{threshold_classify, ThresholdPolicy};
use crate::trace::{ExecutionTrace, IterationRecord, ThresholdSearchRecord, ThresholdTrigger};

/// A cooperative cancellation flag shared between a running integration and
/// its canceller.
///
/// The driver polls the token at every iteration boundary; once cancelled, the
/// run stops within one breadth-first iteration and reports
/// [`Termination::Cancelled`] together with the best cumulative estimate seen
/// so far.  Cloning shares the flag.  A token that is never cancelled has no
/// observable effect on a run — results are bit-identical with and without
/// one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation.  Idempotent; takes effect at the next iteration
    /// boundary of any run holding a clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Result of a PAGANI run: the standard integration result plus the execution trace.
#[derive(Debug, Clone)]
pub struct PaganiOutput {
    /// Estimate, error estimate, termination status and counters.
    pub result: IntegrationResult,
    /// Per-iteration statistics and threshold-search probes (empty when
    /// `collect_trace` is disabled).
    pub trace: ExecutionTrace,
}

/// Loop-carried driver state, split out so a resumed run can restore it from
/// a [`Snapshot`] and a fresh run can start it from zero.  The region list
/// itself travels separately (it lives in device memory).
struct LoopInit {
    finished_estimate: f64,
    finished_error: f64,
    threshold_frozen_error: f64,
    function_evaluations: u64,
    regions_generated: u64,
    previous_cumulative: Option<f64>,
    parent_integrals: Option<Vec<f64>>,
    start_iteration: usize,
    latest_estimate: f64,
    latest_error: f64,
}

impl LoopInit {
    fn fresh(initial_regions: u64) -> Self {
        LoopInit {
            finished_estimate: 0.0,
            finished_error: 0.0,
            threshold_frozen_error: 0.0,
            function_evaluations: 0,
            regions_generated: initial_regions,
            previous_cumulative: None,
            parent_integrals: None,
            start_iteration: 0,
            latest_estimate: 0.0,
            latest_error: f64::INFINITY,
        }
    }

    fn from_snapshot(snapshot: &Snapshot) -> Self {
        LoopInit {
            finished_estimate: snapshot.finished_estimate,
            finished_error: snapshot.finished_error,
            threshold_frozen_error: snapshot.threshold_frozen_error,
            function_evaluations: snapshot.function_evaluations,
            regions_generated: snapshot.regions_generated,
            previous_cumulative: snapshot.previous_cumulative,
            parent_integrals: snapshot.parent_integrals.clone(),
            start_iteration: snapshot.next_iteration,
            latest_estimate: snapshot.latest_estimate,
            latest_error: snapshot.latest_error,
        }
    }
}

/// What (if anything) to snapshot during a run.  `None` is the plain path:
/// no capture code runs at all, so non-resumable results stay bit-identical
/// to what they were before snapshots existed.
struct SnapshotPlan<'a> {
    /// Capture a checkpoint every this many generations (0 = only capture at
    /// exit points).
    checkpoint_every: usize,
    integrand_id: String,
    region: &'a Region,
}

/// The loop-carried scalars a snapshot records, bundled so each capture site
/// can pass either the values saved at the top of the iteration or the
/// current ones.  All `Copy`, so saving them every iteration is free of float
/// arithmetic and heap traffic.
#[derive(Clone, Copy)]
struct SnapAccumulators {
    finished_estimate: f64,
    finished_error: f64,
    threshold_frozen_error: f64,
    function_evaluations: u64,
    regions_generated: u64,
    previous_cumulative: Option<f64>,
    latest_estimate: f64,
    latest_error: f64,
}

/// The PAGANI integrator.
///
/// A `Pagani` instance owns a handle to the simulated device and a configuration and
/// can integrate any number of integrands; each [`Pagani::integrate`] call is
/// independent, matching the paper's timing methodology of excluding one-time device
/// setup from the measured interval.
#[derive(Debug, Clone)]
pub struct Pagani {
    device: Device,
    config: PaganiConfig,
}

impl Pagani {
    /// Create an integrator on `device` with `config`.
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        Self { device, config }
    }

    /// Create an integrator on the paper's V100-like device.
    #[must_use]
    pub fn with_default_device(config: PaganiConfig) -> Self {
        Self::new(Device::v100_like(), config)
    }

    /// The device this integrator runs on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds (the unit cube for the paper's suite).
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> PaganiOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region<F: Integrand + ?Sized>(&self, f: &F, region: &Region) -> PaganiOutput {
        self.integrate_region_in(f, region, &ScratchArena::default())
    }

    /// Integrate `f` over its default bounds, drawing scratch storage from `arena`.
    ///
    /// Recycling is value-transparent: the result is bit-identical to
    /// [`Pagani::integrate`], whatever the arena already holds.  A caller that
    /// runs many jobs — the batch engine's workers above all — passes one
    /// long-lived arena so region lists, estimate arrays and masks are reused
    /// across iterations *and* across jobs instead of reallocated per
    /// generation.
    pub fn integrate_in<F: Integrand + ?Sized>(&self, f: &F, arena: &ScratchArena) -> PaganiOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region_in(f, &Region::new(lo, hi), arena)
    }

    /// Integrate `f` over an explicit region, drawing scratch storage from `arena`.
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region_in<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        arena: &ScratchArena,
    ) -> PaganiOutput {
        self.integrate_region_with(f, region, arena, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region with scratch storage from `arena`
    /// and cooperative cancellation through `cancel`.
    ///
    /// This is the full-control entry point the [`crate::service`] workers
    /// use.  The token is polled once per breadth-first iteration, so a
    /// cancellation lands within one driver iteration; the run then reports
    /// [`Termination::Cancelled`] with the latest cumulative estimates.  An
    /// uncancelled token leaves results bit-identical to
    /// [`Pagani::integrate_region_in`].
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region_with<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        arena: &ScratchArena,
        cancel: &CancelToken,
    ) -> PaganiOutput {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        match self.start_list(f.dim(), region, arena) {
            Ok(list) => {
                let init = LoopInit::fresh(list.len() as u64);
                self.run_from(f, arena, cancel, list, init, None, start)
                    .output
            }
            Err(err) => self.bail_out(
                0.0,
                0.0,
                Termination::MemoryExhausted,
                0,
                0,
                0,
                start,
                ExecutionTrace::default(),
                Some(err),
            ),
        }
    }

    /// Integrate `f` over an explicit region while capturing resumable
    /// [`Snapshot`]s of the region tree.
    ///
    /// `checkpoint_every > 0` captures a checkpoint every that many
    /// generations (state "about to run generation k"); `0` captures only at
    /// exit points.  Either way the returned
    /// [`final_snapshot`](ResumableOutput::final_snapshot) holds the tree at
    /// the end of the run whenever it is still resumable — after
    /// cancellation, memory or iteration exhaustion, and after convergence
    /// (so a tighter-tolerance request can warm-start from it).
    ///
    /// The result itself is bit-identical to
    /// [`Pagani::integrate_region_with`]: snapshot capture copies state but
    /// performs no float arithmetic.
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_resumable<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        arena: &ScratchArena,
        cancel: &CancelToken,
        checkpoint_every: usize,
    ) -> ResumableOutput {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let plan = SnapshotPlan {
            checkpoint_every,
            integrand_id: f.name(),
            region,
        };
        match self.start_list(f.dim(), region, arena) {
            Ok(list) => {
                let init = LoopInit::fresh(list.len() as u64);
                self.run_from(f, arena, cancel, list, init, Some(&plan), start)
            }
            Err(err) => ResumableOutput {
                output: self.bail_out(
                    0.0,
                    0.0,
                    Termination::MemoryExhausted,
                    0,
                    0,
                    0,
                    start,
                    ExecutionTrace::default(),
                    Some(err),
                ),
                checkpoints: Vec::new(),
                final_snapshot: None,
            },
        }
    }

    /// Resume an integration from a [`Snapshot`], continuing exactly where
    /// the captured run stopped.
    ///
    /// The integrand must match the one the snapshot was taken from: the
    /// driver checks dimensionality and structural consistency, but the
    /// function body itself is the caller's responsibility (snapshots store
    /// only the integrand's name).  Given the same integrand, configuration
    /// and an equivalently provisioned device, the continuation performs the
    /// same float operations in the same order as the uninterrupted run, so
    /// estimate/error/counters match it to the bit.
    ///
    /// # Errors
    /// Returns [`ResumeError`] when the snapshot does not fit this integrand
    /// or device rather than computing a wrong answer.
    pub fn resume_from<F: Integrand + ?Sized>(
        &self,
        f: &F,
        snapshot: &Snapshot,
        arena: &ScratchArena,
        cancel: &CancelToken,
    ) -> Result<ResumableOutput, ResumeError> {
        let start = Instant::now();
        snapshot.validate().map_err(|e| match e {
            SnapshotError::Schema(what) => ResumeError::Corrupt(what),
            _ => ResumeError::Corrupt("snapshot failed validation"),
        })?;
        if snapshot.dim != f.dim() {
            return Err(ResumeError::DimensionMismatch {
                expected: f.dim(),
                found: snapshot.dim,
            });
        }
        if snapshot.lefts.is_empty() {
            return Err(ResumeError::EmptySnapshot);
        }
        let region = Region::new(snapshot.region_lo.clone(), snapshot.region_hi.clone());
        let pool = self.device.memory().clone();
        let list = RegionList::from_flat_in(
            snapshot.dim,
            &snapshot.lefts,
            &snapshot.lengths,
            &pool,
            arena,
        )
        .map_err(|_| ResumeError::OutOfMemory)?;
        let plan = SnapshotPlan {
            checkpoint_every: 0,
            integrand_id: f.name(),
            region: &region,
        };
        let init = LoopInit::from_snapshot(snapshot);
        Ok(self.run_from(f, arena, cancel, list, init, Some(&plan), start))
    }

    /// Initial uniform split (Algorithm 2, lines 2-4), backing off the
    /// per-axis split count under memory pressure.
    fn start_list(
        &self,
        dim: usize,
        region: &Region,
        arena: &ScratchArena,
    ) -> Result<RegionList, DeviceError> {
        let pool = self.device.memory().clone();
        let mut d = self.config.resolve_splits_per_axis(dim);
        loop {
            match RegionList::initial_split_in(region, d, &pool, arena) {
                Ok(list) => return Ok(list),
                Err(DeviceError::OutOfDeviceMemory { .. }) if d > 1 => d -= 1,
                Err(err) => return Err(err),
            }
        }
    }

    /// The breadth-first driver loop (Algorithm 2, lines 5-24), entered at
    /// `init.start_iteration` with loop-carried state from `init` — zeroed
    /// for a fresh run, restored from a snapshot for a resumed one.  With
    /// `plan: None` no capture code runs and the float path is exactly the
    /// historical `integrate_region_with` body.
    #[allow(clippy::too_many_arguments)]
    fn run_from<F: Integrand + ?Sized>(
        &self,
        f: &F,
        arena: &ScratchArena,
        cancel: &CancelToken,
        mut list: RegionList,
        init: LoopInit,
        plan: Option<&SnapshotPlan<'_>>,
        start: Instant,
    ) -> ResumableOutput {
        let dim = list.dim();
        let rule = GenzMalik::new(dim);
        let pool = self.device.memory().clone();
        let tolerances = self.config.tolerances;
        let mut trace = ExecutionTrace::default();
        let mut checkpoints: Vec<Snapshot> = Vec::new();
        let mut final_snapshot: Option<Snapshot> = None;

        // Finished-region accumulators (v_f, e_f) and per-run counters.
        let mut finished_estimate = init.finished_estimate;
        let mut finished_error = init.finished_error;
        // Error frozen specifically by the heuristic threshold classification.  It is
        // capped at half of the allowed total error so that relative-error filtering
        // (whose commitments are proportional to the frozen integral mass) always has
        // headroom left and convergence is never ruled out by the heuristic alone.
        let mut threshold_frozen_error = init.threshold_frozen_error;
        let mut function_evaluations = init.function_evaluations;
        let mut regions_generated = init.regions_generated;
        let mut previous_cumulative: Option<f64> = init.previous_cumulative;
        // Parent integral estimates aligned with the sibling layout of `list`
        // (None on the first iteration, which has no parents).
        let mut parent_integrals: Option<Vec<f64>> = init.parent_integrals;

        let mut iterations_run = init.start_iteration;
        let mut termination = Termination::MaxIterations;
        // Best cumulative estimates seen so far (active + finished); this is what a
        // non-converged run reports, matching the paper's "return the latest integral
        // and error estimate with a flag" behaviour (§3.5.2).
        let mut latest_estimate = init.latest_estimate;
        let mut latest_error = init.latest_error;

        for iteration in init.start_iteration..self.config.max_iterations {
            // Loop-carried scalars as of the top of this iteration: every
            // capture that means "about to run iteration `iteration`" uses
            // these, so a resumed run re-enters with untouched state.
            let entry_acc = SnapAccumulators {
                finished_estimate,
                finished_error,
                threshold_frozen_error,
                function_evaluations,
                regions_generated,
                previous_cumulative,
                latest_estimate,
                latest_error,
            };
            // --- Cooperative cancellation (iteration boundary). -----------------
            if let Some(cancelled) = check_cancelled(cancel) {
                termination = cancelled;
                if let Some(plan) = plan {
                    final_snapshot = Some(self.capture_snapshot(
                        plan,
                        &list,
                        parent_integrals.as_deref(),
                        entry_acc,
                        iteration,
                        false,
                    ));
                }
                break;
            }
            if let Some(plan) = plan {
                if plan.checkpoint_every > 0
                    && iteration > init.start_iteration
                    && (iteration - init.start_iteration) % plan.checkpoint_every == 0
                {
                    checkpoints.push(self.capture_snapshot(
                        plan,
                        &list,
                        parent_integrals.as_deref(),
                        entry_acc,
                        iteration,
                        false,
                    ));
                }
            }
            iterations_run = iteration + 1;

            // --- Evaluate all regions (line 10). --------------------------------
            let evaluation = match evaluate_all_in(&self.device, &rule, f, &list, arena) {
                Ok(e) => e,
                Err(_) => {
                    if let Some(plan) = plan {
                        final_snapshot = Some(self.capture_snapshot(
                            plan,
                            &list,
                            parent_integrals.as_deref(),
                            entry_acc,
                            iteration,
                            false,
                        ));
                    }
                    break;
                }
            };
            function_evaluations += evaluation.function_evaluations;
            let integrals = evaluation.integrals;
            let mut errors = evaluation.errors;
            let split_axes = evaluation.split_axes;

            // --- Two-level error refinement (line 11). --------------------------
            if self.config.two_level_errors {
                if let Some(parents) = &parent_integrals {
                    debug_assert_eq!(parents.len() * 2, integrals.len());
                    self.device.timed_section("postprocess.refine_error", || {
                        refine_generation(&integrals, &mut errors, parents);
                    });
                }
            }

            // --- Relative-error classification (line 12). -----------------------
            let mut mask = arena.take_mask(integrals.len());
            self.device.timed_section("postprocess.classify", || {
                rel_err_classify_into(
                    &integrals,
                    &errors,
                    tolerances,
                    self.config.rel_err_filtering,
                    &mut mask,
                );
            });

            // --- Global reductions and termination (lines 13-16). ---------------
            let (iter_estimate, iter_error) =
                self.device.timed_section("postprocess.reduce", || {
                    (
                        self.device.reduce_sum(&integrals),
                        self.device.reduce_sum(&errors),
                    )
                });
            let cumulative_estimate = iter_estimate + finished_estimate;
            let cumulative_error = iter_error + finished_error;
            latest_estimate = cumulative_estimate;
            latest_error = cumulative_error;
            if tolerances.satisfied_by(cumulative_estimate, cumulative_error) {
                termination = Termination::Converged;
                self.push_iteration_record(
                    &mut trace,
                    iteration,
                    list.len(),
                    active_count(&mask),
                    cumulative_estimate,
                    cumulative_error,
                    finished_estimate,
                    finished_error,
                    false,
                );
                if let Some(plan) = plan {
                    // Pre-fold state: resuming re-runs this generation, so a
                    // tighter tolerance can keep refining the same tree.
                    final_snapshot = Some(self.capture_snapshot(
                        plan,
                        &list,
                        parent_integrals.as_deref(),
                        entry_acc,
                        iteration,
                        true,
                    ));
                }
                finished_estimate = cumulative_estimate;
                finished_error = cumulative_error;
                arena.put_f64(integrals);
                arena.put_f64(errors);
                arena.put_axes(split_axes);
                arena.put_mask(mask);
                break;
            }

            // --- Heuristic threshold classification (line 17, §3.5.2). ----------
            let active_now = active_count(&mask);
            let estimate_converged = previous_cumulative.is_some_and(|prev| {
                (cumulative_estimate - prev).abs() <= cumulative_estimate.abs() * tolerances.rel
            });
            // Splitting keeps the filtered copy and the doubled generation alive at
            // the same time as the current list, so require room for 3× the active
            // geometry on top of what is already allocated.
            let bytes_needed = RegionList::bytes_for(3 * active_now, dim);
            let memory_pressure = !pool.can_allocate(bytes_needed);
            let trigger = match self.config.heuristic_filtering {
                HeuristicFiltering::Disabled => None,
                HeuristicFiltering::MemoryExhaustionOnly => {
                    memory_pressure.then_some(ThresholdTrigger::MemoryPressure)
                }
                HeuristicFiltering::Full => {
                    if memory_pressure {
                        Some(ThresholdTrigger::MemoryPressure)
                    } else if estimate_converged {
                        Some(ThresholdTrigger::EstimateConverged)
                    } else {
                        None
                    }
                }
            };
            let mut threshold_invoked = false;
            if let Some(trigger) = trigger {
                let allowed_total_error =
                    (cumulative_estimate.abs() * tolerances.rel).max(tolerances.abs);
                let headroom = allowed_total_error - finished_error;
                let error_budget = match trigger {
                    // Integral already solved: be conservative so that relative-error
                    // filtering keeps enough headroom of its own.
                    ThresholdTrigger::EstimateConverged => {
                        headroom.min(0.5 * allowed_total_error - threshold_frozen_error)
                    }
                    // Memory is the binding constraint: spend whatever headroom is
                    // left rather than fail outright.
                    ThresholdTrigger::MemoryPressure => headroom,
                };
                let outcome = self.device.timed_section("threshold.search", || {
                    threshold_classify(
                        &mask,
                        &errors,
                        error_budget,
                        iter_error,
                        ThresholdPolicy::default(),
                        arena,
                    )
                });
                threshold_invoked = true;
                if self.config.collect_trace {
                    trace.threshold_searches.push(ThresholdSearchRecord {
                        iteration,
                        trigger,
                        probes: outcome.probes.clone(),
                        successful: outcome.successful,
                    });
                }
                if outcome.successful {
                    threshold_frozen_error += outcome.newly_committed_error;
                    arena.put_mask(std::mem::replace(&mut mask, outcome.mask));
                }
            }

            // --- Accumulate finished contributions (lines 18-19). ---------------
            let (active_estimate, active_error) =
                self.device.timed_section("postprocess.reduce", || {
                    (
                        self.device.reduce_masked_sum(&integrals, &mask),
                        self.device.reduce_masked_sum(&errors, &mask),
                    )
                });
            finished_estimate += iter_estimate - active_estimate;
            finished_error += iter_error - active_error;
            previous_cumulative = Some(cumulative_estimate);

            self.push_iteration_record(
                &mut trace,
                iteration,
                list.len(),
                active_count(&mask),
                cumulative_estimate,
                cumulative_error,
                finished_estimate,
                finished_error,
                threshold_invoked,
            );

            // --- Filter out finished regions (line 20). --------------------------
            if active_count(&mask) == 0 {
                // Everything was classified finished; the cumulative estimates are
                // final.  (With same-sign estimates this implies convergence by
                // Lemma 3.1; otherwise report the budget-based status.)
                termination = if tolerances.satisfied_by(finished_estimate, finished_error) {
                    Termination::Converged
                } else {
                    Termination::MaxIterations
                };
                if let Some(plan) = plan {
                    // The folded totals are final, but the pre-fold tree is
                    // still the right warm-start state for a tighter run.
                    final_snapshot = Some(self.capture_snapshot(
                        plan,
                        &list,
                        parent_integrals.as_deref(),
                        entry_acc,
                        iteration,
                        termination == Termination::Converged,
                    ));
                }
                arena.put_f64(integrals);
                arena.put_f64(errors);
                arena.put_axes(split_axes);
                arena.put_mask(mask);
                break;
            }
            let filter_result = self
                .device
                .timed_section("filter.compact", || list.filter_in(&mask, &pool, arena));
            let filtered = match filter_result {
                Ok(filtered) => filtered,
                Err(_) => {
                    termination = Termination::MemoryExhausted;
                    if let Some(plan) = plan {
                        final_snapshot = Some(self.capture_snapshot(
                            plan,
                            &list,
                            parent_integrals.as_deref(),
                            entry_acc,
                            iteration,
                            false,
                        ));
                    }
                    break;
                }
            };
            let mut active_integrals = arena.take_f64(active_now);
            scan::compact_by_mask_into(&integrals, &mask, &mut active_integrals);
            let mut active_axes = arena.take_axes(active_now);
            scan::compact_by_mask_into(&split_axes, &mask, &mut active_axes);
            list.retire(arena);

            // --- Update parents and split every active region (lines 21-23). -----
            let split_result = self.device.timed_section("filter.split", || {
                filtered.split_all_in(&active_axes, &pool, arena)
            });
            match split_result {
                Ok(children) => {
                    regions_generated += children.len() as u64;
                    if let Some(old) = parent_integrals.replace(active_integrals) {
                        arena.put_f64(old);
                    }
                    filtered.retire(arena);
                    list = children;
                }
                Err(_) => {
                    // Memory exhausted and no further subdivision possible (§3.5.2).
                    termination = Termination::MemoryExhausted;
                    list = filtered;
                    if let Some(plan) = plan {
                        // The pre-split geometry is gone; persist the
                        // filtered survivors with this iteration's
                        // accumulators instead.  No parents: the first
                        // resumed generation skips two-level refinement.
                        let acc = SnapAccumulators {
                            finished_estimate,
                            finished_error,
                            threshold_frozen_error,
                            function_evaluations,
                            regions_generated,
                            previous_cumulative,
                            latest_estimate,
                            latest_error,
                        };
                        final_snapshot = Some(self.capture_snapshot(
                            plan,
                            &list,
                            None,
                            acc,
                            iterations_run,
                            false,
                        ));
                    }
                    break;
                }
            }

            // --- Shelve this generation's arrays for the next one. ---------------
            arena.put_f64(integrals);
            arena.put_f64(errors);
            arena.put_axes(split_axes);
            arena.put_mask(mask);
            arena.put_axes(active_axes);
        }
        // Natural iteration exhaustion: no break captured a snapshot, but the
        // surviving generation is still a valid resume point.
        if let Some(plan) = plan {
            if final_snapshot.is_none() && !list.is_empty() {
                let acc = SnapAccumulators {
                    finished_estimate,
                    finished_error,
                    threshold_frozen_error,
                    function_evaluations,
                    regions_generated,
                    previous_cumulative,
                    latest_estimate,
                    latest_error,
                };
                final_snapshot = Some(self.capture_snapshot(
                    plan,
                    &list,
                    parent_integrals.as_deref(),
                    acc,
                    iterations_run,
                    false,
                ));
            }
        }
        // The surviving list and parent array go back to the arena so the next
        // job on this arena starts from recycled storage.
        list.retire(arena);
        if let Some(parents) = parent_integrals.take() {
            arena.put_f64(parents);
        }

        // A converged run already folded everything into the finished accumulators; a
        // non-converged run reports the latest cumulative (active + finished) totals.
        if termination != Termination::Converged {
            finished_estimate = latest_estimate;
            finished_error = latest_error;
        }

        let result = IntegrationResult {
            estimate: finished_estimate,
            error_estimate: finished_error,
            termination,
            iterations: iterations_run,
            function_evaluations,
            regions_generated,
            active_regions_final: trace
                .iterations
                .last()
                .map_or(0, |r| r.active_after_classify),
            wall_time: start.elapsed(),
        };
        ResumableOutput {
            output: PaganiOutput { result, trace },
            checkpoints,
            final_snapshot,
        }
    }

    /// Copy driver state into a [`Snapshot`].  Pure data movement — no float
    /// arithmetic — so capture cannot perturb the result.
    fn capture_snapshot(
        &self,
        plan: &SnapshotPlan<'_>,
        list: &RegionList,
        parent_integrals: Option<&[f64]>,
        acc: SnapAccumulators,
        next_iteration: usize,
        converged: bool,
    ) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            integrand_id: plan.integrand_id.clone(),
            region_lo: plan.region.lo().to_vec(),
            region_hi: plan.region.hi().to_vec(),
            rel_tol: self.config.tolerances.rel,
            abs_tol: self.config.tolerances.abs,
            converged,
            dim: list.dim(),
            lefts: list.lefts().to_vec(),
            lengths: list.lengths().to_vec(),
            parent_integrals: parent_integrals.map(<[f64]>::to_vec),
            finished_estimate: acc.finished_estimate,
            finished_error: acc.finished_error,
            threshold_frozen_error: acc.threshold_frozen_error,
            function_evaluations: acc.function_evaluations,
            regions_generated: acc.regions_generated,
            previous_cumulative: acc.previous_cumulative,
            next_iteration,
            latest_estimate: acc.latest_estimate,
            latest_error: acc.latest_error,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_iteration_record(
        &self,
        trace: &mut ExecutionTrace,
        iteration: usize,
        regions_processed: usize,
        active_after_classify: usize,
        cumulative_estimate: f64,
        cumulative_error: f64,
        finished_estimate: f64,
        finished_error: f64,
        threshold_invoked: bool,
    ) {
        if !self.config.collect_trace {
            return;
        }
        trace.iterations.push(IterationRecord {
            iteration,
            regions_processed,
            active_after_classify,
            cumulative_estimate,
            cumulative_error,
            finished_estimate,
            finished_error,
            memory_used: self.device.memory().usage().used,
            threshold_invoked,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn bail_out(
        &self,
        estimate: f64,
        error: f64,
        termination: Termination,
        iterations: usize,
        function_evaluations: u64,
        regions_generated: u64,
        start: Instant,
        trace: ExecutionTrace,
        _cause: Option<DeviceError>,
    ) -> PaganiOutput {
        PaganiOutput {
            result: IntegrationResult {
                estimate,
                error_estimate: error,
                termination,
                iterations,
                function_evaluations,
                regions_generated,
                active_regions_final: 0,
                wall_time: start.elapsed(),
            },
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::{Device, DeviceConfig};
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_integrands::workloads::GaussianLikelihood;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn test_pagani(tol: f64) -> Pagani {
        Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(tol)),
        )
    }

    #[test]
    fn constant_integrand_converges_immediately() {
        let pagani = test_pagani(1e-6);
        let f = FnIntegrand::new(3, |_: &[f64]| 4.0);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!((out.result.estimate - 4.0).abs() < 1e-9);
        assert_eq!(out.result.iterations, 1);
    }

    #[test]
    fn smooth_polynomial_reaches_tight_tolerance() {
        let pagani = test_pagani(1e-8);
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1]);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(1.0 / 3.0 + 0.5) < 1e-8);
    }

    #[test]
    fn gaussian_5d_reaches_three_digits() {
        let f = PaperIntegrand::f4(5);
        let pagani = test_pagani(1e-3);
        let out = pagani.integrate(&f);
        assert!(out.result.converged(), "{:?}", out.result.termination);
        assert!(
            out.result.true_relative_error(f.reference_value()) < 1e-3,
            "true rel err {}",
            out.result.true_relative_error(f.reference_value())
        );
    }

    #[test]
    fn corner_peak_3d_reaches_five_digits() {
        let f = PaperIntegrand::f3(3);
        let pagani = test_pagani(1e-5);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(f.reference_value()) < 1e-5);
    }

    #[test]
    fn oscillatory_requires_disabling_rel_err_filtering() {
        let f = PaperIntegrand::f1(3);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4)).without_rel_err_filtering();
        let pagani = Pagani::new(Device::test_small(), config);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(f.reference_value()) < 1e-4);
    }

    #[test]
    fn cosmology_likelihood_matches_closed_form() {
        let like = GaussianLikelihood::cosmology_like(3);
        let device = Device::new(DeviceConfig::test_small().with_memory_capacity(32 << 20));
        let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)));
        let out = pagani.integrate(&like);
        assert!(out.result.converged(), "{:?}", out.result.termination);
        assert!(out.result.true_relative_error(like.reference_value()) < 1e-4);
    }

    #[test]
    fn estimated_error_bounds_true_error_for_suite_members() {
        // §4.2's requirement: the estimated relative error at termination should not
        // understate the true error for the well-behaved suite members.
        for f in [
            PaperIntegrand::f4(3),
            PaperIntegrand::f5(3),
            PaperIntegrand::f3(3),
        ] {
            let pagani = test_pagani(1e-4);
            let out = pagani.integrate(&f);
            assert!(out.result.converged(), "{}", f.label());
            let true_err = out.result.true_relative_error(f.reference_value());
            assert!(
                true_err <= 1e-4,
                "{}: true {} vs requested 1e-4",
                f.label(),
                true_err
            );
        }
    }

    #[test]
    fn trace_records_every_iteration() {
        let pagani = test_pagani(1e-5);
        let f = PaperIntegrand::f4(3);
        let out = pagani.integrate(&f);
        assert_eq!(out.trace.iterations.len(), out.result.iterations);
        assert!(out.trace.total_regions_processed() > 0);
        // Region counts per iteration never exceed the doubled predecessor.
        for pair in out.trace.iterations.windows(2) {
            assert!(pair[1].regions_processed <= 2 * pair[0].regions_processed);
        }
    }

    #[test]
    fn trace_collection_can_be_disabled() {
        let config = PaganiConfig::test_small(Tolerances::rel(1e-3));
        let config = PaganiConfig {
            collect_trace: false,
            ..config
        };
        let pagani = Pagani::new(Device::test_small(), config);
        let out = pagani.integrate(&PaperIntegrand::f4(3));
        assert!(out.trace.iterations.is_empty());
    }

    #[test]
    fn tiny_memory_forces_memory_exhaustion_or_threshold_rescue() {
        // A device with only a few KiB cannot hold many 5-D regions; PAGANI must either
        // rescue itself through threshold filtering or report memory exhaustion, never
        // panic or loop forever.
        let device = Device::new(DeviceConfig::test_small().with_memory_capacity(6 * 1024));
        let config = PaganiConfig::test_small(Tolerances::rel(1e-7));
        let pagani = Pagani::new(device, config);
        let f = PaperIntegrand::f4(5);
        let out = pagani.integrate(&f);
        match out.result.termination {
            Termination::Converged | Termination::MemoryExhausted | Termination::MaxIterations => {}
            other => panic!("unexpected termination {other:?}"),
        }
        assert!(out.result.estimate.is_finite());
    }

    #[test]
    fn heuristic_filtering_reduces_region_count_on_gaussian() {
        // Figure 8/9's mechanism: the heuristic must never hurt — it converges at
        // least as often as plain relative-error filtering and never needs more
        // regions, while retaining full accuracy.
        let f = PaperIntegrand::f4(4);
        let tol = Tolerances::rel(1e-4);
        let make_device = || Device::new(DeviceConfig::test_small().with_memory_capacity(32 << 20));
        let with = Pagani::new(
            make_device(),
            PaganiConfig::test_small(tol).with_heuristic_filtering(HeuristicFiltering::Full),
        )
        .integrate(&f);
        let without = Pagani::new(
            make_device(),
            PaganiConfig::test_small(tol).with_heuristic_filtering(HeuristicFiltering::Disabled),
        )
        .integrate(&f);
        if without.result.converged() {
            assert!(with.result.converged(), "heuristic lost a convergence");
            assert!(
                with.result.regions_generated <= without.result.regions_generated,
                "heuristic should not generate more regions ({} vs {})",
                with.result.regions_generated,
                without.result.regions_generated
            );
        }
        if with.result.converged() {
            assert!(with.result.true_relative_error(f.reference_value()) < 1e-4);
        } else {
            // At minimum the run must terminate cleanly with a finite estimate.
            assert!(with.result.estimate.is_finite());
        }
    }

    #[test]
    fn function_evaluation_counter_matches_rule_cost() {
        let pagani = test_pagani(1e-3);
        let f = PaperIntegrand::f4(3);
        let out = pagani.integrate(&f);
        let rule_points = pagani_quadrature::GenzMalik::new(3).num_points() as u64;
        assert_eq!(
            out.result.function_evaluations,
            out.trace.total_regions_processed() * rule_points
        );
    }

    #[test]
    fn kernel_profile_is_dominated_by_evaluate() {
        let device = Device::test_small();
        let pagani = Pagani::new(
            device.clone(),
            PaganiConfig::test_small(Tolerances::rel(1e-5)),
        );
        let _ = pagani.integrate(&PaperIntegrand::f4(4));
        let evaluate_fraction = device.profile().fraction_for_prefix("evaluate");
        assert!(
            evaluate_fraction > 0.3,
            "evaluate fraction {evaluate_fraction}"
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_iteration() {
        let pagani = test_pagani(1e-6);
        let f = FnIntegrand::new(3, |_: &[f64]| 4.0);
        let token = CancelToken::new();
        token.cancel();
        let out =
            pagani.integrate_region_with(&f, &Region::unit_cube(3), &ScratchArena::new(), &token);
        assert_eq!(out.result.termination, Termination::Cancelled);
        assert_eq!(out.result.iterations, 0);
        assert!(!out.result.converged());
    }

    #[test]
    fn uncancelled_token_is_bit_transparent() {
        let f = PaperIntegrand::f4(3);
        let plain = test_pagani(1e-4).integrate(&f);
        let with_token = test_pagani(1e-4).integrate_region_with(
            &f,
            &Region::unit_cube(3),
            &ScratchArena::new(),
            &CancelToken::new(),
        );
        assert_eq!(
            plain.result.estimate.to_bits(),
            with_token.result.estimate.to_bits()
        );
        assert_eq!(plain.result.iterations, with_token.result.iterations);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_region_dimension_panics() {
        let pagani = test_pagani(1e-3);
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        let _ = pagani.integrate_region(&f, &Region::unit_cube(3));
    }
}
