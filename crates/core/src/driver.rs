//! The PAGANI driver: Algorithm 2 of the paper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pagani_device::{scan, Device, DeviceError};
use pagani_quadrature::two_level::refine_generation;
use pagani_quadrature::{GenzMalik, Integrand, IntegrationResult, Region, Termination};

use crate::arena::ScratchArena;
use crate::classify::{active_count, rel_err_classify_into};
use crate::config::{HeuristicFiltering, PaganiConfig};
use crate::evaluate::evaluate_all_in;
use crate::integrator::{check_cancelled, ensure_matching_dims};
use crate::region_list::RegionList;
use crate::threshold::{threshold_classify, ThresholdPolicy};
use crate::trace::{ExecutionTrace, IterationRecord, ThresholdSearchRecord, ThresholdTrigger};

/// A cooperative cancellation flag shared between a running integration and
/// its canceller.
///
/// The driver polls the token at every iteration boundary; once cancelled, the
/// run stops within one breadth-first iteration and reports
/// [`Termination::Cancelled`] together with the best cumulative estimate seen
/// so far.  Cloning shares the flag.  A token that is never cancelled has no
/// observable effect on a run — results are bit-identical with and without
/// one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation.  Idempotent; takes effect at the next iteration
    /// boundary of any run holding a clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Result of a PAGANI run: the standard integration result plus the execution trace.
#[derive(Debug, Clone)]
pub struct PaganiOutput {
    /// Estimate, error estimate, termination status and counters.
    pub result: IntegrationResult,
    /// Per-iteration statistics and threshold-search probes (empty when
    /// `collect_trace` is disabled).
    pub trace: ExecutionTrace,
}

/// The PAGANI integrator.
///
/// A `Pagani` instance owns a handle to the simulated device and a configuration and
/// can integrate any number of integrands; each [`Pagani::integrate`] call is
/// independent, matching the paper's timing methodology of excluding one-time device
/// setup from the measured interval.
#[derive(Debug, Clone)]
pub struct Pagani {
    device: Device,
    config: PaganiConfig,
}

impl Pagani {
    /// Create an integrator on `device` with `config`.
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        Self { device, config }
    }

    /// Create an integrator on the paper's V100-like device.
    #[must_use]
    pub fn with_default_device(config: PaganiConfig) -> Self {
        Self::new(Device::v100_like(), config)
    }

    /// The device this integrator runs on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds (the unit cube for the paper's suite).
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> PaganiOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region<F: Integrand + ?Sized>(&self, f: &F, region: &Region) -> PaganiOutput {
        self.integrate_region_in(f, region, &ScratchArena::default())
    }

    /// Integrate `f` over its default bounds, drawing scratch storage from `arena`.
    ///
    /// Recycling is value-transparent: the result is bit-identical to
    /// [`Pagani::integrate`], whatever the arena already holds.  A caller that
    /// runs many jobs — the batch engine's workers above all — passes one
    /// long-lived arena so region lists, estimate arrays and masks are reused
    /// across iterations *and* across jobs instead of reallocated per
    /// generation.
    pub fn integrate_in<F: Integrand + ?Sized>(&self, f: &F, arena: &ScratchArena) -> PaganiOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region_in(f, &Region::new(lo, hi), arena)
    }

    /// Integrate `f` over an explicit region, drawing scratch storage from `arena`.
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region_in<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        arena: &ScratchArena,
    ) -> PaganiOutput {
        self.integrate_region_with(f, region, arena, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region with scratch storage from `arena`
    /// and cooperative cancellation through `cancel`.
    ///
    /// This is the full-control entry point the [`crate::service`] workers
    /// use.  The token is polled once per breadth-first iteration, so a
    /// cancellation lands within one driver iteration; the run then reports
    /// [`Termination::Cancelled`] with the latest cumulative estimates.  An
    /// uncancelled token leaves results bit-identical to
    /// [`Pagani::integrate_region_in`].
    ///
    /// # Panics
    /// Panics if the region dimension does not match the integrand dimension.
    pub fn integrate_region_with<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        arena: &ScratchArena,
        cancel: &CancelToken,
    ) -> PaganiOutput {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let dim = f.dim();
        let rule = GenzMalik::new(dim);
        let pool = self.device.memory().clone();
        let tolerances = self.config.tolerances;
        let mut trace = ExecutionTrace::default();

        // --- Initial uniform split (Algorithm 2, lines 2-4). ---------------------
        let mut d = self.config.resolve_splits_per_axis(dim);
        let mut list = loop {
            match RegionList::initial_split_in(region, d, &pool, arena) {
                Ok(list) => break list,
                Err(DeviceError::OutOfDeviceMemory { .. }) if d > 1 => d -= 1,
                Err(err) => {
                    return self.bail_out(
                        0.0,
                        0.0,
                        Termination::MemoryExhausted,
                        0,
                        0,
                        0,
                        start,
                        trace,
                        Some(err),
                    )
                }
            }
        };

        // Finished-region accumulators (v_f, e_f) and per-run counters.
        let mut finished_estimate = 0.0f64;
        let mut finished_error = 0.0f64;
        // Error frozen specifically by the heuristic threshold classification.  It is
        // capped at half of the allowed total error so that relative-error filtering
        // (whose commitments are proportional to the frozen integral mass) always has
        // headroom left and convergence is never ruled out by the heuristic alone.
        let mut threshold_frozen_error = 0.0f64;
        let mut function_evaluations = 0u64;
        let mut regions_generated = list.len() as u64;
        let mut previous_cumulative: Option<f64> = None;
        // Parent integral estimates aligned with the sibling layout of `list`
        // (None on the first iteration, which has no parents).
        let mut parent_integrals: Option<Vec<f64>> = None;

        let mut iterations_run = 0usize;
        let mut termination = Termination::MaxIterations;
        // Best cumulative estimates seen so far (active + finished); this is what a
        // non-converged run reports, matching the paper's "return the latest integral
        // and error estimate with a flag" behaviour (§3.5.2).
        let mut latest_estimate = 0.0f64;
        let mut latest_error = f64::INFINITY;

        for iteration in 0..self.config.max_iterations {
            // --- Cooperative cancellation (iteration boundary). -----------------
            if let Some(cancelled) = check_cancelled(cancel) {
                termination = cancelled;
                break;
            }
            iterations_run = iteration + 1;

            // --- Evaluate all regions (line 10). --------------------------------
            let evaluation = match evaluate_all_in(&self.device, &rule, f, &list, arena) {
                Ok(e) => e,
                Err(_) => break,
            };
            function_evaluations += evaluation.function_evaluations;
            let integrals = evaluation.integrals;
            let mut errors = evaluation.errors;
            let split_axes = evaluation.split_axes;

            // --- Two-level error refinement (line 11). --------------------------
            if self.config.two_level_errors {
                if let Some(parents) = &parent_integrals {
                    debug_assert_eq!(parents.len() * 2, integrals.len());
                    self.device.timed_section("postprocess.refine_error", || {
                        refine_generation(&integrals, &mut errors, parents);
                    });
                }
            }

            // --- Relative-error classification (line 12). -----------------------
            let mut mask = arena.take_mask(integrals.len());
            self.device.timed_section("postprocess.classify", || {
                rel_err_classify_into(
                    &integrals,
                    &errors,
                    tolerances,
                    self.config.rel_err_filtering,
                    &mut mask,
                );
            });

            // --- Global reductions and termination (lines 13-16). ---------------
            let (iter_estimate, iter_error) =
                self.device.timed_section("postprocess.reduce", || {
                    (
                        self.device.reduce_sum(&integrals),
                        self.device.reduce_sum(&errors),
                    )
                });
            let cumulative_estimate = iter_estimate + finished_estimate;
            let cumulative_error = iter_error + finished_error;
            latest_estimate = cumulative_estimate;
            latest_error = cumulative_error;
            if tolerances.satisfied_by(cumulative_estimate, cumulative_error) {
                termination = Termination::Converged;
                self.push_iteration_record(
                    &mut trace,
                    iteration,
                    list.len(),
                    active_count(&mask),
                    cumulative_estimate,
                    cumulative_error,
                    finished_estimate,
                    finished_error,
                    false,
                );
                finished_estimate = cumulative_estimate;
                finished_error = cumulative_error;
                arena.put_f64(integrals);
                arena.put_f64(errors);
                arena.put_axes(split_axes);
                arena.put_mask(mask);
                break;
            }

            // --- Heuristic threshold classification (line 17, §3.5.2). ----------
            let active_now = active_count(&mask);
            let estimate_converged = previous_cumulative.is_some_and(|prev| {
                (cumulative_estimate - prev).abs() <= cumulative_estimate.abs() * tolerances.rel
            });
            // Splitting keeps the filtered copy and the doubled generation alive at
            // the same time as the current list, so require room for 3× the active
            // geometry on top of what is already allocated.
            let bytes_needed = RegionList::bytes_for(3 * active_now, dim);
            let memory_pressure = !pool.can_allocate(bytes_needed);
            let trigger = match self.config.heuristic_filtering {
                HeuristicFiltering::Disabled => None,
                HeuristicFiltering::MemoryExhaustionOnly => {
                    memory_pressure.then_some(ThresholdTrigger::MemoryPressure)
                }
                HeuristicFiltering::Full => {
                    if memory_pressure {
                        Some(ThresholdTrigger::MemoryPressure)
                    } else if estimate_converged {
                        Some(ThresholdTrigger::EstimateConverged)
                    } else {
                        None
                    }
                }
            };
            let mut threshold_invoked = false;
            if let Some(trigger) = trigger {
                let allowed_total_error =
                    (cumulative_estimate.abs() * tolerances.rel).max(tolerances.abs);
                let headroom = allowed_total_error - finished_error;
                let error_budget = match trigger {
                    // Integral already solved: be conservative so that relative-error
                    // filtering keeps enough headroom of its own.
                    ThresholdTrigger::EstimateConverged => {
                        headroom.min(0.5 * allowed_total_error - threshold_frozen_error)
                    }
                    // Memory is the binding constraint: spend whatever headroom is
                    // left rather than fail outright.
                    ThresholdTrigger::MemoryPressure => headroom,
                };
                let outcome = self.device.timed_section("threshold.search", || {
                    threshold_classify(
                        &mask,
                        &errors,
                        error_budget,
                        iter_error,
                        ThresholdPolicy::default(),
                        arena,
                    )
                });
                threshold_invoked = true;
                if self.config.collect_trace {
                    trace.threshold_searches.push(ThresholdSearchRecord {
                        iteration,
                        trigger,
                        probes: outcome.probes.clone(),
                        successful: outcome.successful,
                    });
                }
                if outcome.successful {
                    threshold_frozen_error += outcome.newly_committed_error;
                    arena.put_mask(std::mem::replace(&mut mask, outcome.mask));
                }
            }

            // --- Accumulate finished contributions (lines 18-19). ---------------
            let (active_estimate, active_error) =
                self.device.timed_section("postprocess.reduce", || {
                    (
                        self.device.reduce_masked_sum(&integrals, &mask),
                        self.device.reduce_masked_sum(&errors, &mask),
                    )
                });
            finished_estimate += iter_estimate - active_estimate;
            finished_error += iter_error - active_error;
            previous_cumulative = Some(cumulative_estimate);

            self.push_iteration_record(
                &mut trace,
                iteration,
                list.len(),
                active_count(&mask),
                cumulative_estimate,
                cumulative_error,
                finished_estimate,
                finished_error,
                threshold_invoked,
            );

            // --- Filter out finished regions (line 20). --------------------------
            if active_count(&mask) == 0 {
                // Everything was classified finished; the cumulative estimates are
                // final.  (With same-sign estimates this implies convergence by
                // Lemma 3.1; otherwise report the budget-based status.)
                termination = if tolerances.satisfied_by(finished_estimate, finished_error) {
                    Termination::Converged
                } else {
                    Termination::MaxIterations
                };
                arena.put_f64(integrals);
                arena.put_f64(errors);
                arena.put_axes(split_axes);
                arena.put_mask(mask);
                break;
            }
            let filter_result = self
                .device
                .timed_section("filter.compact", || list.filter_in(&mask, &pool, arena));
            let filtered = match filter_result {
                Ok(filtered) => filtered,
                Err(_) => {
                    termination = Termination::MemoryExhausted;
                    break;
                }
            };
            let mut active_integrals = arena.take_f64(active_now);
            scan::compact_by_mask_into(&integrals, &mask, &mut active_integrals);
            let mut active_axes = arena.take_axes(active_now);
            scan::compact_by_mask_into(&split_axes, &mask, &mut active_axes);
            list.retire(arena);

            // --- Update parents and split every active region (lines 21-23). -----
            let split_result = self.device.timed_section("filter.split", || {
                filtered.split_all_in(&active_axes, &pool, arena)
            });
            match split_result {
                Ok(children) => {
                    regions_generated += children.len() as u64;
                    if let Some(old) = parent_integrals.replace(active_integrals) {
                        arena.put_f64(old);
                    }
                    filtered.retire(arena);
                    list = children;
                }
                Err(_) => {
                    // Memory exhausted and no further subdivision possible (§3.5.2).
                    termination = Termination::MemoryExhausted;
                    list = filtered;
                    break;
                }
            }

            // --- Shelve this generation's arrays for the next one. ---------------
            arena.put_f64(integrals);
            arena.put_f64(errors);
            arena.put_axes(split_axes);
            arena.put_mask(mask);
            arena.put_axes(active_axes);
        }
        // The surviving list and parent array go back to the arena so the next
        // job on this arena starts from recycled storage.
        list.retire(arena);
        if let Some(parents) = parent_integrals.take() {
            arena.put_f64(parents);
        }

        // A converged run already folded everything into the finished accumulators; a
        // non-converged run reports the latest cumulative (active + finished) totals.
        if termination != Termination::Converged {
            finished_estimate = latest_estimate;
            finished_error = latest_error;
        }

        let result = IntegrationResult {
            estimate: finished_estimate,
            error_estimate: finished_error,
            termination,
            iterations: iterations_run,
            function_evaluations,
            regions_generated,
            active_regions_final: trace
                .iterations
                .last()
                .map_or(0, |r| r.active_after_classify),
            wall_time: start.elapsed(),
        };
        PaganiOutput { result, trace }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_iteration_record(
        &self,
        trace: &mut ExecutionTrace,
        iteration: usize,
        regions_processed: usize,
        active_after_classify: usize,
        cumulative_estimate: f64,
        cumulative_error: f64,
        finished_estimate: f64,
        finished_error: f64,
        threshold_invoked: bool,
    ) {
        if !self.config.collect_trace {
            return;
        }
        trace.iterations.push(IterationRecord {
            iteration,
            regions_processed,
            active_after_classify,
            cumulative_estimate,
            cumulative_error,
            finished_estimate,
            finished_error,
            memory_used: self.device.memory().usage().used,
            threshold_invoked,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn bail_out(
        &self,
        estimate: f64,
        error: f64,
        termination: Termination,
        iterations: usize,
        function_evaluations: u64,
        regions_generated: u64,
        start: Instant,
        trace: ExecutionTrace,
        _cause: Option<DeviceError>,
    ) -> PaganiOutput {
        PaganiOutput {
            result: IntegrationResult {
                estimate,
                error_estimate: error,
                termination,
                iterations,
                function_evaluations,
                regions_generated,
                active_regions_final: 0,
                wall_time: start.elapsed(),
            },
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::{Device, DeviceConfig};
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_integrands::workloads::GaussianLikelihood;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn test_pagani(tol: f64) -> Pagani {
        Pagani::new(
            Device::test_small(),
            PaganiConfig::test_small(Tolerances::rel(tol)),
        )
    }

    #[test]
    fn constant_integrand_converges_immediately() {
        let pagani = test_pagani(1e-6);
        let f = FnIntegrand::new(3, |_: &[f64]| 4.0);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!((out.result.estimate - 4.0).abs() < 1e-9);
        assert_eq!(out.result.iterations, 1);
    }

    #[test]
    fn smooth_polynomial_reaches_tight_tolerance() {
        let pagani = test_pagani(1e-8);
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1]);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(1.0 / 3.0 + 0.5) < 1e-8);
    }

    #[test]
    fn gaussian_5d_reaches_three_digits() {
        let f = PaperIntegrand::f4(5);
        let pagani = test_pagani(1e-3);
        let out = pagani.integrate(&f);
        assert!(out.result.converged(), "{:?}", out.result.termination);
        assert!(
            out.result.true_relative_error(f.reference_value()) < 1e-3,
            "true rel err {}",
            out.result.true_relative_error(f.reference_value())
        );
    }

    #[test]
    fn corner_peak_3d_reaches_five_digits() {
        let f = PaperIntegrand::f3(3);
        let pagani = test_pagani(1e-5);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(f.reference_value()) < 1e-5);
    }

    #[test]
    fn oscillatory_requires_disabling_rel_err_filtering() {
        let f = PaperIntegrand::f1(3);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4)).without_rel_err_filtering();
        let pagani = Pagani::new(Device::test_small(), config);
        let out = pagani.integrate(&f);
        assert!(out.result.converged());
        assert!(out.result.true_relative_error(f.reference_value()) < 1e-4);
    }

    #[test]
    fn cosmology_likelihood_matches_closed_form() {
        let like = GaussianLikelihood::cosmology_like(3);
        let device = Device::new(DeviceConfig::test_small().with_memory_capacity(32 << 20));
        let pagani = Pagani::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)));
        let out = pagani.integrate(&like);
        assert!(out.result.converged(), "{:?}", out.result.termination);
        assert!(out.result.true_relative_error(like.reference_value()) < 1e-4);
    }

    #[test]
    fn estimated_error_bounds_true_error_for_suite_members() {
        // §4.2's requirement: the estimated relative error at termination should not
        // understate the true error for the well-behaved suite members.
        for f in [
            PaperIntegrand::f4(3),
            PaperIntegrand::f5(3),
            PaperIntegrand::f3(3),
        ] {
            let pagani = test_pagani(1e-4);
            let out = pagani.integrate(&f);
            assert!(out.result.converged(), "{}", f.label());
            let true_err = out.result.true_relative_error(f.reference_value());
            assert!(
                true_err <= 1e-4,
                "{}: true {} vs requested 1e-4",
                f.label(),
                true_err
            );
        }
    }

    #[test]
    fn trace_records_every_iteration() {
        let pagani = test_pagani(1e-5);
        let f = PaperIntegrand::f4(3);
        let out = pagani.integrate(&f);
        assert_eq!(out.trace.iterations.len(), out.result.iterations);
        assert!(out.trace.total_regions_processed() > 0);
        // Region counts per iteration never exceed the doubled predecessor.
        for pair in out.trace.iterations.windows(2) {
            assert!(pair[1].regions_processed <= 2 * pair[0].regions_processed);
        }
    }

    #[test]
    fn trace_collection_can_be_disabled() {
        let config = PaganiConfig::test_small(Tolerances::rel(1e-3));
        let config = PaganiConfig {
            collect_trace: false,
            ..config
        };
        let pagani = Pagani::new(Device::test_small(), config);
        let out = pagani.integrate(&PaperIntegrand::f4(3));
        assert!(out.trace.iterations.is_empty());
    }

    #[test]
    fn tiny_memory_forces_memory_exhaustion_or_threshold_rescue() {
        // A device with only a few KiB cannot hold many 5-D regions; PAGANI must either
        // rescue itself through threshold filtering or report memory exhaustion, never
        // panic or loop forever.
        let device = Device::new(DeviceConfig::test_small().with_memory_capacity(6 * 1024));
        let config = PaganiConfig::test_small(Tolerances::rel(1e-7));
        let pagani = Pagani::new(device, config);
        let f = PaperIntegrand::f4(5);
        let out = pagani.integrate(&f);
        match out.result.termination {
            Termination::Converged | Termination::MemoryExhausted | Termination::MaxIterations => {}
            other => panic!("unexpected termination {other:?}"),
        }
        assert!(out.result.estimate.is_finite());
    }

    #[test]
    fn heuristic_filtering_reduces_region_count_on_gaussian() {
        // Figure 8/9's mechanism: the heuristic must never hurt — it converges at
        // least as often as plain relative-error filtering and never needs more
        // regions, while retaining full accuracy.
        let f = PaperIntegrand::f4(4);
        let tol = Tolerances::rel(1e-4);
        let make_device = || Device::new(DeviceConfig::test_small().with_memory_capacity(32 << 20));
        let with = Pagani::new(
            make_device(),
            PaganiConfig::test_small(tol).with_heuristic_filtering(HeuristicFiltering::Full),
        )
        .integrate(&f);
        let without = Pagani::new(
            make_device(),
            PaganiConfig::test_small(tol).with_heuristic_filtering(HeuristicFiltering::Disabled),
        )
        .integrate(&f);
        if without.result.converged() {
            assert!(with.result.converged(), "heuristic lost a convergence");
            assert!(
                with.result.regions_generated <= without.result.regions_generated,
                "heuristic should not generate more regions ({} vs {})",
                with.result.regions_generated,
                without.result.regions_generated
            );
        }
        if with.result.converged() {
            assert!(with.result.true_relative_error(f.reference_value()) < 1e-4);
        } else {
            // At minimum the run must terminate cleanly with a finite estimate.
            assert!(with.result.estimate.is_finite());
        }
    }

    #[test]
    fn function_evaluation_counter_matches_rule_cost() {
        let pagani = test_pagani(1e-3);
        let f = PaperIntegrand::f4(3);
        let out = pagani.integrate(&f);
        let rule_points = pagani_quadrature::GenzMalik::new(3).num_points() as u64;
        assert_eq!(
            out.result.function_evaluations,
            out.trace.total_regions_processed() * rule_points
        );
    }

    #[test]
    fn kernel_profile_is_dominated_by_evaluate() {
        let device = Device::test_small();
        let pagani = Pagani::new(
            device.clone(),
            PaganiConfig::test_small(Tolerances::rel(1e-5)),
        );
        let _ = pagani.integrate(&PaperIntegrand::f4(4));
        let evaluate_fraction = device.profile().fraction_for_prefix("evaluate");
        assert!(
            evaluate_fraction > 0.3,
            "evaluate fraction {evaluate_fraction}"
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_iteration() {
        let pagani = test_pagani(1e-6);
        let f = FnIntegrand::new(3, |_: &[f64]| 4.0);
        let token = CancelToken::new();
        token.cancel();
        let out =
            pagani.integrate_region_with(&f, &Region::unit_cube(3), &ScratchArena::new(), &token);
        assert_eq!(out.result.termination, Termination::Cancelled);
        assert_eq!(out.result.iterations, 0);
        assert!(!out.result.converged());
    }

    #[test]
    fn uncancelled_token_is_bit_transparent() {
        let f = PaperIntegrand::f4(3);
        let plain = test_pagani(1e-4).integrate(&f);
        let with_token = test_pagani(1e-4).integrate_region_with(
            &f,
            &Region::unit_cube(3),
            &ScratchArena::new(),
            &CancelToken::new(),
        );
        assert_eq!(
            plain.result.estimate.to_bits(),
            with_token.result.estimate.to_bits()
        );
        assert_eq!(plain.result.iterations, with_token.result.iterations);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_region_dimension_panics() {
        let pagani = test_pagani(1e-3);
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        let _ = pagani.integrate_region(&f, &Region::unit_cube(3));
    }
}
