//! The batch execution engine: many independent integration jobs over one
//! shared device worker pool.
//!
//! A single [`crate::Pagani::integrate`] call alternates parallel kernel
//! launches with serial host phases, so one job cannot keep a wide worker pool
//! busy — and a service answering many integration requests cares about
//! *throughput* (integrals per second), not single-job latency.  A
//! [`BatchRunner`] runs N independent jobs concurrently over one [`Device`]:
//!
//! * **No oversubscription.**  Every kernel launch from every job lands on the
//!   device's one worker pool, and whole jobs are admitted through the
//!   device's FIFO [`pagani_device::FairGate`], sized to the worker count — so
//!   however many jobs are submitted, at most a pool's worth are in flight,
//!   and when jobs do queue they are admitted in the order they reached the
//!   gate: a stream of short jobs can never starve a long one that arrived
//!   first.
//! * **Buffer reuse.**  Each runner worker owns a long-lived [`ScratchArena`];
//!   region lists, estimate arrays and classification masks are recycled
//!   across iterations and across the jobs that worker executes, instead of
//!   being reallocated each generation.
//! * **Per-job memory isolation.**  Each job runs against
//!   [`Device::isolated_memory_view`]: a fresh, full-capacity pool sharing the
//!   parent's workers.  Memory-pressure heuristics therefore see exactly what
//!   they would see if the job ran alone, which makes batch results
//!   **bit-identical** to running the same jobs sequentially — the invariant
//!   the batch determinism tests pin down.  A combined cross-job memory quota
//!   is an explicit non-goal of this engine (tracked on the roadmap).
//!
//! ```
//! use pagani_core::{integrate_batch, BatchJob, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let a = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
//! let b = FnIntegrand::new(3, |x: &[f64]| x[0] * x[1] * x[2]);
//! let jobs = [BatchJob::new(&a), BatchJob::new(&b)];
//! let device = Device::test_small();
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-6));
//! let outputs = integrate_batch(&device, &config, &jobs);
//! assert!(outputs.iter().all(|o| o.result.converged()));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pagani_device::Device;
use pagani_quadrature::{Integrand, Region};

use crate::arena::ScratchArena;
use crate::config::PaganiConfig;
use crate::driver::{Pagani, PaganiOutput};

/// One independent integration job: an integrand and the region to integrate
/// it over.
#[derive(Clone)]
pub struct BatchJob<'a> {
    integrand: &'a dyn Integrand,
    region: Region,
}

impl std::fmt::Debug for BatchJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchJob")
            .field("integrand", &self.integrand.name())
            .field("dim", &self.region.dim())
            .finish()
    }
}

impl<'a> BatchJob<'a> {
    /// A job integrating `integrand` over its default bounds.
    #[must_use]
    pub fn new(integrand: &'a dyn Integrand) -> Self {
        let (lo, hi) = integrand.default_bounds();
        Self {
            integrand,
            region: Region::new(lo, hi),
        }
    }

    /// A job integrating `integrand` over an explicit `region`.
    #[must_use]
    pub fn over(integrand: &'a dyn Integrand, region: Region) -> Self {
        Self { integrand, region }
    }

    /// The job's integrand.
    #[must_use]
    pub fn integrand(&self) -> &'a dyn Integrand {
        self.integrand
    }

    /// The job's integration region.
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }
}

/// Runs batches of independent integration jobs concurrently on one device.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    device: Device,
    config: PaganiConfig,
    concurrency: usize,
}

impl BatchRunner {
    /// Create a runner on `device`; concurrency defaults to the device's
    /// effective worker count.
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        let concurrency = device.effective_workers();
        Self {
            device,
            config,
            concurrency,
        }
    }

    /// Override how many runner workers pull jobs at once.  Values above the
    /// device's gate capacity are admitted FIFO by the gate, so raising this
    /// past the worker count cannot oversubscribe the device.
    #[must_use]
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// The device jobs run on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration applied to every job.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.config
    }

    /// Run every job and return their outputs in job order.
    ///
    /// Jobs are claimed by a fixed set of runner workers from a shared cursor,
    /// admitted through the device's FIFO gate, and each executes on a
    /// memory-isolated view of the device with its worker's long-lived scratch
    /// arena.  Outputs are bit-identical to running the same jobs sequentially
    /// with [`Pagani::integrate_region`] on the same device.
    ///
    /// # Panics
    /// Panics if a job's integrand and region dimensions differ (propagated
    /// from the driver).
    #[must_use]
    pub fn run(&self, jobs: &[BatchJob<'_>]) -> Vec<PaganiOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.concurrency.min(jobs.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PaganiOutput>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One arena per runner worker: storage recycles across
                    // every job this worker executes.
                    let arena = ScratchArena::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        let _permit = self.device.submission_gate().acquire();
                        let view = self.device.isolated_memory_view();
                        let pagani = Pagani::new(view, self.config.clone());
                        let output = pagani.integrate_region_in(job.integrand, &job.region, &arena);
                        *slots[index].lock().expect("result slot poisoned") = Some(output);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job produces an output")
            })
            .collect()
    }
}

/// Run `jobs` concurrently on `device` and return outputs in job order.
///
/// Convenience facade over [`BatchRunner`]; see the module docs for the
/// execution model.
#[must_use]
pub fn integrate_batch(
    device: &Device,
    config: &PaganiConfig,
    jobs: &[BatchJob<'_>],
) -> Vec<PaganiOutput> {
    BatchRunner::new(device.clone(), config.clone()).run(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::DeviceConfig;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn test_device(workers: usize) -> Device {
        Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(workers),
        )
    }

    #[test]
    fn outputs_arrive_in_job_order() {
        let squares = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1] * x[1]);
        let cubes = FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] * x[0]);
        let constant = FnIntegrand::new(2, |_: &[f64]| 5.0);
        let jobs = [
            BatchJob::new(&squares),
            BatchJob::new(&cubes),
            BatchJob::new(&constant),
        ];
        let outputs = integrate_batch(
            &test_device(2),
            &PaganiConfig::test_small(Tolerances::rel(1e-8)),
            &jobs,
        );
        assert_eq!(outputs.len(), 3);
        assert!((outputs[0].result.estimate - 2.0 / 3.0).abs() < 1e-7);
        assert!((outputs[1].result.estimate - 0.25).abs() < 1e-7);
        assert!((outputs[2].result.estimate - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_empty() {
        let runner = BatchRunner::new(
            test_device(1),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
        );
        assert!(runner.run(&[]).is_empty());
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let f = PaperIntegrand::f4(3);
        let jobs: Vec<BatchJob<'_>> = (0..9).map(|_| BatchJob::new(&f)).collect();
        let runner = BatchRunner::new(
            test_device(2),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
        )
        .with_concurrency(4);
        let outputs = runner.run(&jobs);
        assert_eq!(outputs.len(), 9);
        assert!(outputs.iter().all(|o| o.result.converged()));
        // All nine jobs ran the same problem: identical to the last bit.
        let first = outputs[0].result.estimate.to_bits();
        assert!(outputs.iter().all(|o| o.result.estimate.to_bits() == first));
    }

    #[test]
    fn explicit_region_jobs_are_honoured() {
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let job = BatchJob::over(&f, Region::new(vec![0.0, 0.0], vec![2.0, 1.0]));
        let outputs = integrate_batch(
            &test_device(1),
            &PaganiConfig::test_small(Tolerances::rel(1e-8)),
            &[job],
        );
        // ∫∫ (x + y) over [0,2]×[0,1] = 2 + 1 = 3.
        assert!((outputs[0].result.estimate - 3.0).abs() < 1e-7);
    }

    #[test]
    fn batch_leaves_the_parent_pool_untouched() {
        let device = test_device(2);
        let f = PaperIntegrand::f4(3);
        let jobs = [BatchJob::new(&f), BatchJob::new(&f)];
        let _ = integrate_batch(
            &device,
            &PaganiConfig::test_small(Tolerances::rel(1e-3)),
            &jobs,
        );
        assert_eq!(
            device.memory().usage().used,
            0,
            "jobs allocate only from their isolated views"
        );
    }
}
