//! The batch execution engine: many independent integration jobs over one
//! shared device worker pool.
//!
//! A single [`crate::Pagani::integrate`] call alternates parallel kernel
//! launches with serial host phases, so one job cannot keep a wide worker pool
//! busy — and a service answering many integration requests cares about
//! *throughput* (integrals per second), not single-job latency.  A
//! [`BatchRunner`] runs N independent jobs concurrently over one [`Device`].
//! Since the asynchronous [`crate::IntegrationService`] landed, the runner is
//! submit-all-then-wait sugar on top of that queue, so both entry points share
//! one execution model:
//!
//! * **No oversubscription.**  Every kernel launch from every job lands on the
//!   device's one worker pool, and whole jobs are admitted through the
//!   device's FIFO [`pagani_device::FairGate`], sized to the worker count — so
//!   however many jobs are submitted, at most a pool's worth are in flight,
//!   and when jobs do queue they are admitted in the order they reached the
//!   gate: a stream of short jobs can never starve a long one that arrived
//!   first.
//! * **Buffer reuse.**  Each service worker owns a long-lived
//!   [`crate::ScratchArena`]; region lists, estimate arrays and classification
//!   masks are recycled across iterations and across the jobs that worker
//!   executes, instead of being reallocated each generation.
//! * **Per-job memory isolation.**  Each job runs against
//!   [`Device::isolated_memory_view`]: a fresh, full-capacity pool sharing the
//!   parent's workers.  Memory-pressure heuristics therefore see exactly what
//!   they would see if the job ran alone, which makes batch results
//!   **bit-identical** to running the same jobs sequentially — the invariant
//!   the batch determinism tests pin down.  A combined cross-job memory quota
//!   is an explicit non-goal of this engine (tracked on the roadmap).
//!
//! Because the runner drains a transient [`crate::IntegrationService`], batch
//! jobs also feed that service's measured [`crate::CostModel`] and show up in
//! its [`crate::ServiceMetrics`] while the batch runs — the batch engine gets
//! the observability of the serving stack for free.
//!
//! ```
//! use pagani_core::{integrate_batch, BatchJob, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let jobs = [
//!     BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1])),
//!     BatchJob::new(FnIntegrand::new(3, |x: &[f64]| x[0] * x[1] * x[2])),
//! ];
//! let device = Device::test_small();
//! let config = PaganiConfig::test_small(Tolerances::rel(1e-6));
//! let outputs = integrate_batch(&device, &config, &jobs);
//! assert!(outputs.iter().all(|o| o.result.converged()));
//! ```

use std::sync::Arc;
use std::time::Duration;

use pagani_device::Device;
use pagani_quadrature::{Integrand, Region};

use crate::config::PaganiConfig;
use crate::driver::PaganiOutput;
use crate::integrator::IntegratorFactory;
use crate::service::{IntegrationService, Priority};

/// One independent integration job: a shared integrand, the region to
/// integrate it over, and the scheduling attributes the service honours —
/// priority, an optional deadline, and an optional per-job method override.
///
/// Jobs own their integrand behind an [`Arc`] so they can be queued on a
/// service, carried across worker threads and cloned cheaply; wrap a value
/// with [`BatchJob::new`] or share an existing `Arc` with [`BatchJob::shared`].
#[derive(Clone)]
pub struct BatchJob {
    integrand: Arc<dyn Integrand + Send + Sync>,
    region: Region,
    priority: Priority,
    deadline: Option<Duration>,
    method: Option<Arc<dyn IntegratorFactory>>,
}

impl std::fmt::Debug for BatchJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchJob")
            .field("integrand", &self.integrand.name())
            .field("dim", &self.region.dim())
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field(
                "method",
                &self.method.as_deref().map(IntegratorFactory::method_name),
            )
            .finish()
    }
}

impl BatchJob {
    /// A job integrating `integrand` over its default bounds.
    #[must_use]
    pub fn new<F: Integrand + Send + Sync + 'static>(integrand: F) -> Self {
        Self::shared(Arc::new(integrand))
    }

    /// A job integrating an already-shared integrand over its default bounds.
    #[must_use]
    pub fn shared(integrand: Arc<dyn Integrand + Send + Sync>) -> Self {
        let (lo, hi) = integrand.default_bounds();
        let region = Region::new(lo, hi);
        Self {
            integrand,
            region,
            priority: Priority::Normal,
            deadline: None,
            method: None,
        }
    }

    /// Replace the integration region (defaults to the integrand's bounds).
    #[must_use]
    pub fn over(mut self, region: Region) -> Self {
        self.region = region;
        self
    }

    /// Set the scheduling priority (defaults to [`Priority::Normal`]).
    /// Higher-priority jobs are claimed first; equal priorities stay FIFO.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Give the job a deadline, measured from submission.  A job that has not
    /// completed when the deadline fires is cancelled cooperatively — it
    /// reports [`pagani_quadrature::Termination::Cancelled`] with whatever
    /// partial statistics it had accumulated, exactly as if
    /// [`crate::service::JobHandle::cancel`] had been called at that instant.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Override the integration method for this job.  The service builds the
    /// factory's integrator on the job's isolated device view when the job is
    /// claimed; jobs without an override run the service's default PAGANI
    /// configuration.  `MethodConfig` (in `pagani-baselines`) implements
    /// [`IntegratorFactory`], so any of the five methods can ride along.
    ///
    /// Override jobs go through the method-agnostic `Box<dyn Integrator>`
    /// path, which has two costs relative to the default path: the returned
    /// `PaganiOutput.trace` is always empty (the trait surface carries only
    /// an `IntegrationResult` — true even for a PAGANI override), and the
    /// run allocates fresh scratch instead of reusing the service worker's
    /// long-lived arena.  Jobs that need traces or arena reuse should use
    /// the service's default configuration rather than an override.
    #[must_use]
    pub fn with_method<M: IntegratorFactory + 'static>(self, method: M) -> Self {
        self.with_shared_method(Arc::new(method))
    }

    /// Override the integration method with an already-shared factory.
    #[must_use]
    pub fn with_shared_method(mut self, method: Arc<dyn IntegratorFactory>) -> Self {
        self.method = Some(method);
        self
    }

    /// The job's integrand.
    #[must_use]
    pub fn integrand(&self) -> &(dyn Integrand + Send + Sync) {
        self.integrand.as_ref()
    }

    /// The job's integration region.
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The job's scheduling priority.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The job's deadline, measured from submission, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The job's method override, if any.
    #[must_use]
    pub fn method(&self) -> Option<&Arc<dyn IntegratorFactory>> {
        self.method.as_ref()
    }
}

/// Runs batches of independent integration jobs concurrently on one device.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    device: Device,
    config: PaganiConfig,
    concurrency: usize,
}

impl BatchRunner {
    /// Create a runner on `device`; concurrency defaults to the device's
    /// effective worker count.
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        let concurrency = device.effective_workers();
        Self {
            device,
            config,
            concurrency,
        }
    }

    /// Override how many service workers pull jobs at once.  Values above the
    /// device's gate capacity are admitted FIFO by the gate, so raising this
    /// past the worker count cannot oversubscribe the device.
    #[must_use]
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// The device jobs run on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration applied to every job.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.config
    }

    /// Run every job and return their outputs in job order.
    ///
    /// Sugar over [`IntegrationService`]: every job is submitted to a
    /// transient service in slice order, then all handles are awaited and the
    /// service shut down.  Jobs run against memory-isolated views of the
    /// device with per-worker long-lived scratch arenas, so outputs are
    /// bit-identical to running the same jobs sequentially with
    /// [`crate::Pagani::integrate_region`] on the same device.
    ///
    /// # Panics
    /// Panics if a job's integrand and region dimensions differ (propagated
    /// from the driver).
    #[must_use]
    pub fn run(&self, jobs: &[BatchJob]) -> Vec<PaganiOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.concurrency.min(jobs.len()).max(1);
        let service =
            IntegrationService::with_workers(self.device.clone(), self.config.clone(), workers);
        let handles: Vec<_> = jobs.iter().map(|job| service.submit(job.clone())).collect();
        let outputs = handles.iter().map(|handle| handle.wait()).collect();
        service.shutdown();
        outputs
    }
}

/// Run `jobs` concurrently on `device` and return outputs in job order.
///
/// Convenience facade over [`BatchRunner`]; see the module docs for the
/// execution model.
#[must_use]
pub fn integrate_batch(
    device: &Device,
    config: &PaganiConfig,
    jobs: &[BatchJob],
) -> Vec<PaganiOutput> {
    BatchRunner::new(device.clone(), config.clone()).run(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::DeviceConfig;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn test_device(workers: usize) -> Device {
        Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(workers),
        )
    }

    #[test]
    fn outputs_arrive_in_job_order() {
        let jobs = [
            BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] + x[1] * x[1])),
            BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] * x[0] * x[0])),
            BatchJob::new(FnIntegrand::new(2, |_: &[f64]| 5.0)),
        ];
        let outputs = integrate_batch(
            &test_device(2),
            &PaganiConfig::test_small(Tolerances::rel(1e-8)),
            &jobs,
        );
        assert_eq!(outputs.len(), 3);
        assert!((outputs[0].result.estimate - 2.0 / 3.0).abs() < 1e-7);
        assert!((outputs[1].result.estimate - 0.25).abs() < 1e-7);
        assert!((outputs[2].result.estimate - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_empty() {
        let runner = BatchRunner::new(
            test_device(1),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
        );
        assert!(runner.run(&[]).is_empty());
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let f: Arc<dyn Integrand + Send + Sync> = Arc::new(PaperIntegrand::f4(3));
        let jobs: Vec<BatchJob> = (0..9).map(|_| BatchJob::shared(Arc::clone(&f))).collect();
        let runner = BatchRunner::new(
            test_device(2),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
        )
        .with_concurrency(4);
        let outputs = runner.run(&jobs);
        assert_eq!(outputs.len(), 9);
        assert!(outputs.iter().all(|o| o.result.converged()));
        // All nine jobs ran the same problem: identical to the last bit.
        let first = outputs[0].result.estimate.to_bits();
        assert!(outputs.iter().all(|o| o.result.estimate.to_bits() == first));
    }

    #[test]
    fn explicit_region_jobs_are_honoured() {
        let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]))
            .over(Region::new(vec![0.0, 0.0], vec![2.0, 1.0]));
        let outputs = integrate_batch(
            &test_device(1),
            &PaganiConfig::test_small(Tolerances::rel(1e-8)),
            &[job],
        );
        // ∫∫ (x + y) over [0,2]×[0,1] = 2 + 1 = 3.
        assert!((outputs[0].result.estimate - 3.0).abs() < 1e-7);
    }

    #[test]
    fn batch_leaves_the_parent_pool_untouched() {
        let device = test_device(2);
        let f: Arc<dyn Integrand + Send + Sync> = Arc::new(PaperIntegrand::f4(3));
        let jobs = [BatchJob::shared(Arc::clone(&f)), BatchJob::shared(f)];
        let _ = integrate_batch(
            &device,
            &PaganiConfig::test_small(Tolerances::rel(1e-3)),
            &jobs,
        );
        assert_eq!(
            device.memory().usage().used,
            0,
            "jobs allocate only from their isolated views"
        );
    }
}
