//! The asynchronous integration service: `submit(job) → handle`.
//!
//! [`crate::integrate_batch`] answers a *fixed slice* of jobs and blocks until
//! the last one finishes — the shape of an offline benchmark, not of a service
//! answering traffic.  An [`IntegrationService`] keeps a pool of resident
//! worker threads fed from a FIFO submission queue, so callers
//!
//! * **submit** jobs at any time and get a [`JobHandle`] back immediately,
//! * **poll** ([`JobHandle::try_result`]) or **block** ([`JobHandle::wait`])
//!   for completion,
//! * **cancel** ([`JobHandle::cancel`]) a job cooperatively — a queued job is
//!   retired before it starts, an in-flight job observes the flag at its next
//!   iteration boundary and stops within one driver iteration, and a job
//!   waiting in the device's admission line abandons its ticket; every case
//!   reports [`Termination::Cancelled`],
//! * **shut down** ([`IntegrationService::shutdown`]) gracefully: no new
//!   submissions (the call consumes the service), every already-submitted job
//!   drains, workers are joined.
//!
//! Execution reuses the batch engine's machinery unchanged: each worker owns a
//! long-lived [`ScratchArena`], whole jobs are admitted through the device's
//! FIFO [`pagani_device::FairGate`], and every job runs against
//! [`Device::isolated_memory_view`].  Completed results are therefore
//! **bit-identical** to running the same jobs sequentially through
//! [`Pagani::integrate`] — the batch determinism guarantee carries over to the
//! service, and `integrate_batch` itself is now submit-all-then-wait sugar on
//! top of this queue.
//!
//! ```
//! use pagani_core::{BatchJob, IntegrationService, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let service = IntegrationService::new(
//!     Device::test_small(),
//!     PaganiConfig::test_small(Tolerances::rel(1e-6)),
//! );
//! let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
//! let handle = service.submit(job);
//! let output = handle.wait();
//! assert!(output.result.converged());
//! service.shutdown();
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use pagani_device::Device;
use pagani_quadrature::{IntegrationResult, Termination};

use crate::arena::ScratchArena;
use crate::batch::BatchJob;
use crate::config::PaganiConfig;
use crate::driver::{CancelToken, Pagani, PaganiOutput};
use crate::trace::ExecutionTrace;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a job ended: normally, or by panicking on its worker.
#[derive(Debug, Clone)]
enum JobOutcome {
    Finished(PaganiOutput),
    /// The job panicked; the captured message is re-raised on the thread that
    /// polls or waits for the handle, mirroring what `std::thread::scope`
    /// (the pre-service batch substrate) did.  The worker itself survives.
    Panicked(String),
}

/// Completion state shared between a [`JobHandle`] and the worker running (or
/// retiring) its job.
#[derive(Debug)]
struct JobState {
    cancel: CancelToken,
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl JobState {
    fn new() -> Self {
        Self {
            cancel: CancelToken::new(),
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, outcome: JobOutcome) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "a job completes exactly once");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "integration job panicked".to_owned()
    }
}

fn unwrap_outcome(outcome: JobOutcome) -> PaganiOutput {
    match outcome {
        JobOutcome::Finished(output) => output,
        JobOutcome::Panicked(message) => panic!("{message}"),
    }
}

/// The caller's side of one submitted job.
///
/// Waiting, polling and cancelling all go through shared state, so a handle
/// stays valid after the service that issued it has been shut down (the job
/// will have drained by then).
#[derive(Debug)]
pub struct JobHandle {
    state: Arc<JobState>,
    device: Device,
}

impl JobHandle {
    /// The job's result if it has completed, without blocking.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn try_result(&self) -> Option<PaganiOutput> {
        lock(&self.state.slot).clone().map(unwrap_outcome)
    }

    /// Whether the job has completed (including cancelled completions).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock(&self.state.slot).is_some()
    }

    /// Block until the job completes and return its output.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn wait(&self) -> PaganiOutput {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return unwrap_outcome(outcome.clone());
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Request cooperative cancellation.
    ///
    /// Idempotent and racy by design: a job that completes before the request
    /// lands keeps its result, everything else — queued, waiting at the
    /// device's admission gate, or mid-run — terminates with
    /// [`Termination::Cancelled`] within one driver iteration, leaving other
    /// jobs untouched.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
        // Wake any worker parked in the device's admission line so it
        // re-checks the cancellation predicate.
        self.device.submission_gate().notify_waiters();
    }

    /// Whether cancellation has been requested (not whether it won the race).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.state.cancel.is_cancelled()
    }
}

#[derive(Debug)]
struct QueuedJob {
    job: BatchJob,
    state: Arc<JobState>,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutting_down: bool,
}

#[derive(Debug)]
struct ServiceShared {
    device: Device,
    config: PaganiConfig,
    queue: Mutex<QueueState>,
    work: Condvar,
}

/// A resident pool of integration workers fed from a FIFO submission queue.
///
/// See the [module docs](crate::service) for the execution model and the
/// determinism guarantee.
#[derive(Debug)]
pub struct IntegrationService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl IntegrationService {
    /// Start a service on `device`; the worker count defaults to the device's
    /// effective worker-pool width (more service workers than that buy no
    /// extra parallelism — the admission gate bounds in-flight jobs anyway).
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        let workers = device.effective_workers();
        Self::with_workers(device, config, workers)
    }

    /// Start a service with an explicit worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(device: Device, config: PaganiConfig, workers: usize) -> Self {
        let shared = Arc::new(ServiceShared {
            device,
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pagani-service-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a service worker thread failed")
            })
            .collect();
        Self { shared, workers }
    }

    /// The device jobs run on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.shared.device
    }

    /// The configuration applied to every job.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.shared.config
    }

    /// Number of resident worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted jobs not yet claimed by a worker.
    #[must_use]
    pub fn queued_jobs(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Enqueue `job` and return its handle immediately.
    ///
    /// Jobs are claimed in submission order; completed results are
    /// bit-identical to running the same job alone through
    /// [`Pagani::integrate_region`] on this device.
    #[must_use]
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        let state = Arc::new(JobState::new());
        {
            let mut queue = lock(&self.shared.queue);
            queue.jobs.push_back(QueuedJob {
                job,
                state: Arc::clone(&state),
            });
        }
        self.shared.work.notify_one();
        JobHandle {
            state,
            device: self.shared.device.clone(),
        }
    }

    /// Graceful shutdown: consume the service, let every already-submitted
    /// job drain, and join the workers.  Handles issued before the call
    /// remain valid — their jobs complete (or report cancellation) before
    /// this returns.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for IntegrationService {
    fn drop(&mut self) {
        self.finish();
    }
}

fn worker_loop(shared: &ServiceShared) {
    // One arena per worker: scratch storage recycles across every job this
    // worker executes, exactly as in the batch engine.
    let arena = ScratchArena::new();
    loop {
        let claimed = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutting_down {
                    break None;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(QueuedJob { job, state }) = claimed else {
            return;
        };
        // A panicking job must neither kill this worker nor strand its
        // waiters: capture the payload and re-raise it handle-side.  The
        // shared state touched during the unwind is panic-safe — the arena
        // shelves only value-transparent scratch storage and the job's
        // isolated device view is discarded wholesale.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &arena, &job, &state.cancel)
        }));
        state.complete(match outcome {
            Ok(output) => JobOutcome::Finished(output),
            Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
        });
    }
}

fn run_job(
    shared: &ServiceShared,
    arena: &ScratchArena,
    job: &BatchJob,
    cancel: &CancelToken,
) -> PaganiOutput {
    if cancel.is_cancelled() {
        return cancelled_before_start();
    }
    let Some(_permit) = shared
        .device
        .submission_gate()
        .acquire_unless(|| cancel.is_cancelled())
    else {
        return cancelled_before_start();
    };
    let view = shared.device.isolated_memory_view();
    let pagani = Pagani::new(view, shared.config.clone());
    pagani.integrate_region_with(job.integrand(), job.region(), arena, cancel)
}

/// The output of a job cancelled before its first driver iteration.
fn cancelled_before_start() -> PaganiOutput {
    PaganiOutput {
        result: IntegrationResult {
            estimate: 0.0,
            error_estimate: f64::INFINITY,
            termination: Termination::Cancelled,
            iterations: 0,
            function_evaluations: 0,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: Duration::ZERO,
        },
        trace: ExecutionTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::DeviceConfig;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn service(workers: usize) -> IntegrationService {
        let device = Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(workers),
        );
        IntegrationService::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)))
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = service(2);
        let handle = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        let output = handle.wait();
        assert!(output.result.converged());
        assert!(handle.is_finished());
        assert_eq!(
            handle.try_result().unwrap().result.estimate.to_bits(),
            output.result.estimate.to_bits()
        );
        service.shutdown();
    }

    #[test]
    fn try_result_is_none_until_completion() {
        let service = service(1);
        // No workers are free yet for the second job while the first runs, so
        // its try_result is None at submission time.
        let first = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        let second = service.submit(BatchJob::new(PaperIntegrand::f3(3)));
        assert!(second.try_result().is_none() || second.is_finished());
        assert!(first.wait().result.converged());
        assert!(second.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn handles_outlive_the_service() {
        let service = service(2);
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| service.submit(BatchJob::new(PaperIntegrand::f4(3))))
            .collect();
        service.shutdown();
        for handle in &handles {
            assert!(handle.wait().result.converged());
        }
    }

    #[test]
    fn drop_drains_like_shutdown() {
        let handle = {
            let service = service(1);
            service.submit(BatchJob::new(PaperIntegrand::f3(3)))
            // Service dropped here without an explicit shutdown.
        };
        assert!(handle.wait().result.converged());
    }

    #[test]
    fn panicking_job_propagates_at_the_handle_and_spares_the_worker() {
        let service = service(1);
        // Dimension mismatch panics inside the driver, on the worker thread.
        let bad = BatchJob::new(FnIntegrand::new(2, |_: &[f64]| 1.0))
            .over(pagani_quadrature::Region::unit_cube(3));
        let poisoned = service.submit(bad);
        let healthy = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        // The worker survived the panic and served the next job...
        assert!(healthy.wait().result.converged());
        // ...and the panic surfaces on whoever waits on the poisoned handle.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
        let payload = caught.expect_err("the job's panic must re-raise at wait()");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("dimensions differ"),
            "unexpected panic message: {message}"
        );
        service.shutdown();
    }

    #[test]
    fn cancelled_queued_job_never_runs() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::clone(&gate);
        // A blocker that parks the single worker until we release it.
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            while !release.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = service(1);
        let running = service.submit(BatchJob::new(blocker));
        let queued = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        queued.cancel();
        gate.store(true, std::sync::atomic::Ordering::Release);
        let cancelled = queued.wait();
        assert_eq!(cancelled.result.termination, Termination::Cancelled);
        assert_eq!(cancelled.result.function_evaluations, 0);
        assert!(running.wait().result.converged());
        service.shutdown();
    }
}
