//! The scheduling service: `submit(job) → handle`, with per-job method
//! selection, priorities, deadlines and backpressure.
//!
//! [`crate::integrate_batch`] answers a *fixed slice* of jobs and blocks until
//! the last one finishes — the shape of an offline benchmark, not of a service
//! answering traffic.  An [`IntegrationService`] keeps a pool of resident
//! worker threads fed from one submission queue, so callers
//!
//! * **submit** jobs at any time and get a [`JobHandle`] back immediately,
//!   choosing a method per job ([`crate::BatchJob::with_method`] routes the
//!   job through any `Box<dyn Integrator>` — all five methods share this one
//!   queue), a [`Priority`] and a deadline,
//! * **apply backpressure** — a [`ServicePolicy`] queue bound makes
//!   [`IntegrationService::try_submit`] refuse with
//!   [`Rejected::QueueFull`] instead of queueing without limit (blocking
//!   [`IntegrationService::submit`] waits for space instead),
//! * **admit on measured feasibility** — `try_submit` also refuses a
//!   deadline-carrying job with [`Rejected::DeadlineInfeasible`] when the
//!   service's measured [`CostModel`] predicts the job cannot finish inside
//!   its deadline at the current backlog
//!   ([`IntegrationService::estimated_completion`]); a cold model admits
//!   optimistically until real work has been measured,
//! * **observe** ([`IntegrationService::metrics`]) a [`ServiceMetrics`]
//!   snapshot: queue depth, per-priority wait percentiles,
//!   reject/deadline-miss/cancel counters, the outstanding predicted
//!   backlog and the lane's EWMA of cost-prediction error,
//! * **poll** ([`JobHandle::try_result`]) or **block** ([`JobHandle::wait`])
//!   for completion,
//! * **cancel** ([`JobHandle::cancel`]) a job cooperatively — a queued job is
//!   retired before it starts, an in-flight job observes the flag at its next
//!   checkpoint (driver iteration, heap pop or sampling round, whatever the
//!   method), and a job waiting in the device's admission line abandons its
//!   ticket; every case reports [`Termination::Cancelled`].  Deadlines are
//!   exactly this cancellation driven by a timer,
//! * **shut down** ([`IntegrationService::shutdown`]) gracefully: no new
//!   submissions (the call consumes the service), every already-submitted job
//!   drains, workers are joined.
//!
//! Scheduling order: the queue is a priority queue — higher [`Priority`]
//! first, submission order within a priority level.  Because every job runs
//! against its own [`Device::isolated_memory_view`], claim order is pure
//! scheduling: it can never change any job's *result*, so the priority queue
//! does not weaken the bit-identity guarantee below.
//!
//! Execution reuses the batch engine's machinery unchanged: each worker owns a
//! long-lived [`ScratchArena`], whole jobs are admitted through the device's
//! FIFO [`pagani_device::FairGate`], and every job runs against
//! [`Device::isolated_memory_view`].  Completed results are therefore
//! **bit-identical** to running the same jobs sequentially through
//! [`Pagani::integrate`] — the batch determinism guarantee carries over to the
//! service, and `integrate_batch` itself is now submit-all-then-wait sugar on
//! top of this queue.
//!
//! ```
//! use pagani_core::{BatchJob, IntegrationService, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let service = IntegrationService::new(
//!     Device::test_small(),
//!     PaganiConfig::test_small(Tolerances::rel(1e-6)),
//! );
//! let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
//! let handle = service.submit(job);
//! let output = handle.wait();
//! assert!(output.result.converged());
//! service.shutdown();
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pagani_device::Device;
use pagani_persist::{CacheKey, CachedResult, ResultCache, Snapshot, WarmStartInfo};
use pagani_quadrature::{IntegrationResult, Termination, Tolerances};

use crate::arena::ScratchArena;
use crate::batch::BatchJob;
use crate::config::PaganiConfig;
use crate::cost::{cost_ceiling, CostKey, CostModel, Ewma};
use crate::driver::{CancelToken, Pagani, PaganiOutput};
use crate::trace::ExecutionTrace;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling priority of a job: higher priorities are claimed first, equal
/// priorities stay in submission (FIFO) order.
///
/// Priorities only reorder *claims* — every job runs against an isolated
/// memory view, so claim order never changes any job's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: claimed only when nothing more urgent is queued.
    Low,
    /// The default for every job.
    #[default]
    Normal,
    /// Latency-sensitive work: claimed before everything else.
    High,
}

/// Service-level scheduling policy: queue bound and worker count.
///
/// The default policy is an unbounded queue with one service worker per
/// device worker — exactly the pre-policy service behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServicePolicy {
    /// Maximum number of submitted-but-unclaimed jobs.  When the queue is at
    /// the bound, [`IntegrationService::try_submit`] returns
    /// [`Rejected::QueueFull`] and [`IntegrationService::submit`] blocks
    /// until a worker frees a slot.  `None` (the default) never refuses a
    /// submission.
    pub queue_bound: Option<usize>,
    /// Number of resident worker threads; `None` (the default) uses the
    /// device's effective worker-pool width.
    pub workers: Option<usize>,
}

impl ServicePolicy {
    /// The default policy: unbounded queue, device-sized worker pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the submission queue at `bound` unclaimed jobs (minimum 1).
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound.max(1));
        self
    }

    /// Use an explicit worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }
}

/// A submission was refused because the queue is at its
/// [`ServicePolicy::queue_bound`].  Carries the rejected job back so the
/// caller can retry, downgrade or shed it.
#[derive(Debug)]
pub struct QueueFull {
    /// The bound the queue is at.
    pub bound: usize,
    /// The rejected job, returned unmodified.
    pub job: BatchJob,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission queue is at its bound of {} unclaimed job(s)",
            self.bound
        )
    }
}

impl std::error::Error for QueueFull {}

/// A submission was refused because the job's deadline is infeasible: the
/// measured cost model predicts the job would complete at `estimated` from
/// now (current backlog included), which is later than its `deadline`.
/// Carries the rejected job back so the caller can relax the deadline, retry
/// elsewhere or shed it.
#[derive(Debug)]
pub struct DeadlineInfeasible {
    /// Predicted completion time from now, per
    /// [`IntegrationService::estimated_completion`].
    pub estimated: Duration,
    /// The deadline the job carried.
    pub deadline: Duration,
    /// The rejected job, returned unmodified.
    pub job: BatchJob,
}

impl std::fmt::Display for DeadlineInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadline of {:?} is infeasible: predicted completion in {:?} at the current backlog",
            self.deadline, self.estimated
        )
    }
}

impl std::error::Error for DeadlineInfeasible {}

/// Why [`IntegrationService::try_submit`] refused a submission.  Both
/// variants hand the job back unmodified; [`ServiceMetrics`] counts them
/// separately.  (The payloads are boxed so the `Result`'s happy path stays
/// small — rejection is the cold path.)
#[derive(Debug)]
pub enum Rejected {
    /// The queue is at its [`ServicePolicy::queue_bound`] — capacity, not
    /// feasibility: retrying after a worker frees a slot can succeed.
    QueueFull(Box<QueueFull>),
    /// The job's deadline cannot be met at the current backlog according to
    /// the measured cost model — retrying immediately will fail again;
    /// relax the deadline, shed the job, or submit it elsewhere.
    DeadlineInfeasible(Box<DeadlineInfeasible>),
}

impl Rejected {
    /// The rejected job, borrowed.
    #[must_use]
    pub fn job(&self) -> &BatchJob {
        match self {
            Self::QueueFull(refused) => &refused.job,
            Self::DeadlineInfeasible(refused) => &refused.job,
        }
    }

    /// Take the rejected job back for resubmission.
    #[must_use]
    pub fn into_job(self) -> BatchJob {
        match self {
            Self::QueueFull(refused) => refused.job,
            Self::DeadlineInfeasible(refused) => refused.job,
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull(refused) => refused.fmt(f),
            Self::DeadlineInfeasible(refused) => refused.fmt(f),
        }
    }
}

impl std::error::Error for Rejected {}

/// Wait-time statistics for one [`Priority`] level: time from submission to
/// a worker claiming the job.  Percentiles are computed over a sliding
/// window of the most recent waits (the window is an implementation detail;
/// `count` and `max` cover the service's whole lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Jobs of this priority claimed so far.
    pub count: u64,
    /// Median wait over the recent window.
    pub p50: Duration,
    /// 90th-percentile wait over the recent window.
    pub p90: Duration,
    /// Longest wait ever observed.
    pub max: Duration,
}

/// A point-in-time observability snapshot of one service (one *lane* of a
/// [`crate::MultiDeviceService`]), from [`IntegrationService::metrics`].
///
/// Counters are monotone over the service's lifetime; `queue_depth` and
/// `outstanding_predicted` are instantaneous.  Snapshots are cheap (a few
/// mutex acquisitions) and safe to poll from a dashboard loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Submitted-but-unclaimed jobs right now.
    pub queue_depth: usize,
    /// Jobs ever enqueued (rejected submissions are *not* counted here).
    pub submitted: u64,
    /// Jobs completed (including cancelled completions).
    pub completed: u64,
    /// Completed jobs that reported [`Termination::Cancelled`] — explicit
    /// cancels, queued sheds and deadline misses alike.
    pub cancelled: u64,
    /// `try_submit` refusals with [`Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// `try_submit` refusals with [`Rejected::DeadlineInfeasible`].
    pub rejected_deadline_infeasible: u64,
    /// Deadlines that fired while their job was still incomplete.
    pub deadline_misses: u64,
    /// Predicted wall time of all enqueued-or-running jobs (the admission
    /// backlog), per the lane's [`CostModel`]; zero while the model is cold.
    pub outstanding_predicted: Duration,
    /// EWMA of this lane's relative cost-prediction error
    /// `|actual − predicted| / predicted`, or `None` before the first
    /// predicted-and-measured completion.
    pub prediction_error_ewma: Option<f64>,
    /// Per-priority wait statistics, indexed `[Low, Normal, High]` — use
    /// [`ServiceMetrics::wait`] for by-priority access.
    pub waits: [WaitStats; 3],
    /// Jobs served straight from the [`ResultCache`] without touching a
    /// device (always 0 on a cache-less service).
    pub cache_hits: u64,
    /// Cache-enabled jobs that found no exact result and went to a device.
    pub cache_misses: u64,
    /// Jobs that warm-started from a cached snapshot instead of starting
    /// from the root region.
    pub warm_starts: u64,
    /// Warm starts whose snapshot came from a *partial* (non-converged) run —
    /// the crash/shed-recovery path.
    pub resumed: u64,
    /// Snapshots persisted into the cache (converged trees and partial trees
    /// from cancelled or memory-exhausted runs alike).
    pub checkpoints_written: u64,
    /// Integrand evaluations avoided via the cache: the full cost of every
    /// exact hit plus the banked evaluations inherited by every warm start.
    pub evals_saved: u64,
    /// Jobs dispatched over the wire to a remote worker (always 0 on the
    /// in-process services; counted by [`crate::remote::DistributedService`]).
    pub remote_dispatched: u64,
    /// Jobs requeued onto a surviving remote worker after the connection that
    /// held them died.
    pub remote_requeued: u64,
    /// Heartbeat acknowledgements received from remote workers.
    pub remote_heartbeats: u64,
}

impl ServiceMetrics {
    /// Wait statistics for `priority`.
    #[must_use]
    pub fn wait(&self, priority: Priority) -> WaitStats {
        self.waits[priority as usize]
    }

    /// Total refusals across both [`Rejected`] variants.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_deadline_infeasible
    }
}

/// Sliding window size for wait percentiles.
const WAIT_WINDOW: usize = 512;

/// Rolling wait-time record for one priority level.
#[derive(Debug, Default)]
pub(crate) struct WaitReservoir {
    recent: VecDeque<Duration>,
    count: u64,
    max: Duration,
}

impl WaitReservoir {
    fn record(&mut self, wait: Duration) {
        if self.recent.len() == WAIT_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(wait);
        self.count += 1;
        self.max = self.max.max(wait);
    }

    fn stats(&self) -> WaitStats {
        let mut sorted: Vec<Duration> = self.recent.iter().copied().collect();
        sorted.sort_unstable();
        let percentile = |q_num: usize, q_den: usize| -> Duration {
            if sorted.is_empty() {
                Duration::ZERO
            } else {
                sorted[(sorted.len() - 1) * q_num / q_den]
            }
        };
        WaitStats {
            count: self.count,
            p50: percentile(1, 2),
            p90: percentile(9, 10),
            max: self.max,
        }
    }
}

/// Shared observability state: monotone counters, the outstanding
/// predicted-time ledger that deadline admission reads, per-priority wait
/// reservoirs and the lane's prediction-error EWMA.  The remote front-end
/// ([`crate::remote::DistributedService`]) reuses this same state so local
/// and distributed metrics share one vocabulary.
#[derive(Debug)]
pub(crate) struct Observability {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_deadline_infeasible: AtomicU64,
    pub(crate) deadline_misses: AtomicU64,
    /// Sum of the predicted-duration charges (whole microseconds) of every
    /// enqueued-or-running job.  Charges are integer-valued and bounded by
    /// [`cost_ceiling`], so charge/retire cycles cancel exactly.
    pub(crate) outstanding_micros: Mutex<f64>,
    pub(crate) prediction_error: Mutex<Ewma>,
    pub(crate) waits: Mutex<[WaitReservoir; 3]>,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) warm_starts: AtomicU64,
    pub(crate) resumed: AtomicU64,
    pub(crate) checkpoints_written: AtomicU64,
    pub(crate) evals_saved: AtomicU64,
    pub(crate) remote_dispatched: AtomicU64,
    pub(crate) remote_requeued: AtomicU64,
    pub(crate) remote_heartbeats: AtomicU64,
}

impl Observability {
    pub(crate) fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline_infeasible: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            outstanding_micros: Mutex::new(0.0),
            prediction_error: Mutex::new(Ewma::new(CostModel::DEFAULT_ALPHA)),
            waits: Mutex::new([
                WaitReservoir::default(),
                WaitReservoir::default(),
                WaitReservoir::default(),
            ]),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            evals_saved: AtomicU64::new(0),
            remote_dispatched: AtomicU64::new(0),
            remote_requeued: AtomicU64::new(0),
            remote_heartbeats: AtomicU64::new(0),
        }
    }

    /// Render the counters as a [`ServiceMetrics`] snapshot.
    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServiceMetrics {
        let outstanding_micros = *lock(&self.outstanding_micros);
        let waits = lock(&self.waits);
        ServiceMetrics {
            queue_depth,
            submitted: self.submitted.load(AtomicOrdering::Relaxed),
            completed: self.completed.load(AtomicOrdering::Relaxed),
            cancelled: self.cancelled.load(AtomicOrdering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(AtomicOrdering::Relaxed),
            rejected_deadline_infeasible: self
                .rejected_deadline_infeasible
                .load(AtomicOrdering::Relaxed),
            deadline_misses: self.deadline_misses.load(AtomicOrdering::Relaxed),
            outstanding_predicted: Duration::from_secs_f64(outstanding_micros.max(0.0) / 1e6),
            prediction_error_ewma: lock(&self.prediction_error).value(),
            waits: [waits[0].stats(), waits[1].stats(), waits[2].stats()],
            cache_hits: self.cache_hits.load(AtomicOrdering::Relaxed),
            cache_misses: self.cache_misses.load(AtomicOrdering::Relaxed),
            warm_starts: self.warm_starts.load(AtomicOrdering::Relaxed),
            resumed: self.resumed.load(AtomicOrdering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(AtomicOrdering::Relaxed),
            evals_saved: self.evals_saved.load(AtomicOrdering::Relaxed),
            remote_dispatched: self.remote_dispatched.load(AtomicOrdering::Relaxed),
            remote_requeued: self.remote_requeued.load(AtomicOrdering::Relaxed),
            remote_heartbeats: self.remote_heartbeats.load(AtomicOrdering::Relaxed),
        }
    }
}

/// How a job ended: normally, or by panicking on its worker.
#[derive(Debug, Clone)]
pub(crate) enum JobOutcome {
    Finished(PaganiOutput),
    /// The job panicked; the captured message is re-raised on the thread that
    /// polls or waits for the handle, mirroring what `std::thread::scope`
    /// (the pre-service batch substrate) did.  The worker itself survives.
    Panicked(String),
}

/// Completion state shared between a [`JobHandle`] and the worker running (or
/// retiring) its job.  The slab-splitting coordinator and the distributed
/// front-end publish into the same state, so their handles behave exactly
/// like local ones.
#[derive(Debug)]
pub(crate) struct JobState {
    pub(crate) cancel: CancelToken,
    pub(crate) slot: Mutex<Option<JobOutcome>>,
    pub(crate) done: Condvar,
}

impl JobState {
    pub(crate) fn new() -> Self {
        Self {
            cancel: CancelToken::new(),
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, outcome: JobOutcome) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "a job completes exactly once");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "integration job panicked".to_owned()
    }
}

fn unwrap_outcome(outcome: JobOutcome) -> PaganiOutput {
    match outcome {
        JobOutcome::Finished(output) => output,
        JobOutcome::Panicked(message) => panic!("{message}"),
    }
}

/// The caller's side of one submitted job.
///
/// Waiting, polling and cancelling all go through shared state, so a handle
/// stays valid after the service that issued it has been shut down (the job
/// will have drained by then).  Handles are cheaply cloneable; every clone
/// observes the same completion and shares the same cancellation flag.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
    /// The device whose admission gate must be woken on cancel — present for
    /// locally-executing jobs, absent for remote and composite handles.
    device: Option<Device>,
    /// Extra cancel propagation: slab-split parents cancel their children
    /// here, the distributed front-end forwards a cancel frame.
    on_cancel: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("state", &self.state)
            .field("device", &self.device)
            .field("has_cancel_hook", &self.on_cancel.is_some())
            .finish()
    }
}

impl JobHandle {
    /// A handle for a job running on a local service: cancelling it also
    /// wakes the device's admission line.
    pub(crate) fn local(state: Arc<JobState>, device: Device) -> Self {
        Self {
            state,
            device: Some(device),
            on_cancel: None,
        }
    }

    /// A handle whose job executes elsewhere (a remote worker, or a set of
    /// slab children); `on_cancel` carries the propagation.
    pub(crate) fn detached(
        state: Arc<JobState>,
        on_cancel: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> Self {
        Self {
            state,
            device: None,
            on_cancel,
        }
    }

    /// The job's result if it has completed, without blocking.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn try_result(&self) -> Option<PaganiOutput> {
        lock(&self.state.slot).clone().map(unwrap_outcome)
    }

    /// Whether the job has completed (including cancelled completions).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock(&self.state.slot).is_some()
    }

    /// Block until the job completes and return its output.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn wait(&self) -> PaganiOutput {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return unwrap_outcome(outcome.clone());
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Request cooperative cancellation.
    ///
    /// Idempotent and racy by design: a job that completes before the request
    /// lands keeps its result, everything else — queued, waiting at the
    /// device's admission gate, or mid-run — terminates with
    /// [`Termination::Cancelled`] within one driver iteration, leaving other
    /// jobs untouched.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
        // Wake any worker parked in the device's admission line so it
        // re-checks the cancellation predicate.
        if let Some(device) = &self.device {
            device.submission_gate().notify_waiters();
        }
        // Propagate: cancel slab children / forward the cancel over the wire.
        if let Some(hook) = &self.on_cancel {
            hook();
        }
    }

    /// Whether cancellation has been requested (not whether it won the race).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.state.cancel.is_cancelled()
    }
}

/// A completion hook, run on the worker after the job's outcome is published
/// (the multi-device dispatcher uses it to retire the job's estimated cost).
pub(crate) type CompletionHook = Box<dyn FnOnce() + Send>;

struct QueuedJob {
    job: BatchJob,
    state: Arc<JobState>,
    priority: Priority,
    /// Submission sequence number; breaks priority ties FIFO.
    seq: u64,
    /// When the job entered the queue; claim time minus this is the wait
    /// recorded in [`ServiceMetrics`].
    enqueued_at: Instant,
    /// What this job charged to the outstanding-predicted ledger at enqueue
    /// (whole microseconds, `0.0` while the model was cold) — retired at
    /// exactly this value on completion.
    charge_micros: f64,
    /// The model's time prediction at enqueue, compared against the measured
    /// wall time to update the prediction-error EWMA.
    predicted: Option<Duration>,
    on_complete: Option<CompletionHook>,
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("job", &self.job)
            .field("priority", &self.priority)
            .field("seq", &self.seq)
            .finish()
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then *lower* sequence number (FIFO
        // within a priority level).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct QueueState {
    jobs: BinaryHeap<QueuedJob>,
    next_seq: u64,
    shutting_down: bool,
}

/// One armed deadline: when `at` passes, the job behind `state` is cancelled
/// (if it has not completed first — cancellation of a completed job is a
/// no-op by the cancel-race rule).
#[derive(Debug)]
struct DeadlineEntry {
    at: Instant,
    seq: u64,
    state: Weak<JobState>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Default)]
struct DeadlineState {
    /// Min-heap of armed deadlines (via `Reverse`).
    armed: BinaryHeap<Reverse<DeadlineEntry>>,
    shutting_down: bool,
}

#[derive(Debug)]
struct ServiceShared {
    device: Device,
    config: PaganiConfig,
    policy: ServicePolicy,
    worker_count: usize,
    cost_model: Arc<CostModel>,
    /// Shared result/snapshot cache; `None` (the default) disables all cache
    /// and persistence behaviour, leaving the historical job path untouched.
    cache: Option<Arc<ResultCache>>,
    obs: Observability,
    queue: Mutex<QueueState>,
    /// Wakes workers when a job is queued (or shutdown begins).
    work: Condvar,
    /// Wakes bounded-queue submitters when a worker frees a slot.
    space: Condvar,
    deadlines: Mutex<DeadlineState>,
    /// Wakes the deadline watcher when an earlier deadline is armed (or
    /// shutdown begins).
    deadline_changed: Condvar,
}

/// A resident pool of integration workers fed from one priority submission
/// queue, with per-job method selection, deadlines and backpressure.
///
/// See the [module docs](crate::service) for the execution model and the
/// determinism guarantee.
#[derive(Debug)]
pub struct IntegrationService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
    /// The deadline watcher, spawned lazily on the first deadline job so
    /// deadline-free services (the batch engine's transient ones above all)
    /// never pay for it.
    deadline_watcher: Mutex<Option<JoinHandle<()>>>,
}

impl IntegrationService {
    /// Start a service on `device`; the worker count defaults to the device's
    /// effective worker-pool width (more service workers than that buy no
    /// extra parallelism — the admission gate bounds in-flight jobs anyway).
    ///
    /// Thin delegate of [`crate::ServiceBuilder`] — the one construction path
    /// all three service types share.
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        crate::ServiceBuilder::new(config).device(device).build()
    }

    /// Start a service with an explicit worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(device: Device, config: PaganiConfig, workers: usize) -> Self {
        crate::ServiceBuilder::new(config)
            .device(device)
            .workers(workers)
            .build()
    }

    /// Start a service with an explicit [`ServicePolicy`].
    #[must_use]
    pub fn with_policy(device: Device, config: PaganiConfig, policy: ServicePolicy) -> Self {
        crate::ServiceBuilder::new(config)
            .device(device)
            .policy(policy)
            .build()
    }

    /// Start a service backed by a shared [`ResultCache`].
    ///
    /// With a cache attached the default job path changes in three ways (all
    /// invisible to callers except in wall time and [`ServiceMetrics`]):
    ///
    /// 1. an **exact hit** — same integrand name, region and tolerance as a
    ///    cached converged run — is served without touching the device;
    /// 2. a **miss with a usable snapshot** for the same integrand and region
    ///    (any tolerance) *warm-starts* from that snapshot's region tree
    ///    instead of the root, provided the snapshot's frozen error leaves
    ///    headroom under this job's budget;
    /// 3. every run **persists** its final tree — converged trees for future
    ///    warm starts, partial trees from cancelled/deadline-shed runs so a
    ///    retry continues rather than recomputes.
    ///
    /// Deadline admission prices jobs by *remaining* work: an exact hit costs
    /// nothing, a feasible warm start costs its full prediction minus the
    /// snapshot's predicted-work credit.
    ///
    /// Cache identity is `Integrand::name()` — callers mixing distinct
    /// closures through one cached service must name them uniquely
    /// (`FnIntegrand::named`).  Jobs with a per-job method override bypass
    /// the cache entirely: the cache key cannot see the override's
    /// configuration.
    #[must_use]
    pub fn with_cache(
        device: Device,
        config: PaganiConfig,
        policy: ServicePolicy,
        cache: Arc<ResultCache>,
    ) -> Self {
        crate::ServiceBuilder::new(config)
            .device(device)
            .policy(policy)
            .cache(cache)
            .build()
    }

    /// Start a service sharing an externally owned [`CostModel`] (and
    /// optionally a [`ResultCache`]) — the multi-device dispatcher passes one
    /// of each to every lane so buckets pool their learning and results
    /// across devices.
    #[must_use]
    pub(crate) fn with_policy_and_model(
        device: Device,
        config: PaganiConfig,
        policy: ServicePolicy,
        cost_model: Arc<CostModel>,
        cache: Option<Arc<ResultCache>>,
    ) -> Self {
        let worker_count = policy
            .workers
            .unwrap_or_else(|| device.effective_workers())
            .max(1);
        let shared = Arc::new(ServiceShared {
            device,
            config,
            policy,
            worker_count,
            cost_model,
            cache,
            obs: Observability::new(),
            queue: Mutex::new(QueueState {
                jobs: BinaryHeap::new(),
                next_seq: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            deadlines: Mutex::new(DeadlineState::default()),
            deadline_changed: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pagani-service-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a service worker thread failed")
            })
            .collect();
        Self {
            shared,
            workers,
            deadline_watcher: Mutex::new(None),
        }
    }

    /// The device jobs run on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.shared.device
    }

    /// The default configuration applied to jobs without a method override.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.shared.config
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn policy(&self) -> ServicePolicy {
        self.shared.policy
    }

    /// Number of resident worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted jobs not yet claimed by a worker.
    #[must_use]
    pub fn queued_jobs(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Enqueue `job` and return its handle.
    ///
    /// On an unbounded queue this returns immediately; on a bounded queue it
    /// blocks until a worker frees a slot (use
    /// [`IntegrationService::try_submit`] for refuse-instead-of-wait
    /// backpressure).  Jobs are claimed highest-priority-first, FIFO within a
    /// priority level; completed results are bit-identical to running the
    /// same job alone through [`Pagani::integrate_region`] on this device.
    #[must_use]
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        self.submit_with_hook(job, None)
    }

    /// Enqueue `job` if it can be accepted, refusing with [`Rejected`] — the
    /// job handed back inside — otherwise.
    ///
    /// Two admission checks run, in order:
    ///
    /// 1. **Capacity** — a queue at the policy's
    ///    [`ServicePolicy::queue_bound`] refuses with
    ///    [`Rejected::QueueFull`].
    /// 2. **Feasibility** — a job carrying a deadline is refused with
    ///    [`Rejected::DeadlineInfeasible`] when the measured [`CostModel`]
    ///    predicts it cannot complete inside that deadline at the current
    ///    backlog ([`IntegrationService::estimated_completion`]).  A cold
    ///    model makes no prediction, so admission is optimistic until real
    ///    work has been measured; blocking [`IntegrationService::submit`]
    ///    never applies this check.
    ///
    /// This is the backpressure edge of the service: a front-end that would
    /// rather shed or redirect load than build an unbounded backlog calls
    /// this and handles the `Err`.
    ///
    /// ```
    /// use pagani_core::{BatchJob, IntegrationService, PaganiConfig, Rejected, ServicePolicy};
    /// use pagani_device::Device;
    /// use pagani_quadrature::{FnIntegrand, Tolerances};
    ///
    /// let service = IntegrationService::with_policy(
    ///     Device::test_small(),
    ///     PaganiConfig::test_small(Tolerances::rel(1e-6)),
    ///     ServicePolicy::new().with_queue_bound(4),
    /// );
    /// let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
    /// match service.try_submit(job) {
    ///     Ok(handle) => assert!(handle.wait().result.converged()),
    ///     Err(Rejected::QueueFull(refused)) => {
    ///         println!("queue full at {}, retry later", refused.bound);
    ///     }
    ///     Err(Rejected::DeadlineInfeasible(refused)) => {
    ///         println!("cannot finish in {:?}, shed it", refused.deadline);
    ///     }
    /// }
    /// service.shutdown();
    /// ```
    ///
    /// # Errors
    /// [`Rejected::QueueFull`] when the queue holds `queue_bound` unclaimed
    /// jobs; [`Rejected::DeadlineInfeasible`] when the job's deadline cannot
    /// be met.  An unbounded service with a cold cost model never errs.
    pub fn try_submit(&self, job: BatchJob) -> Result<JobHandle, Rejected> {
        self.try_submit_with_hook(job, None)
    }

    /// [`IntegrationService::try_submit`] with an optional completion hook
    /// (the multi-device dispatcher's cost-retirement callback).
    pub(crate) fn try_submit_with_hook(
        &self,
        job: BatchJob,
        on_complete: Option<CompletionHook>,
    ) -> Result<JobHandle, Rejected> {
        let queue = lock(&self.shared.queue);
        if let Some(bound) = self.shared.policy.queue_bound {
            if queue.jobs.len() >= bound {
                self.shared
                    .obs
                    .rejected_queue_full
                    .fetch_add(1, AtomicOrdering::Relaxed);
                return Err(Rejected::QueueFull(Box::new(QueueFull { bound, job })));
            }
        }
        if let Some(deadline) = job.deadline() {
            if let Some(estimated) = self.estimated_completion(&job) {
                if estimated > deadline {
                    self.shared
                        .obs
                        .rejected_deadline_infeasible
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    return Err(Rejected::DeadlineInfeasible(Box::new(DeadlineInfeasible {
                        estimated,
                        deadline,
                        job,
                    })));
                }
            }
        }
        Ok(self.enqueue(queue, job, on_complete))
    }

    /// Predicted completion time of `job` from now, were it submitted at the
    /// current backlog: the outstanding predicted work divided across the
    /// worker pool, plus the job's own predicted duration.  `None` while the
    /// [`CostModel`] is cold (no measured work yet) — exactly the cases where
    /// [`IntegrationService::try_submit`] admits optimistically.
    ///
    /// The backlog term is deliberately simple (it ignores priorities and
    /// in-flight progress); it errs on the pessimistic side under load, which
    /// is the right bias for an admission gate.
    /// With a [`ResultCache`] attached, the job's own term is priced by
    /// *remaining* work: zero for an exact hit, and prediction minus the
    /// cached snapshot's predicted-work credit for a feasible warm start.
    #[must_use]
    pub fn estimated_completion(&self, job: &BatchJob) -> Option<Duration> {
        let own = self.predicted_remaining(job)?;
        let outstanding_micros = *lock(&self.shared.obs.outstanding_micros);
        let backlog =
            Duration::from_secs_f64(outstanding_micros / 1e6 / self.shared.worker_count as f64);
        Some(backlog + own)
    }

    /// The job's predicted duration, discounted by what the cache already
    /// holds for it.  Uses non-bumping cache peeks so admission probes never
    /// perturb LRU eviction order.  `None` while the cost model is cold.
    fn predicted_remaining(&self, job: &BatchJob) -> Option<Duration> {
        let full = self
            .shared
            .cost_model
            .predict_job(job, self.shared.config.tolerances)?;
        let Some(cache) = &self.shared.cache else {
            return Some(full);
        };
        if job.method().is_some() {
            return Some(full);
        }
        let key = job_cache_key(&self.shared, job);
        if cache.contains_result(&key) {
            return Some(Duration::ZERO);
        }
        let info =
            cache.peek_warm_start(&key.integrand_id, &key.region_lo_bits, &key.region_hi_bits);
        if let Some(info) = info {
            if warm_info_feasible(&info, self.shared.config.tolerances) {
                // Work banked at the snapshot's own tolerance is work this job
                // will not redo.  Keep a 10% floor: resuming still re-runs the
                // snapshot's final generation and the tail of refinement.
                let banked = self.shared.cost_model.predict(&CostKey::new(
                    &key.integrand_id,
                    job.region().dim(),
                    Tolerances {
                        rel: info.rel_tol,
                        abs: info.abs_tol,
                    },
                ));
                if let Some(banked) = banked {
                    return Some(full.saturating_sub(banked).max(full / 10));
                }
            }
        }
        Some(full)
    }

    /// A point-in-time [`ServiceMetrics`] snapshot.
    ///
    /// ```
    /// use pagani_core::{BatchJob, IntegrationService, PaganiConfig, Priority};
    /// use pagani_device::Device;
    /// use pagani_quadrature::{FnIntegrand, Tolerances};
    ///
    /// let service = IntegrationService::new(
    ///     Device::test_small(),
    ///     PaganiConfig::test_small(Tolerances::rel(1e-6)),
    /// );
    /// let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
    /// service.submit(job).wait();
    ///
    /// let metrics = service.metrics();
    /// assert_eq!(metrics.submitted, 1);
    /// assert_eq!(metrics.completed, 1);
    /// assert_eq!(metrics.rejected(), 0);
    /// assert_eq!(metrics.wait(Priority::Normal).count, 1);
    /// service.shutdown();
    /// ```
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.obs.snapshot(self.queued_jobs())
    }

    /// The [`ResultCache`] this service serves from, when one is attached.
    #[must_use]
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared.cache.as_ref()
    }

    /// The measured [`CostModel`] this service learns into (and admits from).
    /// Seed it with [`CostModel::record`] to make admission decisions
    /// deterministic in tests, or inspect it to watch the model converge.
    ///
    /// ```
    /// use std::time::Duration;
    /// use pagani_core::{CostKey, IntegrationService, PaganiConfig};
    /// use pagani_device::Device;
    /// use pagani_quadrature::Tolerances;
    ///
    /// let service = IntegrationService::new(
    ///     Device::test_small(),
    ///     PaganiConfig::test_small(Tolerances::rel(1e-6)),
    /// );
    /// let key = CostKey::new("warmup", 2, Tolerances::rel(1e-6));
    /// service.cost_model().record(&key, Duration::from_millis(5));
    /// assert_eq!(service.cost_model().observations(), 1);
    /// service.shutdown();
    /// ```
    #[must_use]
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.shared.cost_model
    }

    /// Enqueue with an optional completion hook (the multi-device dispatcher
    /// uses the hook to retire the job's estimated cost).  Blocks while a
    /// bounded queue is full.
    pub(crate) fn submit_with_hook(
        &self,
        job: BatchJob,
        on_complete: Option<CompletionHook>,
    ) -> JobHandle {
        let mut queue = lock(&self.shared.queue);
        if let Some(bound) = self.shared.policy.queue_bound {
            while queue.jobs.len() >= bound && !queue.shutting_down {
                queue = self
                    .shared
                    .space
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.enqueue(queue, job, on_complete)
    }

    /// Push `job` onto the (already locked) queue, charge its predicted time
    /// to the outstanding ledger, arm its deadline and wake a worker.
    fn enqueue(
        &self,
        mut queue: MutexGuard<'_, QueueState>,
        job: BatchJob,
        on_complete: Option<CompletionHook>,
    ) -> JobHandle {
        let state = Arc::new(JobState::new());
        let priority = job.priority();
        let deadline = job.deadline();
        // Cache-discounted (lock order: queue → cache — the cache never takes
        // a service lock), so a warm-started job charges only its remaining
        // work to the admission ledger.
        let predicted = self.predicted_remaining(&job);
        // Whole microseconds in [0, cost_ceiling()] so charge/retire cycles
        // cancel exactly (see `cost_ceiling`); a cold model charges nothing.
        let charge_micros = predicted
            .map(|p| (p.as_secs_f64() * 1e6).round().clamp(0.0, cost_ceiling()))
            .unwrap_or(0.0);
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.jobs.push(QueuedJob {
            job,
            state: Arc::clone(&state),
            priority,
            seq,
            enqueued_at: Instant::now(),
            charge_micros,
            predicted,
            on_complete,
        });
        // Charge while still holding the queue lock (lock order: queue →
        // outstanding) so admission never observes a queued-but-uncharged job.
        *lock(&self.shared.obs.outstanding_micros) += charge_micros;
        self.shared
            .obs
            .submitted
            .fetch_add(1, AtomicOrdering::Relaxed);
        drop(queue);
        self.shared.work.notify_one();
        if let Some(deadline) = deadline {
            self.arm_deadline(Instant::now() + deadline, seq, &state);
        }
        JobHandle::local(state, self.shared.device.clone())
    }

    /// Register a deadline with the watcher thread, spawning it on first use.
    fn arm_deadline(&self, at: Instant, seq: u64, state: &Arc<JobState>) {
        {
            let mut deadlines = lock(&self.shared.deadlines);
            deadlines.armed.push(Reverse(DeadlineEntry {
                at,
                seq,
                state: Arc::downgrade(state),
            }));
        }
        self.shared.deadline_changed.notify_all();
        let mut watcher = lock(&self.deadline_watcher);
        if watcher.is_none() {
            let shared = Arc::clone(&self.shared);
            *watcher = Some(
                std::thread::Builder::new()
                    .name("pagani-deadline-watcher".to_owned())
                    .spawn(move || deadline_watcher_loop(&shared))
                    .expect("spawning the deadline watcher thread failed"),
            );
        }
    }

    /// Graceful shutdown: consume the service, let every already-submitted
    /// job drain, and join the workers.  Handles issued before the call
    /// remain valid — their jobs complete (or report cancellation) before
    /// this returns.  Deadlines keep firing while the queue drains.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone, so every job has completed; pending deadlines are
        // dead weight and the watcher can stop immediately.
        {
            let mut deadlines = lock(&self.shared.deadlines);
            deadlines.shutting_down = true;
            deadlines.armed.clear();
        }
        self.shared.deadline_changed.notify_all();
        if let Some(watcher) = lock(&self.deadline_watcher).take() {
            let _ = watcher.join();
        }
    }
}

impl Drop for IntegrationService {
    fn drop(&mut self) {
        self.finish();
    }
}

fn worker_loop(shared: &ServiceShared) {
    // One arena per worker: scratch storage recycles across every job this
    // worker executes, exactly as in the batch engine.
    let arena = ScratchArena::new();
    loop {
        let claimed = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop() {
                    break Some(job);
                }
                if queue.shutting_down {
                    break None;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(QueuedJob {
            job,
            state,
            priority,
            enqueued_at,
            charge_micros,
            predicted,
            on_complete,
            ..
        }) = claimed
        else {
            return;
        };
        // A slot just freed: wake one submitter parked on a bounded queue.
        shared.space.notify_one();
        lock(&shared.obs.waits)[priority as usize].record(enqueued_at.elapsed());
        // A panicking job must neither kill this worker nor strand its
        // waiters: capture the payload and re-raise it handle-side.  The
        // shared state touched during the unwind is panic-safe — the arena
        // shelves only value-transparent scratch storage and the job's
        // isolated device view is discarded wholesale.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &arena, &job, &state.cancel)
        }));
        // Retire the admission charge at exactly the value it was charged at
        // and feed the measurement back — all before the outcome publishes,
        // so anyone who observed the job as complete also observes its
        // accounting.
        *lock(&shared.obs.outstanding_micros) -= charge_micros;
        shared.obs.completed.fetch_add(1, AtomicOrdering::Relaxed);
        if let Ok((output, from_cache)) = &outcome {
            if output.result.termination == Termination::Cancelled {
                // A cancelled run's partial wall time would bias the model
                // low: count it, learn nothing from it.
                shared.obs.cancelled.fetch_add(1, AtomicOrdering::Relaxed);
            } else if *from_cache {
                // A cache hit's near-zero wall time says nothing about what
                // computing this bucket costs: count nothing into the model.
            } else {
                let wall_time = output.result.wall_time;
                shared
                    .cost_model
                    .record_job(&job, shared.config.tolerances, wall_time);
                if let Some(predicted) = predicted {
                    let p = predicted.as_secs_f64();
                    if p > 0.0 {
                        let error = (wall_time.as_secs_f64() - p).abs() / p;
                        lock(&shared.obs.prediction_error).observe(error);
                    }
                }
            }
        }
        // The hook runs before the outcome is published so that anyone who
        // observed the job as complete (via wait/try_result) also observes
        // its side effects — the multi-device dispatcher relies on the job's
        // estimated cost being retired by the time a wait() returns.
        if let Some(hook) = on_complete {
            hook();
        }
        state.complete(match outcome {
            Ok((output, _)) => JobOutcome::Finished(output),
            Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
        });
    }
}

/// Run one job, returning its output and whether it was served from the
/// cache (cache-served jobs must not feed the cost model).
fn run_job(
    shared: &ServiceShared,
    arena: &ScratchArena,
    job: &BatchJob,
    cancel: &CancelToken,
) -> (PaganiOutput, bool) {
    if cancel.is_cancelled() {
        return (cancelled_before_start(), false);
    }
    // Exact cache hit: served before the admission gate and before any
    // memory view exists, so a hit performs zero device launches.
    if job.method().is_none() {
        if let Some(cache) = &shared.cache {
            let key = job_cache_key(shared, job);
            if let Some(hit) = cache.lookup_result(&key) {
                shared.obs.cache_hits.fetch_add(1, AtomicOrdering::Relaxed);
                shared
                    .obs
                    .evals_saved
                    .fetch_add(hit.function_evaluations, AtomicOrdering::Relaxed);
                return (output_from_cached(&hit), true);
            }
            shared
                .obs
                .cache_misses
                .fetch_add(1, AtomicOrdering::Relaxed);
        }
    }
    let Some(_permit) = shared
        .device
        .submission_gate()
        .acquire_unless(|| cancel.is_cancelled())
    else {
        return (cancelled_before_start(), false);
    };
    let view = shared.device.isolated_memory_view();
    match job.method() {
        // Per-job method override: build the configured integrator on the
        // job's isolated view and route through the trait's cancellable entry
        // point.  Host-only methods simply ignore the view.  Overridden jobs
        // bypass the cache — the key cannot see the override's configuration.
        Some(factory) => {
            let integrator = factory.build(&view);
            let result =
                integrator.integrate_region_cancellable(job.integrand(), job.region(), cancel);
            (
                PaganiOutput {
                    result,
                    trace: ExecutionTrace::default(),
                },
                false,
            )
        }
        // Default path: the service's PAGANI configuration with the worker's
        // long-lived arena (bit-identical to the sequential single-shot API).
        None => {
            let pagani = Pagani::new(view, shared.config.clone());
            match &shared.cache {
                None => (
                    pagani.integrate_region_with(job.integrand(), job.region(), arena, cancel),
                    false,
                ),
                Some(cache) => (
                    run_cached_job(shared, cache, &pagani, arena, job, cancel),
                    false,
                ),
            }
        }
    }
}

/// The cache-enabled default path: warm-start from the best feasible
/// snapshot, fall back to a cold (but resumable) run, and persist whatever
/// the run learned — a converged result plus tree, or a partial tree.
fn run_cached_job(
    shared: &ServiceShared,
    cache: &ResultCache,
    pagani: &Pagani,
    arena: &ScratchArena,
    job: &BatchJob,
    cancel: &CancelToken,
) -> PaganiOutput {
    let key = job_cache_key(shared, job);
    let warm = cache
        .lookup_snapshot(&key.integrand_id, &key.region_lo_bits, &key.region_hi_bits)
        .filter(|snap| warm_start_feasible(snap, shared.config.tolerances));
    let resumable = match warm {
        Some(snapshot) => match pagani.resume_from(job.integrand(), &snapshot, arena, cancel) {
            Ok(out) => {
                shared.obs.warm_starts.fetch_add(1, AtomicOrdering::Relaxed);
                if !snapshot.converged {
                    shared.obs.resumed.fetch_add(1, AtomicOrdering::Relaxed);
                }
                shared
                    .obs
                    .evals_saved
                    .fetch_add(snapshot.function_evaluations, AtomicOrdering::Relaxed);
                out
            }
            // A snapshot this device cannot resume (it may be smaller than
            // the one that wrote it): fall back to a cold run.
            Err(_) => pagani.integrate_resumable(job.integrand(), job.region(), arena, cancel, 0),
        },
        None => pagani.integrate_resumable(job.integrand(), job.region(), arena, cancel, 0),
    };
    if let Some(snapshot) = resumable.final_snapshot {
        let converged = resumable.output.result.termination == Termination::Converged;
        let result = converged.then(|| cached_from_output(&resumable.output));
        cache.store(key, result, Some(snapshot));
        shared
            .obs
            .checkpoints_written
            .fetch_add(1, AtomicOrdering::Relaxed);
    }
    resumable.output
}

/// The cache key of a default-path job: integrand name, region corners and
/// the service-wide tolerances (per-job method overrides never reach the
/// cache).
fn job_cache_key(shared: &ServiceShared, job: &BatchJob) -> CacheKey {
    let tolerances = shared.config.tolerances;
    CacheKey::new(
        &job.integrand().name(),
        job.region().lo(),
        job.region().hi(),
        tolerances.rel,
        tolerances.abs,
    )
}

/// Whether a snapshot can still converge under `tolerances`: its frozen
/// finished error must leave at least half the allowed total error as
/// headroom for the regions still being refined.  A snapshot from a looser
/// run may have committed more error than a tighter budget allows — resuming
/// it could never converge, so such jobs run cold instead.
pub(crate) fn warm_start_feasible(snapshot: &Snapshot, tolerances: Tolerances) -> bool {
    let allowed = (snapshot.latest_estimate.abs() * tolerances.rel).max(tolerances.abs);
    snapshot.finished_error <= 0.5 * allowed
}

/// [`warm_start_feasible`] over the cache's non-bumping peek summary.
fn warm_info_feasible(info: &WarmStartInfo, tolerances: Tolerances) -> bool {
    let allowed = (info.latest_estimate.abs() * tolerances.rel).max(tolerances.abs);
    info.finished_error <= 0.5 * allowed
}

/// Rehydrate a cached converged result into a job output.  The trace is
/// empty and the wall time is the (near-zero) serving time, but estimate,
/// error and counters are exactly the original run's.
fn output_from_cached(hit: &CachedResult) -> PaganiOutput {
    PaganiOutput {
        result: IntegrationResult {
            estimate: hit.estimate,
            error_estimate: hit.error_estimate,
            termination: Termination::Converged,
            iterations: hit.iterations,
            function_evaluations: hit.function_evaluations,
            regions_generated: hit.regions_generated,
            active_regions_final: 0,
            wall_time: Duration::ZERO,
        },
        trace: ExecutionTrace::default(),
    }
}

/// The cacheable part of a converged output.
fn cached_from_output(output: &PaganiOutput) -> CachedResult {
    CachedResult {
        estimate: output.result.estimate,
        error_estimate: output.result.error_estimate,
        iterations: output.result.iterations,
        function_evaluations: output.result.function_evaluations,
        regions_generated: output.result.regions_generated,
    }
}

/// The deadline watcher: sleeps until the earliest armed deadline, then
/// cancels the job behind it (a no-op if the job already completed) and wakes
/// any worker parked in the device's admission line so the cancellation
/// predicate is re-checked.  Runs only on services that have seen at least
/// one deadline job.
fn deadline_watcher_loop(shared: &ServiceShared) {
    let mut deadlines = lock(&shared.deadlines);
    loop {
        let now = Instant::now();
        // Fire everything due.
        let mut fired = false;
        while let Some(Reverse(entry)) = deadlines.armed.peek() {
            if entry.at > now {
                break;
            }
            let Some(Reverse(entry)) = deadlines.armed.pop() else {
                break;
            };
            if let Some(state) = entry.state.upgrade() {
                // A deadline firing on a still-incomplete job is a miss; on a
                // completed job it is a no-op (cancel-race rule) and counts
                // for nothing.
                if lock(&state.slot).is_none() {
                    shared
                        .obs
                        .deadline_misses
                        .fetch_add(1, AtomicOrdering::Relaxed);
                }
                state.cancel.cancel();
                fired = true;
            }
        }
        if fired {
            // The gate mutex is only ever acquired after the deadline lock
            // (never the other way around), so notifying here cannot invert.
            shared.device.submission_gate().notify_waiters();
        }
        if deadlines.shutting_down {
            return;
        }
        deadlines = match deadlines.armed.peek() {
            Some(Reverse(entry)) => {
                let wait = entry.at.saturating_duration_since(Instant::now());
                shared
                    .deadline_changed
                    .wait_timeout(deadlines, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shared
                .deadline_changed
                .wait(deadlines)
                .unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// The output of a job cancelled before its first driver iteration.
pub(crate) fn cancelled_before_start() -> PaganiOutput {
    PaganiOutput {
        result: IntegrationResult {
            estimate: 0.0,
            error_estimate: f64::INFINITY,
            termination: Termination::Cancelled,
            iterations: 0,
            function_evaluations: 0,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: Duration::ZERO,
        },
        trace: ExecutionTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::DeviceConfig;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn service(workers: usize) -> IntegrationService {
        let device = Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(workers),
        );
        IntegrationService::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)))
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = service(2);
        let handle = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        let output = handle.wait();
        assert!(output.result.converged());
        assert!(handle.is_finished());
        assert_eq!(
            handle.try_result().unwrap().result.estimate.to_bits(),
            output.result.estimate.to_bits()
        );
        service.shutdown();
    }

    #[test]
    fn try_result_is_none_until_completion() {
        let service = service(1);
        // No workers are free yet for the second job while the first runs, so
        // its try_result is None at submission time.
        let first = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        let second = service.submit(BatchJob::new(PaperIntegrand::f3(3)));
        assert!(second.try_result().is_none() || second.is_finished());
        assert!(first.wait().result.converged());
        assert!(second.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn handles_outlive_the_service() {
        let service = service(2);
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| service.submit(BatchJob::new(PaperIntegrand::f4(3))))
            .collect();
        service.shutdown();
        for handle in &handles {
            assert!(handle.wait().result.converged());
        }
    }

    #[test]
    fn drop_drains_like_shutdown() {
        let handle = {
            let service = service(1);
            service.submit(BatchJob::new(PaperIntegrand::f3(3)))
            // Service dropped here without an explicit shutdown.
        };
        assert!(handle.wait().result.converged());
    }

    #[test]
    fn panicking_job_propagates_at_the_handle_and_spares_the_worker() {
        let service = service(1);
        // Dimension mismatch panics inside the driver, on the worker thread.
        let bad = BatchJob::new(FnIntegrand::new(2, |_: &[f64]| 1.0))
            .over(pagani_quadrature::Region::unit_cube(3));
        let poisoned = service.submit(bad);
        let healthy = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        // The worker survived the panic and served the next job...
        assert!(healthy.wait().result.converged());
        // ...and the panic surfaces on whoever waits on the poisoned handle.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
        let payload = caught.expect_err("the job's panic must re-raise at wait()");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("dimensions differ"),
            "unexpected panic message: {message}"
        );
        service.shutdown();
    }

    #[test]
    fn priority_orders_claims_within_the_queue() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex as StdMutex;
        // One worker, parked on a blocker; then one job per priority level,
        // low first.  Claim order must be High, Normal, Low despite the
        // submission order.
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let order: Arc<StdMutex<Vec<Priority>>> = Arc::new(StdMutex::new(Vec::new()));
        let probe = |p: Priority| {
            let order = Arc::clone(&order);
            FnIntegrand::new(2, move |_: &[f64]| {
                let mut order = order.lock().unwrap();
                if order.last() != Some(&p) {
                    order.push(p);
                }
                1.0
            })
        };
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            1,
        );
        let _running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let queued: Vec<JobHandle> = [Priority::Low, Priority::Normal, Priority::High]
            .into_iter()
            .map(|p| service.submit(BatchJob::new(probe(p)).with_priority(p)))
            .collect();
        release.store(true, Ordering::Release);
        for handle in &queued {
            assert!(handle.wait().result.converged());
        }
        service.shutdown();
        assert_eq!(
            *order.lock().unwrap(),
            vec![Priority::High, Priority::Normal, Priority::Low]
        );
    }

    #[test]
    fn try_submit_refuses_at_exactly_the_bound() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_policy(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            ServicePolicy::new().with_workers(1).with_queue_bound(2),
        );
        // The blocker is *claimed* (not queued) once the worker picks it up.
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let first = service.try_submit(BatchJob::new(PaperIntegrand::f4(3)));
        let second = service.try_submit(BatchJob::new(PaperIntegrand::f4(3)));
        assert!(first.is_ok() && second.is_ok());
        assert_eq!(service.queued_jobs(), 2);
        let refused = service
            .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
            .expect_err("the queue is at its bound");
        let Rejected::QueueFull(ref full) = refused else {
            panic!("expected QueueFull, got {refused:?}");
        };
        assert_eq!(full.bound, 2);
        assert_eq!(service.metrics().rejected_queue_full, 1);
        // The rejected job comes back intact and can be resubmitted once the
        // worker frees a slot.
        release.store(true, Ordering::Release);
        assert!(running.wait().result.converged());
        let mut job = refused.into_job();
        let retried = loop {
            match service.try_submit(job) {
                Ok(handle) => break handle,
                Err(still_full) => {
                    job = still_full.into_job();
                    std::thread::yield_now();
                }
            }
        };
        assert!(retried.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn blocking_submit_waits_for_space_on_a_bounded_queue() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_policy(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            ServicePolicy::new().with_workers(1).with_queue_bound(1),
        );
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Fill the single queue slot; the next blocking submit must park on
        // the space condvar instead of refusing or queueing past the bound.
        let queued = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        assert_eq!(service.queued_jobs(), 1);
        let unblocked = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let submitter = {
                let service = &service;
                let unblocked = Arc::clone(&unblocked);
                scope.spawn(move || {
                    let handle = service.submit(BatchJob::new(PaperIntegrand::f3(3)));
                    unblocked.store(true, Ordering::Release);
                    handle
                })
            };
            // The submitter stays parked while the queue is full.
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !unblocked.load(Ordering::Acquire),
                "submit returned although the queue was at its bound"
            );
            // Freeing the worker drains the queue and wakes the submitter.
            release.store(true, Ordering::Release);
            let late = submitter.join().expect("submitter thread panicked");
            assert!(unblocked.load(Ordering::Acquire));
            assert!(late.wait().result.converged());
        });
        assert!(running.wait().result.converged());
        assert!(queued.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn deadline_cancels_a_running_job_with_partial_stats() {
        // Every evaluation dawdles, so the run is still mid-flight when the
        // deadline fires; the cancellation lands at the next iteration
        // boundary with the partial counters intact.
        let slow = FnIntegrand::new(3, |x: &[f64]| {
            std::thread::sleep(Duration::from_micros(200));
            (x[0] * x[1] * x[2]).sin().mul_add(0.1, 1.0)
        });
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-12)),
            1,
        );
        let handle = service.submit(BatchJob::new(slow).with_deadline(Duration::from_millis(50)));
        let output = handle.wait();
        assert_eq!(output.result.termination, Termination::Cancelled);
        assert!(output.result.iterations >= 1, "cancel landed before work");
        assert!(output.result.function_evaluations > 0);
        assert!(output.result.estimate.is_finite());
        service.shutdown();
    }

    #[test]
    fn expired_deadline_on_a_queued_job_reports_cancelled() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-4)),
            1,
        );
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Queued behind the blocker with a deadline that fires while waiting.
        let doomed = service
            .submit(BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(80));
        release.store(true, Ordering::Release);
        let output = doomed.wait();
        assert_eq!(output.result.termination, Termination::Cancelled);
        assert_eq!(output.result.function_evaluations, 0, "doomed job ran");
        assert!(running.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn generous_deadlines_change_nothing() {
        let service = service(2);
        let plain = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        let with_deadline = service
            .submit(BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_secs(3600)));
        let a = plain.wait();
        let b = with_deadline.wait();
        assert!(a.result.converged() && b.result.converged());
        assert_eq!(a.result.estimate.to_bits(), b.result.estimate.to_bits());
        service.shutdown();
    }

    #[test]
    fn cancelled_queued_job_never_runs() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::clone(&gate);
        // A blocker that parks the single worker until we release it.
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            while !release.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = service(1);
        let running = service.submit(BatchJob::new(blocker));
        let queued = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        queued.cancel();
        gate.store(true, std::sync::atomic::Ordering::Release);
        let cancelled = queued.wait();
        assert_eq!(cancelled.result.termination, Termination::Cancelled);
        assert_eq!(cancelled.result.function_evaluations, 0);
        assert!(running.wait().result.converged());
        service.shutdown();
    }
}
