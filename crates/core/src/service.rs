//! The scheduling service: `submit(job) → handle`, with per-job method
//! selection, priorities, deadlines and backpressure.
//!
//! [`crate::integrate_batch`] answers a *fixed slice* of jobs and blocks until
//! the last one finishes — the shape of an offline benchmark, not of a service
//! answering traffic.  An [`IntegrationService`] keeps a pool of resident
//! worker threads fed from one submission queue, so callers
//!
//! * **submit** jobs at any time and get a [`JobHandle`] back immediately,
//!   choosing a method per job ([`crate::BatchJob::with_method`] routes the
//!   job through any `Box<dyn Integrator>` — all five methods share this one
//!   queue), a [`Priority`] and a deadline,
//! * **apply backpressure** — a [`ServicePolicy`] queue bound makes
//!   [`IntegrationService::try_submit`] refuse with [`QueueFull`] instead of
//!   queueing without limit (blocking [`IntegrationService::submit`] waits
//!   for space instead),
//! * **poll** ([`JobHandle::try_result`]) or **block** ([`JobHandle::wait`])
//!   for completion,
//! * **cancel** ([`JobHandle::cancel`]) a job cooperatively — a queued job is
//!   retired before it starts, an in-flight job observes the flag at its next
//!   checkpoint (driver iteration, heap pop or sampling round, whatever the
//!   method), and a job waiting in the device's admission line abandons its
//!   ticket; every case reports [`Termination::Cancelled`].  Deadlines are
//!   exactly this cancellation driven by a timer,
//! * **shut down** ([`IntegrationService::shutdown`]) gracefully: no new
//!   submissions (the call consumes the service), every already-submitted job
//!   drains, workers are joined.
//!
//! Scheduling order: the queue is a priority queue — higher [`Priority`]
//! first, submission order within a priority level.  Because every job runs
//! against its own [`Device::isolated_memory_view`], claim order is pure
//! scheduling: it can never change any job's *result*, so the priority queue
//! does not weaken the bit-identity guarantee below.
//!
//! Execution reuses the batch engine's machinery unchanged: each worker owns a
//! long-lived [`ScratchArena`], whole jobs are admitted through the device's
//! FIFO [`pagani_device::FairGate`], and every job runs against
//! [`Device::isolated_memory_view`].  Completed results are therefore
//! **bit-identical** to running the same jobs sequentially through
//! [`Pagani::integrate`] — the batch determinism guarantee carries over to the
//! service, and `integrate_batch` itself is now submit-all-then-wait sugar on
//! top of this queue.
//!
//! ```
//! use pagani_core::{BatchJob, IntegrationService, PaganiConfig};
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let service = IntegrationService::new(
//!     Device::test_small(),
//!     PaganiConfig::test_small(Tolerances::rel(1e-6)),
//! );
//! let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
//! let handle = service.submit(job);
//! let output = handle.wait();
//! assert!(output.result.converged());
//! service.shutdown();
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pagani_device::Device;
use pagani_quadrature::{IntegrationResult, Termination};

use crate::arena::ScratchArena;
use crate::batch::BatchJob;
use crate::config::PaganiConfig;
use crate::driver::{CancelToken, Pagani, PaganiOutput};
use crate::trace::ExecutionTrace;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling priority of a job: higher priorities are claimed first, equal
/// priorities stay in submission (FIFO) order.
///
/// Priorities only reorder *claims* — every job runs against an isolated
/// memory view, so claim order never changes any job's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: claimed only when nothing more urgent is queued.
    Low,
    /// The default for every job.
    #[default]
    Normal,
    /// Latency-sensitive work: claimed before everything else.
    High,
}

/// Service-level scheduling policy: queue bound and worker count.
///
/// The default policy is an unbounded queue with one service worker per
/// device worker — exactly the pre-policy service behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServicePolicy {
    /// Maximum number of submitted-but-unclaimed jobs.  When the queue is at
    /// the bound, [`IntegrationService::try_submit`] returns [`QueueFull`]
    /// and [`IntegrationService::submit`] blocks until a worker frees a slot.
    /// `None` (the default) never refuses a submission.
    pub queue_bound: Option<usize>,
    /// Number of resident worker threads; `None` (the default) uses the
    /// device's effective worker-pool width.
    pub workers: Option<usize>,
}

impl ServicePolicy {
    /// The default policy: unbounded queue, device-sized worker pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the submission queue at `bound` unclaimed jobs (minimum 1).
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound.max(1));
        self
    }

    /// Use an explicit worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }
}

/// A submission was refused because the queue is at its
/// [`ServicePolicy::queue_bound`].  Carries the rejected job back so the
/// caller can retry, downgrade or shed it.
#[derive(Debug)]
pub struct QueueFull {
    /// The bound the queue is at.
    pub bound: usize,
    /// The rejected job, returned unmodified.
    pub job: BatchJob,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission queue is at its bound of {} unclaimed job(s)",
            self.bound
        )
    }
}

impl std::error::Error for QueueFull {}

/// How a job ended: normally, or by panicking on its worker.
#[derive(Debug, Clone)]
enum JobOutcome {
    Finished(PaganiOutput),
    /// The job panicked; the captured message is re-raised on the thread that
    /// polls or waits for the handle, mirroring what `std::thread::scope`
    /// (the pre-service batch substrate) did.  The worker itself survives.
    Panicked(String),
}

/// Completion state shared between a [`JobHandle`] and the worker running (or
/// retiring) its job.
#[derive(Debug)]
struct JobState {
    cancel: CancelToken,
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl JobState {
    fn new() -> Self {
        Self {
            cancel: CancelToken::new(),
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, outcome: JobOutcome) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "a job completes exactly once");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "integration job panicked".to_owned()
    }
}

fn unwrap_outcome(outcome: JobOutcome) -> PaganiOutput {
    match outcome {
        JobOutcome::Finished(output) => output,
        JobOutcome::Panicked(message) => panic!("{message}"),
    }
}

/// The caller's side of one submitted job.
///
/// Waiting, polling and cancelling all go through shared state, so a handle
/// stays valid after the service that issued it has been shut down (the job
/// will have drained by then).
#[derive(Debug)]
pub struct JobHandle {
    state: Arc<JobState>,
    device: Device,
}

impl JobHandle {
    /// The job's result if it has completed, without blocking.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn try_result(&self) -> Option<PaganiOutput> {
        lock(&self.state.slot).clone().map(unwrap_outcome)
    }

    /// Whether the job has completed (including cancelled completions).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock(&self.state.slot).is_some()
    }

    /// Block until the job completes and return its output.
    ///
    /// # Panics
    /// Re-raises the job's panic if the job panicked on its worker.
    #[must_use]
    pub fn wait(&self) -> PaganiOutput {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return unwrap_outcome(outcome.clone());
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Request cooperative cancellation.
    ///
    /// Idempotent and racy by design: a job that completes before the request
    /// lands keeps its result, everything else — queued, waiting at the
    /// device's admission gate, or mid-run — terminates with
    /// [`Termination::Cancelled`] within one driver iteration, leaving other
    /// jobs untouched.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
        // Wake any worker parked in the device's admission line so it
        // re-checks the cancellation predicate.
        self.device.submission_gate().notify_waiters();
    }

    /// Whether cancellation has been requested (not whether it won the race).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.state.cancel.is_cancelled()
    }
}

/// A completion hook, run on the worker after the job's outcome is published
/// (the multi-device dispatcher uses it to retire the job's estimated cost).
type CompletionHook = Box<dyn FnOnce() + Send>;

struct QueuedJob {
    job: BatchJob,
    state: Arc<JobState>,
    priority: Priority,
    /// Submission sequence number; breaks priority ties FIFO.
    seq: u64,
    on_complete: Option<CompletionHook>,
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("job", &self.job)
            .field("priority", &self.priority)
            .field("seq", &self.seq)
            .finish()
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then *lower* sequence number (FIFO
        // within a priority level).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct QueueState {
    jobs: BinaryHeap<QueuedJob>,
    next_seq: u64,
    shutting_down: bool,
}

/// One armed deadline: when `at` passes, the job behind `state` is cancelled
/// (if it has not completed first — cancellation of a completed job is a
/// no-op by the cancel-race rule).
#[derive(Debug)]
struct DeadlineEntry {
    at: Instant,
    seq: u64,
    state: Weak<JobState>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Default)]
struct DeadlineState {
    /// Min-heap of armed deadlines (via `Reverse`).
    armed: BinaryHeap<Reverse<DeadlineEntry>>,
    shutting_down: bool,
}

#[derive(Debug)]
struct ServiceShared {
    device: Device,
    config: PaganiConfig,
    policy: ServicePolicy,
    queue: Mutex<QueueState>,
    /// Wakes workers when a job is queued (or shutdown begins).
    work: Condvar,
    /// Wakes bounded-queue submitters when a worker frees a slot.
    space: Condvar,
    deadlines: Mutex<DeadlineState>,
    /// Wakes the deadline watcher when an earlier deadline is armed (or
    /// shutdown begins).
    deadline_changed: Condvar,
}

/// A resident pool of integration workers fed from one priority submission
/// queue, with per-job method selection, deadlines and backpressure.
///
/// See the [module docs](crate::service) for the execution model and the
/// determinism guarantee.
#[derive(Debug)]
pub struct IntegrationService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
    /// The deadline watcher, spawned lazily on the first deadline job so
    /// deadline-free services (the batch engine's transient ones above all)
    /// never pay for it.
    deadline_watcher: Mutex<Option<JoinHandle<()>>>,
}

impl IntegrationService {
    /// Start a service on `device`; the worker count defaults to the device's
    /// effective worker-pool width (more service workers than that buy no
    /// extra parallelism — the admission gate bounds in-flight jobs anyway).
    #[must_use]
    pub fn new(device: Device, config: PaganiConfig) -> Self {
        Self::with_policy(device, config, ServicePolicy::default())
    }

    /// Start a service with an explicit worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(device: Device, config: PaganiConfig, workers: usize) -> Self {
        Self::with_policy(
            device,
            config,
            ServicePolicy::default().with_workers(workers),
        )
    }

    /// Start a service with an explicit [`ServicePolicy`].
    #[must_use]
    pub fn with_policy(device: Device, config: PaganiConfig, policy: ServicePolicy) -> Self {
        let worker_count = policy.workers.unwrap_or_else(|| device.effective_workers());
        let shared = Arc::new(ServiceShared {
            device,
            config,
            policy,
            queue: Mutex::new(QueueState {
                jobs: BinaryHeap::new(),
                next_seq: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            deadlines: Mutex::new(DeadlineState::default()),
            deadline_changed: Condvar::new(),
        });
        let workers = (0..worker_count.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pagani-service-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a service worker thread failed")
            })
            .collect();
        Self {
            shared,
            workers,
            deadline_watcher: Mutex::new(None),
        }
    }

    /// The device jobs run on.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.shared.device
    }

    /// The default configuration applied to jobs without a method override.
    #[must_use]
    pub fn config(&self) -> &PaganiConfig {
        &self.shared.config
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn policy(&self) -> ServicePolicy {
        self.shared.policy
    }

    /// Number of resident worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted jobs not yet claimed by a worker.
    #[must_use]
    pub fn queued_jobs(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Enqueue `job` and return its handle.
    ///
    /// On an unbounded queue this returns immediately; on a bounded queue it
    /// blocks until a worker frees a slot (use
    /// [`IntegrationService::try_submit`] for refuse-instead-of-wait
    /// backpressure).  Jobs are claimed highest-priority-first, FIFO within a
    /// priority level; completed results are bit-identical to running the
    /// same job alone through [`Pagani::integrate_region`] on this device.
    #[must_use]
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        self.submit_with_hook(job, None)
    }

    /// Enqueue `job` if the queue has room, refusing with [`QueueFull`] —
    /// the job handed back inside — when it is at the policy's bound.
    ///
    /// This is the backpressure edge of the service: a front-end that would
    /// rather shed or redirect load than build an unbounded backlog calls
    /// this and handles the `Err`.
    ///
    /// ```
    /// use pagani_core::{BatchJob, IntegrationService, PaganiConfig, ServicePolicy};
    /// use pagani_device::Device;
    /// use pagani_quadrature::{FnIntegrand, Tolerances};
    ///
    /// let service = IntegrationService::with_policy(
    ///     Device::test_small(),
    ///     PaganiConfig::test_small(Tolerances::rel(1e-6)),
    ///     ServicePolicy::new().with_queue_bound(4),
    /// );
    /// let job = BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]));
    /// match service.try_submit(job) {
    ///     Ok(handle) => assert!(handle.wait().result.converged()),
    ///     Err(refused) => println!("queue full at {}, retry later", refused.bound),
    /// }
    /// service.shutdown();
    /// ```
    ///
    /// # Errors
    /// Returns [`QueueFull`] when the queue holds `queue_bound` unclaimed
    /// jobs.  An unbounded service never errs.
    pub fn try_submit(&self, job: BatchJob) -> Result<JobHandle, QueueFull> {
        if let Some(bound) = self.shared.policy.queue_bound {
            let queue = lock(&self.shared.queue);
            if queue.jobs.len() >= bound {
                return Err(QueueFull { bound, job });
            }
            return Ok(self.enqueue(queue, job, None));
        }
        Ok(self.submit(job))
    }

    /// Enqueue with an optional completion hook (the multi-device dispatcher
    /// uses the hook to retire the job's estimated cost).  Blocks while a
    /// bounded queue is full.
    pub(crate) fn submit_with_hook(
        &self,
        job: BatchJob,
        on_complete: Option<CompletionHook>,
    ) -> JobHandle {
        let mut queue = lock(&self.shared.queue);
        if let Some(bound) = self.shared.policy.queue_bound {
            while queue.jobs.len() >= bound && !queue.shutting_down {
                queue = self
                    .shared
                    .space
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.enqueue(queue, job, on_complete)
    }

    /// Push `job` onto the (already locked) queue, arm its deadline and wake
    /// a worker.
    fn enqueue(
        &self,
        mut queue: MutexGuard<'_, QueueState>,
        job: BatchJob,
        on_complete: Option<CompletionHook>,
    ) -> JobHandle {
        let state = Arc::new(JobState::new());
        let priority = job.priority();
        let deadline = job.deadline();
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.jobs.push(QueuedJob {
            job,
            state: Arc::clone(&state),
            priority,
            seq,
            on_complete,
        });
        drop(queue);
        self.shared.work.notify_one();
        if let Some(deadline) = deadline {
            self.arm_deadline(Instant::now() + deadline, seq, &state);
        }
        JobHandle {
            state,
            device: self.shared.device.clone(),
        }
    }

    /// Register a deadline with the watcher thread, spawning it on first use.
    fn arm_deadline(&self, at: Instant, seq: u64, state: &Arc<JobState>) {
        {
            let mut deadlines = lock(&self.shared.deadlines);
            deadlines.armed.push(Reverse(DeadlineEntry {
                at,
                seq,
                state: Arc::downgrade(state),
            }));
        }
        self.shared.deadline_changed.notify_all();
        let mut watcher = lock(&self.deadline_watcher);
        if watcher.is_none() {
            let shared = Arc::clone(&self.shared);
            *watcher = Some(
                std::thread::Builder::new()
                    .name("pagani-deadline-watcher".to_owned())
                    .spawn(move || deadline_watcher_loop(&shared))
                    .expect("spawning the deadline watcher thread failed"),
            );
        }
    }

    /// Graceful shutdown: consume the service, let every already-submitted
    /// job drain, and join the workers.  Handles issued before the call
    /// remain valid — their jobs complete (or report cancellation) before
    /// this returns.  Deadlines keep firing while the queue drains.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone, so every job has completed; pending deadlines are
        // dead weight and the watcher can stop immediately.
        {
            let mut deadlines = lock(&self.shared.deadlines);
            deadlines.shutting_down = true;
            deadlines.armed.clear();
        }
        self.shared.deadline_changed.notify_all();
        if let Some(watcher) = lock(&self.deadline_watcher).take() {
            let _ = watcher.join();
        }
    }
}

impl Drop for IntegrationService {
    fn drop(&mut self) {
        self.finish();
    }
}

fn worker_loop(shared: &ServiceShared) {
    // One arena per worker: scratch storage recycles across every job this
    // worker executes, exactly as in the batch engine.
    let arena = ScratchArena::new();
    loop {
        let claimed = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop() {
                    break Some(job);
                }
                if queue.shutting_down {
                    break None;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(QueuedJob {
            job,
            state,
            on_complete,
            ..
        }) = claimed
        else {
            return;
        };
        // A slot just freed: wake one submitter parked on a bounded queue.
        shared.space.notify_one();
        // A panicking job must neither kill this worker nor strand its
        // waiters: capture the payload and re-raise it handle-side.  The
        // shared state touched during the unwind is panic-safe — the arena
        // shelves only value-transparent scratch storage and the job's
        // isolated device view is discarded wholesale.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &arena, &job, &state.cancel)
        }));
        // The hook runs before the outcome is published so that anyone who
        // observed the job as complete (via wait/try_result) also observes
        // its side effects — the multi-device dispatcher relies on the job's
        // estimated cost being retired by the time a wait() returns.
        if let Some(hook) = on_complete {
            hook();
        }
        state.complete(match outcome {
            Ok(output) => JobOutcome::Finished(output),
            Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
        });
    }
}

fn run_job(
    shared: &ServiceShared,
    arena: &ScratchArena,
    job: &BatchJob,
    cancel: &CancelToken,
) -> PaganiOutput {
    if cancel.is_cancelled() {
        return cancelled_before_start();
    }
    let Some(_permit) = shared
        .device
        .submission_gate()
        .acquire_unless(|| cancel.is_cancelled())
    else {
        return cancelled_before_start();
    };
    let view = shared.device.isolated_memory_view();
    match job.method() {
        // Per-job method override: build the configured integrator on the
        // job's isolated view and route through the trait's cancellable entry
        // point.  Host-only methods simply ignore the view.
        Some(factory) => {
            let integrator = factory.build(&view);
            let result =
                integrator.integrate_region_cancellable(job.integrand(), job.region(), cancel);
            PaganiOutput {
                result,
                trace: ExecutionTrace::default(),
            }
        }
        // Default path: the service's PAGANI configuration with the worker's
        // long-lived arena (bit-identical to the sequential single-shot API).
        None => {
            let pagani = Pagani::new(view, shared.config.clone());
            pagani.integrate_region_with(job.integrand(), job.region(), arena, cancel)
        }
    }
}

/// The deadline watcher: sleeps until the earliest armed deadline, then
/// cancels the job behind it (a no-op if the job already completed) and wakes
/// any worker parked in the device's admission line so the cancellation
/// predicate is re-checked.  Runs only on services that have seen at least
/// one deadline job.
fn deadline_watcher_loop(shared: &ServiceShared) {
    let mut deadlines = lock(&shared.deadlines);
    loop {
        let now = Instant::now();
        // Fire everything due.
        let mut fired = false;
        while let Some(Reverse(entry)) = deadlines.armed.peek() {
            if entry.at > now {
                break;
            }
            let Some(Reverse(entry)) = deadlines.armed.pop() else {
                break;
            };
            if let Some(state) = entry.state.upgrade() {
                state.cancel.cancel();
                fired = true;
            }
        }
        if fired {
            // The gate mutex is only ever acquired after the deadline lock
            // (never the other way around), so notifying here cannot invert.
            shared.device.submission_gate().notify_waiters();
        }
        if deadlines.shutting_down {
            return;
        }
        deadlines = match deadlines.armed.peek() {
            Some(Reverse(entry)) => {
                let wait = entry.at.saturating_duration_since(Instant::now());
                shared
                    .deadline_changed
                    .wait_timeout(deadlines, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shared
                .deadline_changed
                .wait(deadlines)
                .unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// The output of a job cancelled before its first driver iteration.
fn cancelled_before_start() -> PaganiOutput {
    PaganiOutput {
        result: IntegrationResult {
            estimate: 0.0,
            error_estimate: f64::INFINITY,
            termination: Termination::Cancelled,
            iterations: 0,
            function_evaluations: 0,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: Duration::ZERO,
        },
        trace: ExecutionTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::DeviceConfig;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::{FnIntegrand, Tolerances};

    fn service(workers: usize) -> IntegrationService {
        let device = Device::new(
            DeviceConfig::test_small()
                .with_memory_capacity(32 << 20)
                .with_worker_threads(workers),
        );
        IntegrationService::new(device, PaganiConfig::test_small(Tolerances::rel(1e-4)))
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = service(2);
        let handle = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        let output = handle.wait();
        assert!(output.result.converged());
        assert!(handle.is_finished());
        assert_eq!(
            handle.try_result().unwrap().result.estimate.to_bits(),
            output.result.estimate.to_bits()
        );
        service.shutdown();
    }

    #[test]
    fn try_result_is_none_until_completion() {
        let service = service(1);
        // No workers are free yet for the second job while the first runs, so
        // its try_result is None at submission time.
        let first = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        let second = service.submit(BatchJob::new(PaperIntegrand::f3(3)));
        assert!(second.try_result().is_none() || second.is_finished());
        assert!(first.wait().result.converged());
        assert!(second.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn handles_outlive_the_service() {
        let service = service(2);
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| service.submit(BatchJob::new(PaperIntegrand::f4(3))))
            .collect();
        service.shutdown();
        for handle in &handles {
            assert!(handle.wait().result.converged());
        }
    }

    #[test]
    fn drop_drains_like_shutdown() {
        let handle = {
            let service = service(1);
            service.submit(BatchJob::new(PaperIntegrand::f3(3)))
            // Service dropped here without an explicit shutdown.
        };
        assert!(handle.wait().result.converged());
    }

    #[test]
    fn panicking_job_propagates_at_the_handle_and_spares_the_worker() {
        let service = service(1);
        // Dimension mismatch panics inside the driver, on the worker thread.
        let bad = BatchJob::new(FnIntegrand::new(2, |_: &[f64]| 1.0))
            .over(pagani_quadrature::Region::unit_cube(3));
        let poisoned = service.submit(bad);
        let healthy = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        // The worker survived the panic and served the next job...
        assert!(healthy.wait().result.converged());
        // ...and the panic surfaces on whoever waits on the poisoned handle.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
        let payload = caught.expect_err("the job's panic must re-raise at wait()");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("dimensions differ"),
            "unexpected panic message: {message}"
        );
        service.shutdown();
    }

    #[test]
    fn priority_orders_claims_within_the_queue() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex as StdMutex;
        // One worker, parked on a blocker; then one job per priority level,
        // low first.  Claim order must be High, Normal, Low despite the
        // submission order.
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let order: Arc<StdMutex<Vec<Priority>>> = Arc::new(StdMutex::new(Vec::new()));
        let probe = |p: Priority| {
            let order = Arc::clone(&order);
            FnIntegrand::new(2, move |_: &[f64]| {
                let mut order = order.lock().unwrap();
                if order.last() != Some(&p) {
                    order.push(p);
                }
                1.0
            })
        };
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            1,
        );
        let _running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let queued: Vec<JobHandle> = [Priority::Low, Priority::Normal, Priority::High]
            .into_iter()
            .map(|p| service.submit(BatchJob::new(probe(p)).with_priority(p)))
            .collect();
        release.store(true, Ordering::Release);
        for handle in &queued {
            assert!(handle.wait().result.converged());
        }
        service.shutdown();
        assert_eq!(
            *order.lock().unwrap(),
            vec![Priority::High, Priority::Normal, Priority::Low]
        );
    }

    #[test]
    fn try_submit_refuses_at_exactly_the_bound() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_policy(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            ServicePolicy::new().with_workers(1).with_queue_bound(2),
        );
        // The blocker is *claimed* (not queued) once the worker picks it up.
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let first = service.try_submit(BatchJob::new(PaperIntegrand::f4(3)));
        let second = service.try_submit(BatchJob::new(PaperIntegrand::f4(3)));
        assert!(first.is_ok() && second.is_ok());
        assert_eq!(service.queued_jobs(), 2);
        let refused = service
            .try_submit(BatchJob::new(PaperIntegrand::f4(3)))
            .expect_err("the queue is at its bound");
        assert_eq!(refused.bound, 2);
        // The rejected job comes back intact and can be resubmitted once the
        // worker frees a slot.
        release.store(true, Ordering::Release);
        assert!(running.wait().result.converged());
        let mut job = refused.job;
        let retried = loop {
            match service.try_submit(job) {
                Ok(handle) => break handle,
                Err(still_full) => {
                    job = still_full.job;
                    std::thread::yield_now();
                }
            }
        };
        assert!(retried.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn blocking_submit_waits_for_space_on_a_bounded_queue() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_policy(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-3)),
            ServicePolicy::new().with_workers(1).with_queue_bound(1),
        );
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Fill the single queue slot; the next blocking submit must park on
        // the space condvar instead of refusing or queueing past the bound.
        let queued = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        assert_eq!(service.queued_jobs(), 1);
        let unblocked = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let submitter = {
                let service = &service;
                let unblocked = Arc::clone(&unblocked);
                scope.spawn(move || {
                    let handle = service.submit(BatchJob::new(PaperIntegrand::f3(3)));
                    unblocked.store(true, Ordering::Release);
                    handle
                })
            };
            // The submitter stays parked while the queue is full.
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !unblocked.load(Ordering::Acquire),
                "submit returned although the queue was at its bound"
            );
            // Freeing the worker drains the queue and wakes the submitter.
            release.store(true, Ordering::Release);
            let late = submitter.join().expect("submitter thread panicked");
            assert!(unblocked.load(Ordering::Acquire));
            assert!(late.wait().result.converged());
        });
        assert!(running.wait().result.converged());
        assert!(queued.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn deadline_cancels_a_running_job_with_partial_stats() {
        // Every evaluation dawdles, so the run is still mid-flight when the
        // deadline fires; the cancellation lands at the next iteration
        // boundary with the partial counters intact.
        let slow = FnIntegrand::new(3, |x: &[f64]| {
            std::thread::sleep(Duration::from_micros(200));
            (x[0] * x[1] * x[2]).sin().mul_add(0.1, 1.0)
        });
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-12)),
            1,
        );
        let handle = service.submit(BatchJob::new(slow).with_deadline(Duration::from_millis(50)));
        let output = handle.wait();
        assert_eq!(output.result.termination, Termination::Cancelled);
        assert!(output.result.iterations >= 1, "cancel landed before work");
        assert!(output.result.function_evaluations > 0);
        assert!(output.result.estimate.is_finite());
        service.shutdown();
    }

    #[test]
    fn expired_deadline_on_a_queued_job_reports_cancelled() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (s, r) = (Arc::clone(&started), Arc::clone(&release));
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            s.store(true, Ordering::Release);
            while !r.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = IntegrationService::with_workers(
            Device::new(DeviceConfig::test_small().with_worker_threads(1)),
            PaganiConfig::test_small(Tolerances::rel(1e-4)),
            1,
        );
        let running = service.submit(BatchJob::new(blocker));
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Queued behind the blocker with a deadline that fires while waiting.
        let doomed = service
            .submit(BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(80));
        release.store(true, Ordering::Release);
        let output = doomed.wait();
        assert_eq!(output.result.termination, Termination::Cancelled);
        assert_eq!(output.result.function_evaluations, 0, "doomed job ran");
        assert!(running.wait().result.converged());
        service.shutdown();
    }

    #[test]
    fn generous_deadlines_change_nothing() {
        let service = service(2);
        let plain = service.submit(BatchJob::new(PaperIntegrand::f4(3)));
        let with_deadline = service
            .submit(BatchJob::new(PaperIntegrand::f4(3)).with_deadline(Duration::from_secs(3600)));
        let a = plain.wait();
        let b = with_deadline.wait();
        assert!(a.result.converged() && b.result.converged());
        assert_eq!(a.result.estimate.to_bits(), b.result.estimate.to_bits());
        service.shutdown();
    }

    #[test]
    fn cancelled_queued_job_never_runs() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::clone(&gate);
        // A blocker that parks the single worker until we release it.
        let blocker = FnIntegrand::new(2, move |_: &[f64]| {
            while !release.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            1.0
        });
        let service = service(1);
        let running = service.submit(BatchJob::new(blocker));
        let queued = service.submit(BatchJob::new(PaperIntegrand::f4(4)));
        queued.cancel();
        gate.store(true, std::sync::atomic::Ordering::Release);
        let cancelled = queued.wait();
        assert_eq!(cancelled.result.termination, Termination::Cancelled);
        assert_eq!(cancelled.result.function_evaluations, 0);
        assert!(running.wait().result.converged());
        service.shutdown();
    }
}
