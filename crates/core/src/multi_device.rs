//! Multi-device execution (§4.4, the paper's future-work extension).
//!
//! The single-device PAGANI is ultimately limited by device memory.  The paper
//! proposes extending the memory pool by partitioning the integration space across
//! several GPUs, each running PAGANI independently on its slab, with redistribution
//! kept to the start of the run (per-iteration redistribution over MPI is dismissed as
//! infeasible).  [`MultiDevicePagani`] implements exactly that static scheme: the root
//! region is cut into one slab per device along its longest axes, every device
//! integrates its slab to the full tolerance concurrently, and the per-device results
//! are summed.  For single-sign integrands the per-slab relative tolerances compose
//! into the global tolerance by the same argument as Lemma 3.1.

use std::time::Instant;

use pagani_quadrature::{Integrand, IntegrationResult, Region, Termination};

use crate::batch::{BatchJob, BatchRunner};
use crate::config::PaganiConfig;
use crate::driver::{Pagani, PaganiOutput};
use crate::integrator::ensure_matching_dims;
use pagani_device::Device;

/// PAGANI running over a static partition of the domain across several devices.
#[derive(Debug, Clone)]
pub struct MultiDevicePagani {
    devices: Vec<Device>,
    config: PaganiConfig,
}

/// Result of a multi-device run: the combined result plus each device's output.
#[derive(Debug, Clone)]
pub struct MultiDeviceOutput {
    /// Combined estimate across all slabs.
    pub result: IntegrationResult,
    /// Per-device outputs, in slab order.
    pub per_device: Vec<PaganiOutput>,
}

impl MultiDevicePagani {
    /// Create a multi-device integrator.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn new(devices: Vec<Device>, config: PaganiConfig) -> Self {
        assert!(!devices.is_empty(), "at least one device is required");
        Self { devices, config }
    }

    /// Number of devices in the pool.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Cut `root` into one slab per device by repeatedly halving the widest axis.
    #[must_use]
    pub fn partition(root: &Region, parts: usize) -> Vec<Region> {
        let mut slabs = vec![root.clone()];
        while slabs.len() < parts {
            // Split the slab with the largest volume along its widest axis.
            let (idx, _) = slabs
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.volume()
                        .partial_cmp(&b.volume())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("slab list is never empty");
            let slab = slabs.swap_remove(idx);
            let widest = (0..slab.dim())
                .max_by(|&a, &b| {
                    slab.extent(a)
                        .partial_cmp(&slab.extent(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("regions have at least one axis");
            let (lo, hi) = slab.split(widest);
            slabs.push(lo);
            slabs.push(hi);
        }
        slabs
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + Sync + ?Sized>(&self, f: &F) -> MultiDeviceOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Run a batch of independent jobs across the device pool, returning
    /// outputs in job order.
    ///
    /// Jobs are sharded round-robin across the devices — job `i` runs wholly
    /// on device `i mod n` — and each device executes its share through a
    /// [`BatchRunner`], so jobs are spread across device slabs *and* recycled
    /// buffers / shared worker pools within each device.  The assignment is a
    /// pure function of the job index, so a given job always lands on the same
    /// device and its result is bit-identical to running it alone there.
    #[must_use]
    pub fn integrate_batch(&self, jobs: &[BatchJob]) -> Vec<PaganiOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let n = self.devices.len();
        let mut shards: Vec<Vec<BatchJob>> = vec![Vec::new(); n];
        for (i, job) in jobs.iter().enumerate() {
            shards[i % n].push(job.clone());
        }
        let shard_outputs: Vec<Vec<PaganiOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(&shards)
                .map(|(device, shard)| {
                    let runner = BatchRunner::new(device.clone(), self.config.clone());
                    scope.spawn(move || runner.run(shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device batch worker panicked"))
                .collect()
        });
        let mut shard_iters: Vec<_> = shard_outputs.into_iter().map(Vec::into_iter).collect();
        (0..jobs.len())
            .map(|i| shard_iters[i % n].next().expect("shard output missing"))
            .collect()
    }

    /// Integrate `f` over an explicit region, one slab per device, concurrently.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region<F: Integrand + Sync + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> MultiDeviceOutput {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let slabs = Self::partition(region, self.devices.len());

        let per_device: Vec<PaganiOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(&slabs)
                .map(|(device, slab)| {
                    let pagani = Pagani::new(device.clone(), self.config.clone());
                    scope.spawn(move || pagani.integrate_region(f, slab))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device worker panicked"))
                .collect()
        });

        let mut estimate = 0.0;
        let mut error = 0.0;
        let mut function_evaluations = 0;
        let mut regions_generated = 0;
        let mut iterations = 0;
        let mut active_final = 0;
        let mut worst_termination = Termination::Converged;
        for output in &per_device {
            estimate += output.result.estimate;
            error += output.result.error_estimate;
            function_evaluations += output.result.function_evaluations;
            regions_generated += output.result.regions_generated;
            iterations = iterations.max(output.result.iterations);
            active_final += output.result.active_regions_final;
            if !output.result.converged() {
                worst_termination = output.result.termination;
            }
        }
        // The combined run converged if every slab did, or if the summed errors happen
        // to satisfy the tolerance anyway.
        let termination = if worst_termination == Termination::Converged
            || self.config.tolerances.satisfied_by(estimate, error)
        {
            Termination::Converged
        } else {
            worst_termination
        };

        MultiDeviceOutput {
            result: IntegrationResult {
                estimate,
                error_estimate: error,
                termination,
                iterations,
                function_evaluations,
                regions_generated,
                active_regions_final: active_final,
                wall_time: start.elapsed(),
            },
            per_device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::{Device, DeviceConfig};
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::Tolerances;
    use proptest::prelude::*;

    fn devices(n: usize) -> Vec<Device> {
        (0..n)
            .map(|_| Device::new(DeviceConfig::test_small().with_memory_capacity(16 << 20)))
            .collect()
    }

    #[test]
    fn partition_covers_the_domain() {
        let root = Region::unit_cube(3);
        for parts in [1, 2, 3, 4, 7] {
            let slabs = MultiDevicePagani::partition(&root, parts);
            assert_eq!(slabs.len(), parts.max(1));
            let total: f64 = slabs.iter().map(Region::volume).sum();
            assert!((total - 1.0).abs() < 1e-12, "parts = {parts}");
        }
    }

    #[test]
    fn partition_splits_the_widest_axis_first() {
        let root = Region::new(vec![0.0, 0.0], vec![4.0, 1.0]);
        let slabs = MultiDevicePagani::partition(&root, 2);
        // The 4-unit-wide axis 0 must have been cut, not axis 1.
        assert!(slabs.iter().all(|s| (s.extent(0) - 2.0).abs() < 1e-12));
        assert!(slabs.iter().all(|s| (s.extent(1) - 1.0).abs() < 1e-12));
    }

    #[test]
    fn two_devices_match_the_single_device_answer() {
        let integrand = PaperIntegrand::f4(3);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
        let single = Pagani::new(devices(1).pop().unwrap(), config.clone()).integrate(&integrand);
        let multi = MultiDevicePagani::new(devices(2), config).integrate(&integrand);
        assert!(single.result.converged());
        assert!(multi.result.converged());
        let reference = integrand.reference_value();
        assert!(multi.result.true_relative_error(reference) < 1e-5);
        assert!(
            (multi.result.estimate - single.result.estimate).abs()
                <= single.result.error_estimate + multi.result.error_estimate
        );
        assert_eq!(multi.per_device.len(), 2);
    }

    #[test]
    fn four_devices_extend_the_usable_memory() {
        // Each tiny device alone cannot hold the region list needed at this precision;
        // four of them together can, because every slab is a quarter of the domain.
        let integrand = PaperIntegrand::f4(4);
        let tol = Tolerances::rel(1e-4);
        let tiny = || Device::new(DeviceConfig::test_small().with_memory_capacity(3 << 20));
        let single = Pagani::new(tiny(), PaganiConfig::test_small(tol)).integrate(&integrand);
        let multi = MultiDevicePagani::new(
            (0..4).map(|_| tiny()).collect(),
            PaganiConfig::test_small(tol),
        )
        .integrate(&integrand);
        // The multi-device run must never do worse than the single device.
        if single.result.converged() {
            assert!(multi.result.converged());
        }
        assert!(multi.result.estimate.is_finite());
        assert!(
            multi
                .result
                .true_relative_error(integrand.reference_value())
                <= single
                    .result
                    .true_relative_error(integrand.reference_value())
                    .max(1e-4)
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_pool_is_rejected() {
        let _ = MultiDevicePagani::new(Vec::new(), PaganiConfig::default());
    }

    #[test]
    fn batch_shards_across_devices_and_matches_single_device_results() {
        let f4 = std::sync::Arc::new(PaperIntegrand::f4(3));
        let f3 = std::sync::Arc::new(PaperIntegrand::f3(3));
        let jobs = [
            BatchJob::shared(f4.clone()),
            BatchJob::shared(f3.clone()),
            BatchJob::shared(f4.clone()),
            BatchJob::shared(f3.clone()),
            BatchJob::shared(f4.clone()),
        ];
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
        let multi = MultiDevicePagani::new(devices(2), config.clone());
        let outputs = multi.integrate_batch(&jobs);
        assert_eq!(outputs.len(), jobs.len());
        // Every output matches the same job run alone on an equivalent device.
        let lone_f4 = Pagani::new(devices(1).pop().unwrap(), config.clone()).integrate(f4.as_ref());
        let lone_f3 = Pagani::new(devices(1).pop().unwrap(), config).integrate(f3.as_ref());
        for (i, output) in outputs.iter().enumerate() {
            let reference = if i % 2 == 0 { &lone_f4 } else { &lone_f3 };
            assert_eq!(
                output.result.estimate.to_bits(),
                reference.result.estimate.to_bits(),
                "job {i} diverged from its single-device run"
            );
        }
    }

    #[test]
    fn empty_multi_device_batch_is_empty() {
        let multi = MultiDevicePagani::new(devices(2), PaganiConfig::default());
        assert!(multi.integrate_batch(&[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// §4.4 composition: on single-sign Genz integrands, integrating each
        /// slab to the full relative tolerance composes into the global
        /// tolerance (the Lemma 3.1 argument applied across devices) — for
        /// any device count and any integrand dimension.
        #[test]
        fn prop_slab_results_compose_to_the_global_tolerance(
            device_count in 1usize..5,
            dim in 2usize..4,
            family in 0usize..2,
        ) {
            let f = if family == 0 {
                PaperIntegrand::f4(dim)
            } else {
                PaperIntegrand::f3(dim)
            };
            let tol = 1e-3;
            let multi = MultiDevicePagani::new(
                devices(device_count),
                PaganiConfig::test_small(Tolerances::rel(tol)),
            )
            .integrate(&f);
            prop_assert!(multi.result.converged(), "{:?}", multi.result.termination);
            prop_assert_eq!(multi.per_device.len(), device_count);
            // The combined estimate is exactly the slab sum (same fold order).
            let slab_sum: f64 = multi.per_device.iter().map(|o| o.result.estimate).sum();
            prop_assert_eq!(slab_sum.to_bits(), multi.result.estimate.to_bits());
            // Every slab satisfied its own tolerance, and the composition
            // holds against the analytic reference.
            let true_err = multi.result.true_relative_error(f.reference_value());
            prop_assert!(true_err < tol, "true rel err {} vs {}", true_err, tol);
        }
    }
}
