//! Multi-device execution (§4.4, the paper's future-work extension) and the
//! multi-device scheduling service.
//!
//! The single-device PAGANI is ultimately limited by device memory.  The paper
//! proposes extending the memory pool by partitioning the integration space across
//! several GPUs, each running PAGANI independently on its slab, with redistribution
//! kept to the start of the run (per-iteration redistribution over MPI is dismissed as
//! infeasible).  [`MultiDevicePagani`] implements exactly that static scheme: the root
//! region is cut into one slab per device along its longest axes, every device
//! integrates its slab to the full tolerance concurrently, and the per-device results
//! are summed.  For single-sign integrands the per-slab relative tolerances compose
//! into the global tolerance by the same argument as Lemma 3.1.
//!
//! Independent-job traffic is the other axis: [`MultiDeviceService`] feeds N
//! devices from **one** submission queue.  Each incoming job is weighed by
//! the pool's shared measured [`CostModel`] (falling back to the static
//! [`estimated_cost`] while the model is cold) and dispatched to the device
//! with the least estimated outstanding cost
//! ([`DispatchMode::CostBalanced`]), so a skewed job mix cannot pile its
//! heavy jobs onto one device the way round-robin sharding does.  All lanes
//! share one model, so what one device learns about a job family prices that
//! family everywhere.  [`DispatchMode::RoundRobin`] remains available as the
//! deterministic fallback: under it the device a job lands on is a pure
//! function of its submission index, which is the mode the reproducibility
//! tests pin.  Per-job *results* are bit-identical either way whenever the
//! devices are configured identically — every job runs against an isolated
//! full-capacity memory view, so only wall-clock (and, for heterogeneous
//! pools, memory-pressure behaviour) depends on placement.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use pagani_quadrature::{Integrand, IntegrationResult, Region, Termination, Tolerances};

use crate::batch::BatchJob;
use crate::builder::ServiceBuilder;
use crate::config::PaganiConfig;
pub use crate::cost::{estimated_cost, estimated_job_cost};
use crate::cost::{estimated_job_footprint_bytes, slab_weights, CostModel};
use crate::driver::{Pagani, PaganiOutput};
use crate::integrator::ensure_matching_dims;
use crate::service::{
    panic_message, IntegrationService, JobHandle, JobOutcome, JobState, QueueFull, Rejected,
    ServiceMetrics, ServicePolicy,
};
use crate::trace::ExecutionTrace;
use pagani_device::Device;
use pagani_persist::ResultCache;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a multi-device dispatcher assigns jobs to devices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Weigh each job with [`estimated_cost`] and send it to the device with
    /// the least estimated outstanding cost (ties break to the lowest device
    /// index).  Balances skewed job mixes; placement depends on completion
    /// timing, so which device serves a job is not reproducible run-to-run.
    #[default]
    CostBalanced,
    /// Job `i` goes to device `i mod n` — placement is a pure function of the
    /// submission index, reproducible run-to-run.  The deterministic fallback
    /// the pinning tests rely on.
    RoundRobin,
}

/// Plan a device assignment for a fixed batch of job costs.
///
/// `CostBalanced` runs greedy list scheduling: each job (in order) goes to
/// the device with the least total assigned cost so far, ties to the lowest
/// index.  `RoundRobin` assigns job `i` to device `i mod lanes`.  Both are
/// pure functions of their inputs, so batch dispatch is deterministic — the
/// timing-dependence of streaming dispatch comes only from completions, which
/// a fixed batch plan ignores.
///
/// # Panics
/// Panics if `lanes` is zero.
#[must_use]
pub fn plan_dispatch(costs: &[f64], lanes: usize, mode: DispatchMode) -> Vec<usize> {
    assert!(lanes > 0, "at least one dispatch lane is required");
    match mode {
        DispatchMode::RoundRobin => (0..costs.len()).map(|i| i % lanes).collect(),
        DispatchMode::CostBalanced => {
            let mut assigned = vec![0.0f64; lanes];
            costs
                .iter()
                .map(|&cost| {
                    let lane = assigned
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .expect("lanes is non-zero");
                    assigned[lane] += cost;
                    lane
                })
                .collect()
        }
    }
}

/// One device's lane in a [`MultiDeviceService`]: its service and the
/// estimated cost of jobs dispatched to it that have not completed yet.
#[derive(Debug)]
struct Lane {
    service: IntegrationService,
    outstanding: Arc<Mutex<f64>>,
}

/// One submission queue feeding N devices.
///
/// Mirrors [`IntegrationService`] at the device-pool level: `submit` weighs
/// the job with [`estimated_job_cost`] and dispatches it to a device
/// according to the [`DispatchMode`]; every per-device lane is a full
/// [`IntegrationService`], so per-job method overrides, priorities, deadlines
/// and cancellation all work unchanged.  [`MultiDeviceService::integrate_batch`]
/// plans a whole batch deterministically through [`plan_dispatch`].
///
/// ```
/// use pagani_core::{BatchJob, MultiDeviceService, PaganiConfig};
/// use pagani_device::Device;
/// use pagani_quadrature::{FnIntegrand, Tolerances};
///
/// let service = MultiDeviceService::new(
///     vec![Device::test_small(), Device::test_small()],
///     PaganiConfig::test_small(Tolerances::rel(1e-5)),
/// );
/// let jobs = [
///     BatchJob::new(FnIntegrand::new(2, |x: &[f64]| x[0] + x[1])),
///     BatchJob::new(FnIntegrand::new(3, |x: &[f64]| x[0] * x[1] * x[2])),
/// ];
/// let outputs = service.integrate_batch(&jobs);
/// assert!(outputs.iter().all(|o| o.result.converged()));
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct MultiDeviceService {
    lanes: Vec<Lane>,
    mode: DispatchMode,
    round_robin_next: AtomicUsize,
    default_tolerances: Tolerances,
    /// One measured cost model shared by every lane: a wall time observed on
    /// any device prices that job family on all of them.
    model: Arc<CostModel>,
    /// The pool-wide result cache, when one was supplied — shared by every
    /// lane so any device's work serves the whole pool.
    cache: Option<Arc<ResultCache>>,
}

impl MultiDeviceService {
    /// Start a cost-balanced service over `devices`, one lane (a full
    /// [`IntegrationService`]) per device.  Thin delegate of
    /// [`ServiceBuilder`].
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn new(devices: Vec<Device>, config: PaganiConfig) -> Self {
        ServiceBuilder::new(config).devices(devices).build_multi()
    }

    /// Start a service with an explicit [`DispatchMode`].  Thin delegate of
    /// [`ServiceBuilder`].
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn with_mode(devices: Vec<Device>, config: PaganiConfig, mode: DispatchMode) -> Self {
        ServiceBuilder::new(config)
            .devices(devices)
            .dispatch(mode)
            .build_multi()
    }

    /// Start a service with an explicit mode and a per-lane
    /// [`ServicePolicy`] (each device's lane applies the policy
    /// independently).  Thin delegate of [`ServiceBuilder`].
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn with_policy(
        devices: Vec<Device>,
        config: PaganiConfig,
        mode: DispatchMode,
        policy: ServicePolicy,
    ) -> Self {
        ServiceBuilder::new(config)
            .devices(devices)
            .dispatch(mode)
            .policy(policy)
            .build_multi()
    }

    /// Start a service whose lanes all share one [`ResultCache`]: a result
    /// computed (or a partial tree persisted) on any device serves exact hits
    /// and warm starts on every device.  See
    /// [`IntegrationService::with_cache`] for the per-lane cache semantics.
    /// Thin delegate of [`ServiceBuilder`].
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn with_cache(
        devices: Vec<Device>,
        config: PaganiConfig,
        mode: DispatchMode,
        policy: ServicePolicy,
        cache: Arc<ResultCache>,
    ) -> Self {
        ServiceBuilder::new(config)
            .devices(devices)
            .dispatch(mode)
            .policy(policy)
            .cache(cache)
            .build_multi()
    }

    /// The one real construction path, fed by
    /// [`ServiceBuilder::build_multi`].
    pub(crate) fn from_builder(builder: ServiceBuilder) -> Self {
        let ServiceBuilder {
            config,
            devices,
            policy,
            dispatch: mode,
            cache,
            model,
            ..
        } = builder;
        assert!(!devices.is_empty(), "at least one device is required");
        let default_tolerances = config.tolerances;
        let model = model.unwrap_or_else(|| Arc::new(CostModel::new()));
        let lanes = devices
            .into_iter()
            .map(|device| Lane {
                service: IntegrationService::with_policy_and_model(
                    device,
                    config.clone(),
                    policy,
                    Arc::clone(&model),
                    cache.clone(),
                ),
                outstanding: Arc::new(Mutex::new(0.0)),
            })
            .collect();
        Self {
            lanes,
            mode,
            round_robin_next: AtomicUsize::new(0),
            default_tolerances,
            model,
            cache,
        }
    }

    /// Number of devices in the pool.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.lanes.len()
    }

    /// The dispatch mode in force.
    #[must_use]
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Estimated outstanding cost per device — dispatched minus completed —
    /// in device order.  Introspection for tests and load dashboards.
    #[must_use]
    pub fn outstanding_costs(&self) -> Vec<f64> {
        self.lanes
            .iter()
            .map(|lane| *lock(&lane.outstanding))
            .collect()
    }

    /// A per-lane [`ServiceMetrics`] snapshot, in device order.  One entry
    /// per device; sum counters across entries for pool-level totals.
    #[must_use]
    pub fn metrics(&self) -> Vec<ServiceMetrics> {
        self.lanes
            .iter()
            .map(|lane| lane.service.metrics())
            .collect()
    }

    /// The measured [`CostModel`] shared by every lane.  Seed it with
    /// [`CostModel::record`] for deterministic admission in tests, or inspect
    /// it to watch the pool's learning converge.
    #[must_use]
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.model
    }

    /// The pool-wide [`ResultCache`], when the service was built with
    /// [`MultiDeviceService::with_cache`].
    #[must_use]
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Pick the lane the next submission goes to; advances the round-robin
    /// rotation when that mode is in force.
    fn select_lane(&self) -> usize {
        match self.mode {
            DispatchMode::RoundRobin => {
                self.round_robin_next.fetch_add(1, AtomicOrdering::Relaxed) % self.lanes.len()
            }
            DispatchMode::CostBalanced => {
                let costs = self.outstanding_costs();
                let has_space = |i: usize| {
                    let lane = &self.lanes[i];
                    lane.service
                        .policy()
                        .queue_bound
                        .is_none_or(|bound| lane.service.queued_jobs() < bound)
                };
                let least_loaded = |candidates: &mut dyn Iterator<Item = usize>| {
                    candidates.min_by(|&a, &b| {
                        costs[a]
                            .partial_cmp(&costs[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                };
                least_loaded(&mut (0..self.lanes.len()).filter(|&i| has_space(i)))
                    .or_else(|| least_loaded(&mut (0..self.lanes.len())))
                    .expect("the lane list is never empty")
            }
        }
    }

    /// Dispatch `job` to a device and return its handle.
    ///
    /// `CostBalanced` picks the device with the least estimated outstanding
    /// cost at this instant; under a bounded per-lane [`ServicePolicy`],
    /// lanes whose queue is at its bound are skipped (best-effort — the
    /// occupancy snapshot can race a concurrent submitter) so a full cheap
    /// lane cannot block the call while another lane has room; only when
    /// *every* lane is full does the call block waiting for space on the
    /// least-loaded one.  `RoundRobin` rotates unconditionally — placement
    /// stays a pure function of the submission index, so a full lane blocks
    /// rather than breaking determinism.  The job's weight under the shared
    /// [`CostModel`] is charged to the chosen lane and retired when the job
    /// completes.
    ///
    /// **Oversized jobs slab-split.**  A job whose
    /// [`estimated_job_footprint_bytes`] exceeds the smallest lane's memory
    /// capacity cannot converge on any single device; instead of letting it
    /// exhaust memory, the service cuts its region into
    /// [`MultiDevicePagani::partition`] slabs (one child job per slab, each
    /// inheriting the parent's priority and deadline), dispatches the
    /// children through the ordinary cost-balanced lanes with
    /// [`slab_weights`] charges, and recombines them **bit-deterministically**:
    /// children are summed in fixed slab order with exactly the
    /// [`MultiDevicePagani::integrate_region`] fold, so the parent handle's
    /// result is a pure function of the slab results.  Cancelling the parent
    /// handle cancels every child.
    #[must_use]
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        if let Some(parts) = self.slab_parts(&job) {
            return self.submit_slabbed(job, parts);
        }
        self.submit_to(self.select_lane(), job)
    }

    /// [`MultiDeviceService::submit`] with refuse-instead-of-wait semantics:
    /// the chosen lane's [`IntegrationService::try_submit`] admission checks
    /// (queue bound, deadline feasibility) run, and a refusal hands the job
    /// back as [`Rejected`] without charging the lane.
    ///
    /// Under `RoundRobin` a rejected submission still consumes its rotation
    /// slot — placement stays a pure function of the submission *attempt*
    /// index, so a retried job probes the next lane instead of hammering the
    /// same full one.
    ///
    /// # Errors
    /// Whatever the chosen lane's [`IntegrationService::try_submit`] returns:
    /// [`Rejected::QueueFull`] at the lane's bound,
    /// [`Rejected::DeadlineInfeasible`] when the shared model predicts the
    /// deadline cannot be met on that lane.
    pub fn try_submit(&self, job: BatchJob) -> Result<JobHandle, Rejected> {
        if let Some(parts) = self.slab_parts(&job) {
            // Slab children bypass per-child admission (they exist precisely
            // because the whole job is infeasible on one device), so refuse
            // up front only on capacity: when every lane's queue is at its
            // bound there is nowhere to put even the first child.  Deadline
            // admission is deliberately optimistic here — the model prices
            // whole jobs, not slabs, and a refusal based on the unsplit
            // footprint would reject exactly the jobs splitting rescues.
            let full_bound = (0..self.lanes.len())
                .map(|i| {
                    let lane = &self.lanes[i];
                    lane.service
                        .policy()
                        .queue_bound
                        .filter(|&bound| lane.service.queued_jobs() >= bound)
                })
                .collect::<Option<Vec<usize>>>();
            if let Some(bounds) = full_bound {
                let bound = bounds.into_iter().min().unwrap_or(0);
                return Err(Rejected::QueueFull(Box::new(QueueFull { bound, job })));
            }
            return Ok(self.submit_slabbed(job, parts));
        }
        let lane_index = self.select_lane();
        let lane = &self.lanes[lane_index];
        let cost = self.model.weigh_job(&job, self.default_tolerances);
        *lock(&lane.outstanding) += cost;
        let outstanding = Arc::clone(&lane.outstanding);
        let result = lane.service.try_submit_with_hook(
            job,
            Some(Box::new(move || {
                *lock(&outstanding) -= cost;
            })),
        );
        if result.is_err() {
            // The lane never accepted the job, so its completion hook will
            // never run: revert the charge at exactly the charged value.
            *lock(&lane.outstanding) -= cost;
        }
        result
    }

    /// Dispatch `job` to the planned `lane`, charging and later retiring its
    /// weight under the shared [`CostModel`].
    fn submit_to(&self, lane_index: usize, job: BatchJob) -> JobHandle {
        let cost = self.model.weigh_job(&job, self.default_tolerances);
        self.submit_weighted(lane_index, job, cost)
    }

    /// [`MultiDeviceService::submit_to`] with an explicit charge — the slab
    /// path apportions the parent's weight across children, so a child's
    /// charge is its [`slab_weights`] share rather than its own model weight.
    fn submit_weighted(&self, lane_index: usize, job: BatchJob, cost: f64) -> JobHandle {
        let lane = &self.lanes[lane_index];
        *lock(&lane.outstanding) += cost;
        let outstanding = Arc::clone(&lane.outstanding);
        lane.service.submit_with_hook(
            job,
            Some(Box::new(move || {
                *lock(&outstanding) -= cost;
            })),
        )
    }

    /// How many slabs `job` must be cut into, or `None` when it fits on one
    /// device (the overwhelmingly common case) or carries a per-job method
    /// override (baseline methods have no slab-composition story).
    fn slab_parts(&self, job: &BatchJob) -> Option<usize> {
        if job.method().is_some() {
            return None;
        }
        let budget = self
            .lanes
            .iter()
            .map(|lane| lane.service.device().config().memory_capacity)
            .min()
            .expect("the lane list is never empty") as f64;
        let footprint = estimated_job_footprint_bytes(job, self.default_tolerances);
        if footprint <= budget {
            return None;
        }
        Some(((footprint / budget).ceil() as usize).clamp(2, 64))
    }

    /// Split an oversized job into `parts` slab children, dispatch each
    /// through the ordinary lanes, and hand back a parent handle served by a
    /// combiner thread that waits for the children **in slab order** and
    /// publishes the [`combine_slab_outputs`] fold.
    fn submit_slabbed(&self, job: BatchJob, parts: usize) -> JobHandle {
        let slabs = MultiDevicePagani::partition(job.region(), parts);
        let total_cost = self.model.weigh_job(&job, self.default_tolerances);
        let weights = slab_weights(total_cost, &slabs);
        let children: Vec<JobHandle> = slabs
            .into_iter()
            .zip(&weights)
            .map(|(slab, &weight)| {
                self.submit_weighted(self.select_lane(), job.clone().over(slab), weight)
            })
            .collect();
        let tolerances = crate::cost::job_tolerances(&job, self.default_tolerances);
        let parent = Arc::new(JobState::new());
        let state = Arc::clone(&parent);
        let waited = children.clone();
        std::thread::Builder::new()
            .name("pagani-slab-combiner".into())
            .spawn(move || {
                let mut outputs = Vec::with_capacity(waited.len());
                for child in &waited {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| child.wait())) {
                        Ok(output) => outputs.push(output),
                        Err(payload) => {
                            state.complete(JobOutcome::Panicked(panic_message(payload.as_ref())));
                            return;
                        }
                    }
                }
                state.complete(JobOutcome::Finished(combine_slab_outputs(
                    &outputs, tolerances,
                )));
            })
            .expect("spawning the slab-combiner thread");
        JobHandle::detached(
            parent,
            Some(Arc::new(move || {
                for child in &children {
                    child.cancel();
                }
            })),
        )
    }

    /// Run a fixed batch of jobs across the pool, returning outputs in job
    /// order.
    ///
    /// The batch is planned up front with [`plan_dispatch`], so the
    /// job-to-device assignment is a pure function of the job list, the
    /// dispatch mode and the shared [`CostModel`]'s state at planning time —
    /// no completion-timing dependence, unlike streaming
    /// [`MultiDeviceService::submit`] whose cost-balanced placement races
    /// completions.  (On a fresh service the model is cold and the plan
    /// reduces to the static [`estimated_cost`] weights — the fully
    /// reproducible case the pinning tests use.)
    #[must_use]
    pub fn integrate_batch(&self, jobs: &[BatchJob]) -> Vec<PaganiOutput> {
        let costs: Vec<f64> = jobs
            .iter()
            .map(|job| self.model.weigh_job(job, self.default_tolerances))
            .collect();
        let plan = plan_dispatch(&costs, self.lanes.len(), self.mode);
        let handles: Vec<JobHandle> = jobs
            .iter()
            .zip(&plan)
            .map(|(job, &lane)| self.submit_to(lane, job.clone()))
            .collect();
        handles.iter().map(JobHandle::wait).collect()
    }

    /// Graceful shutdown: every lane drains its submitted jobs and joins its
    /// workers.  Handles issued before the call remain valid.
    pub fn shutdown(self) {
        for lane in self.lanes {
            lane.service.shutdown();
        }
    }
}

/// PAGANI running over a static partition of the domain across several devices.
#[derive(Debug, Clone)]
pub struct MultiDevicePagani {
    devices: Vec<Device>,
    config: PaganiConfig,
    dispatch: DispatchMode,
}

/// Result of a multi-device run: the combined result plus each device's output.
#[derive(Debug, Clone)]
pub struct MultiDeviceOutput {
    /// Combined estimate across all slabs.
    pub result: IntegrationResult,
    /// Per-device outputs, in slab order.
    pub per_device: Vec<PaganiOutput>,
}

impl MultiDevicePagani {
    /// Create a multi-device integrator (cost-balanced batch dispatch by
    /// default; see [`MultiDevicePagani::with_dispatch`]).
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn new(devices: Vec<Device>, config: PaganiConfig) -> Self {
        assert!(!devices.is_empty(), "at least one device is required");
        Self {
            devices,
            config,
            dispatch: DispatchMode::default(),
        }
    }

    /// Choose how [`MultiDevicePagani::integrate_batch`] assigns jobs to
    /// devices: [`DispatchMode::CostBalanced`] (the default) or the pinned
    /// deterministic [`DispatchMode::RoundRobin`] fallback.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The batch dispatch mode in force.
    #[must_use]
    pub fn dispatch(&self) -> DispatchMode {
        self.dispatch
    }

    /// Number of devices in the pool.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Cut `root` into one slab per device by repeatedly halving the widest axis.
    #[must_use]
    pub fn partition(root: &Region, parts: usize) -> Vec<Region> {
        let mut slabs = vec![root.clone()];
        while slabs.len() < parts {
            // Split the slab with the largest volume along its widest axis.
            let (idx, _) = slabs
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.volume()
                        .partial_cmp(&b.volume())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("slab list is never empty");
            let slab = slabs.swap_remove(idx);
            let widest = (0..slab.dim())
                .max_by(|&a, &b| {
                    slab.extent(a)
                        .partial_cmp(&slab.extent(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("regions have at least one axis");
            let (lo, hi) = slab.split(widest);
            slabs.push(lo);
            slabs.push(hi);
        }
        slabs
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + Sync + ?Sized>(&self, f: &F) -> MultiDeviceOutput {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Run a batch of independent jobs across the device pool, returning
    /// outputs in job order.
    ///
    /// Sugar over a transient [`MultiDeviceService`]: the batch is planned
    /// with [`plan_dispatch`] under this integrator's [`DispatchMode`] —
    /// cost-balanced greedy assignment by default, or round-robin (job `i` on
    /// device `i mod n`, the pinned deterministic fallback) — then every job
    /// runs against an isolated memory view of its device, so each output is
    /// bit-identical to running that job alone on an identically-configured
    /// device regardless of placement.
    ///
    /// **Heterogeneous pools:** when the devices differ (memory capacity
    /// above all), a job's outcome *does* depend on which device serves it —
    /// a heavy job planned onto a small device can exhaust memory where the
    /// large device would converge.  The cost model weighs jobs, not
    /// devices, so on mixed pools pin placement explicitly with
    /// [`MultiDevicePagani::with_dispatch`]`(DispatchMode::RoundRobin)` (the
    /// pre-cost-model behaviour: job `i` always on device `i mod n`).
    #[must_use]
    pub fn integrate_batch(&self, jobs: &[BatchJob]) -> Vec<PaganiOutput> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let service =
            MultiDeviceService::with_mode(self.devices.clone(), self.config.clone(), self.dispatch);
        let outputs = service.integrate_batch(jobs);
        service.shutdown();
        outputs
    }

    /// Integrate `f` over an explicit region, one slab per device, concurrently.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region<F: Integrand + Sync + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> MultiDeviceOutput {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let slabs = Self::partition(region, self.devices.len());

        let per_device: Vec<PaganiOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(&slabs)
                .map(|(device, slab)| {
                    let pagani = Pagani::new(device.clone(), self.config.clone());
                    scope.spawn(move || pagani.integrate_region(f, slab))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device worker panicked"))
                .collect()
        });

        MultiDeviceOutput {
            result: combine_results(
                per_device.iter().map(|o| &o.result),
                self.config.tolerances,
                start.elapsed(),
            ),
            per_device,
        }
    }
}

/// The slab-composition fold shared by [`MultiDevicePagani::integrate_region`]
/// and the slab-splitting service path: sum estimates, errors and counters
/// over the slab results **in slab order** (the fold order is part of the
/// bit-determinism contract — f64 addition does not commute in the last ulp).
///
/// The combined run converged if every slab did, or if the summed errors
/// happen to satisfy the tolerance anyway.
fn combine_results<'a>(
    results: impl Iterator<Item = &'a IntegrationResult>,
    tolerances: Tolerances,
    wall_time: Duration,
) -> IntegrationResult {
    let mut estimate = 0.0;
    let mut error = 0.0;
    let mut function_evaluations = 0;
    let mut regions_generated = 0;
    let mut iterations = 0;
    let mut active_final = 0;
    let mut worst_termination = Termination::Converged;
    for result in results {
        estimate += result.estimate;
        error += result.error_estimate;
        function_evaluations += result.function_evaluations;
        regions_generated += result.regions_generated;
        iterations = iterations.max(result.iterations);
        active_final += result.active_regions_final;
        if !result.converged() {
            worst_termination = result.termination;
        }
    }
    let termination = if worst_termination == Termination::Converged
        || tolerances.satisfied_by(estimate, error)
    {
        Termination::Converged
    } else {
        worst_termination
    };
    IntegrationResult {
        estimate,
        error_estimate: error,
        termination,
        iterations,
        function_evaluations,
        regions_generated,
        active_regions_final: active_final,
        wall_time,
    }
}

/// Recombine slab-child outputs into the parent's output: the
/// [`combine_results`] fold in slab order, wall time the slowest child's
/// (children run concurrently; the combiner reads no clock of its own, so
/// results stay a pure function of the slab outputs).  The parent's trace is
/// empty — per-slab traces describe per-device runs and do not compose.
pub(crate) fn combine_slab_outputs(
    outputs: &[PaganiOutput],
    tolerances: Tolerances,
) -> PaganiOutput {
    let wall_time = outputs
        .iter()
        .map(|o| o.result.wall_time)
        .max()
        .unwrap_or_default();
    PaganiOutput {
        result: combine_results(outputs.iter().map(|o| &o.result), tolerances, wall_time),
        trace: ExecutionTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::{Device, DeviceConfig};
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::Tolerances;
    use proptest::prelude::*;

    fn devices(n: usize) -> Vec<Device> {
        (0..n)
            .map(|_| Device::new(DeviceConfig::test_small().with_memory_capacity(16 << 20)))
            .collect()
    }

    #[test]
    fn partition_covers_the_domain() {
        let root = Region::unit_cube(3);
        for parts in [1, 2, 3, 4, 7] {
            let slabs = MultiDevicePagani::partition(&root, parts);
            assert_eq!(slabs.len(), parts.max(1));
            let total: f64 = slabs.iter().map(Region::volume).sum();
            assert!((total - 1.0).abs() < 1e-12, "parts = {parts}");
        }
    }

    #[test]
    fn partition_splits_the_widest_axis_first() {
        let root = Region::new(vec![0.0, 0.0], vec![4.0, 1.0]);
        let slabs = MultiDevicePagani::partition(&root, 2);
        // The 4-unit-wide axis 0 must have been cut, not axis 1.
        assert!(slabs.iter().all(|s| (s.extent(0) - 2.0).abs() < 1e-12));
        assert!(slabs.iter().all(|s| (s.extent(1) - 1.0).abs() < 1e-12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `partition` is a disjoint exact cover that cuts the widest axis
        /// first, and `slab_weights` conserves the whole-job cost exactly.
        #[test]
        fn prop_partition_is_a_disjoint_exact_cover_with_conserved_weights(
            extents in proptest::collection::vec(0.5f64..4.0, 1..5),
            parts in 1usize..=12,
            cost_units in 1u64..1_000_000u64,
        ) {
            let dim = extents.len();
            let root = Region::new(vec![0.0; dim], extents.clone());
            let slabs = MultiDevicePagani::partition(&root, parts);
            prop_assert_eq!(slabs.len(), parts.max(1));

            // Exact cover, half one: volumes sum back to the root volume.
            let total: f64 = slabs.iter().map(Region::volume).sum();
            prop_assert!((total - root.volume()).abs() <= 1e-12 * root.volume());

            // Exact cover, half two + pairwise disjointness: every slab lies
            // inside the root, and each slab's centre is contained in
            // exactly one slab (itself) under the half-open convention.
            let contains = |s: &Region, p: &[f64]| {
                (0..dim).all(|a| s.lo()[a] <= p[a] && p[a] < s.hi()[a])
            };
            for slab in &slabs {
                for a in 0..dim {
                    prop_assert!(slab.lo()[a] >= root.lo()[a] && slab.hi()[a] <= root.hi()[a]);
                }
                let centre: Vec<f64> = (0..dim)
                    .map(|a| 0.5 * (slab.lo()[a] + slab.hi()[a]))
                    .collect();
                let owners = slabs.iter().filter(|s| contains(s, &centre)).count();
                prop_assert!(owners == 1, "slab centres must have a unique owner");
            }

            // Widest-axis-first: any actual split must have cut the root's
            // strictly widest axis, so no slab keeps its full extent.
            if parts >= 2 {
                let widest = (0..dim)
                    .max_by(|&a, &b| {
                        root.extent(a)
                            .partial_cmp(&root.extent(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("root has at least one axis");
                let strictly_widest = (0..dim)
                    .all(|a| a == widest || root.extent(a) < root.extent(widest) - 1e-9);
                if strictly_widest {
                    for slab in &slabs {
                        prop_assert!(
                            slab.extent(widest) < root.extent(widest) - 1e-12,
                            "the widest axis was never split"
                        );
                    }
                }
            }

            // Cost apportionment: integer weights, none negative, and their
            // sum is *bit-exactly* the whole-job cost.
            let total_cost = cost_units as f64;
            let weights = crate::cost::slab_weights(total_cost, &slabs);
            prop_assert_eq!(weights.len(), slabs.len());
            for &w in &weights {
                prop_assert!(w >= 0.0 && w.fract() == 0.0);
            }
            let sum: f64 = weights.iter().sum();
            prop_assert_eq!(sum.to_bits(), total_cost.to_bits());
        }
    }

    #[test]
    fn two_devices_match_the_single_device_answer() {
        let integrand = PaperIntegrand::f4(3);
        let config = PaganiConfig::test_small(Tolerances::rel(1e-5));
        let single = Pagani::new(devices(1).pop().unwrap(), config.clone()).integrate(&integrand);
        let multi = MultiDevicePagani::new(devices(2), config).integrate(&integrand);
        assert!(single.result.converged());
        assert!(multi.result.converged());
        let reference = integrand.reference_value();
        assert!(multi.result.true_relative_error(reference) < 1e-5);
        assert!(
            (multi.result.estimate - single.result.estimate).abs()
                <= single.result.error_estimate + multi.result.error_estimate
        );
        assert_eq!(multi.per_device.len(), 2);
    }

    #[test]
    fn four_devices_extend_the_usable_memory() {
        // Each tiny device alone cannot hold the region list needed at this precision;
        // four of them together can, because every slab is a quarter of the domain.
        let integrand = PaperIntegrand::f4(4);
        let tol = Tolerances::rel(1e-4);
        let tiny = || Device::new(DeviceConfig::test_small().with_memory_capacity(3 << 20));
        let single = Pagani::new(tiny(), PaganiConfig::test_small(tol)).integrate(&integrand);
        let multi = MultiDevicePagani::new(
            (0..4).map(|_| tiny()).collect(),
            PaganiConfig::test_small(tol),
        )
        .integrate(&integrand);
        // The multi-device run must never do worse than the single device.
        if single.result.converged() {
            assert!(multi.result.converged());
        }
        assert!(multi.result.estimate.is_finite());
        assert!(
            multi
                .result
                .true_relative_error(integrand.reference_value())
                <= single
                    .result
                    .true_relative_error(integrand.reference_value())
                    .max(1e-4)
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_pool_is_rejected() {
        let _ = MultiDevicePagani::new(Vec::new(), PaganiConfig::default());
    }

    #[test]
    fn estimated_cost_is_monotone_in_dim_and_digits() {
        // More dimensions cost more at a fixed tolerance…
        for dim in 2..8 {
            assert!(
                estimated_cost(dim + 1, Tolerances::rel(1e-4))
                    > estimated_cost(dim, Tolerances::rel(1e-4)),
                "dim {dim}"
            );
        }
        // …and tighter tolerances cost more at a fixed dimension.
        assert!(
            estimated_cost(4, Tolerances::rel(1e-6)) > estimated_cost(4, Tolerances::rel(1e-3))
        );
        assert!(estimated_cost(4, Tolerances::rel(1e-3)).is_finite());
        // The extremes stay finite (MC accepts any dimension): an infinite
        // charge would retire as `inf - inf = NaN` and poison least-loaded
        // dispatch forever, so the model must saturate instead.
        for dim in [30, 147, 1000, usize::MAX >> 32] {
            let cost = estimated_cost(dim, Tolerances::rel(1e-12));
            assert!(cost.is_finite(), "dim {dim} produced {cost}");
            assert!(cost - cost == 0.0, "dim {dim}: charge/retire must cancel");
        }
        // Mixed-magnitude charge/retire cycles cancel exactly: costs are
        // integer-valued and range-bounded, so the outstanding-cost ledger
        // cannot drift negative through f64 absorption (the failure mode
        // where `huge + tiny == huge` but the later `-= tiny` still lands).
        let huge = estimated_cost(1000, Tolerances::rel(1e-12));
        let tiny = estimated_cost(2, Tolerances::rel(1e-1));
        let mut ledger = 0.0f64;
        ledger += huge;
        ledger += tiny;
        ledger -= huge;
        ledger -= tiny;
        assert_eq!(ledger, 0.0, "ledger drifted: {ledger}");
    }

    #[test]
    fn job_cost_uses_the_method_override_tolerances() {
        let loose = BatchJob::new(PaperIntegrand::f4(4));
        let job_default = estimated_job_cost(&loose, Tolerances::rel(1e-3));
        let job_tight_default = estimated_job_cost(&loose, Tolerances::rel(1e-8));
        assert!(job_tight_default > job_default);
    }

    #[test]
    fn round_robin_plan_is_a_pure_function_of_the_index() {
        let costs = vec![1.0; 7];
        assert_eq!(
            plan_dispatch(&costs, 3, DispatchMode::RoundRobin),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn cost_balanced_plan_beats_round_robin_makespan_on_a_skewed_batch() {
        // The adversarial mix for round-robin with 2 devices: heavy jobs on
        // even indices, trivial jobs on odd ones — round-robin piles every
        // heavy job onto device 0.
        let heavy = estimated_cost(5, Tolerances::rel(1e-4));
        let light = estimated_cost(2, Tolerances::rel(1e-3));
        let costs: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { heavy } else { light })
            .collect();
        let makespan = |plan: &[usize]| -> f64 {
            let mut per_lane = [0.0f64; 2];
            for (&lane, &cost) in plan.iter().zip(&costs) {
                per_lane[lane] += cost;
            }
            per_lane.iter().fold(0.0f64, |a, &b| a.max(b))
        };
        let rr = makespan(&plan_dispatch(&costs, 2, DispatchMode::RoundRobin));
        let balanced = makespan(&plan_dispatch(&costs, 2, DispatchMode::CostBalanced));
        assert!(
            balanced < 0.6 * rr,
            "cost-balanced makespan {balanced} must clearly beat round-robin {rr}"
        );
        // Sanity: both plans place every job.
        assert_eq!(
            plan_dispatch(&costs, 2, DispatchMode::CostBalanced).len(),
            16
        );
    }

    #[test]
    fn multi_device_service_batch_is_bit_identical_across_dispatch_modes() {
        let f4 = std::sync::Arc::new(PaperIntegrand::f4(3));
        let f3 = std::sync::Arc::new(PaperIntegrand::f3(4));
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    BatchJob::shared(f4.clone())
                } else {
                    BatchJob::shared(f3.clone())
                }
            })
            .collect();
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
        let mut per_mode = Vec::new();
        for mode in [DispatchMode::CostBalanced, DispatchMode::RoundRobin] {
            let service = MultiDeviceService::with_mode(devices(2), config.clone(), mode);
            assert_eq!(service.mode(), mode);
            let bits: Vec<u64> = service
                .integrate_batch(&jobs)
                .iter()
                .map(|o| o.result.estimate.to_bits())
                .collect();
            // All dispatched cost is retired once every handle has completed.
            assert!(service.outstanding_costs().iter().all(|&c| c.abs() < 1e-9));
            service.shutdown();
            per_mode.push(bits);
        }
        assert_eq!(
            per_mode[0], per_mode[1],
            "placement must never change a job's result on identical devices"
        );
    }

    #[test]
    fn streaming_submit_balances_outstanding_cost() {
        // Two lanes, four identical heavy submissions with nothing completing
        // in between (jobs are real, but dispatch happens immediately):
        // cost-balanced streaming must alternate lanes rather than pile up.
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
        let service = MultiDeviceService::new(devices(2), config);
        let handles: Vec<_> = (0..4)
            .map(|_| service.submit(BatchJob::new(PaperIntegrand::f4(3))))
            .collect();
        for handle in &handles {
            assert!(handle.wait().result.converged());
        }
        service.shutdown();
    }

    #[test]
    fn batch_shards_across_devices_and_matches_single_device_results() {
        let f4 = std::sync::Arc::new(PaperIntegrand::f4(3));
        let f3 = std::sync::Arc::new(PaperIntegrand::f3(3));
        let jobs = [
            BatchJob::shared(f4.clone()),
            BatchJob::shared(f3.clone()),
            BatchJob::shared(f4.clone()),
            BatchJob::shared(f3.clone()),
            BatchJob::shared(f4.clone()),
        ];
        let config = PaganiConfig::test_small(Tolerances::rel(1e-4));
        let multi = MultiDevicePagani::new(devices(2), config.clone());
        let outputs = multi.integrate_batch(&jobs);
        assert_eq!(outputs.len(), jobs.len());
        // Every output matches the same job run alone on an equivalent device.
        let lone_f4 = Pagani::new(devices(1).pop().unwrap(), config.clone()).integrate(f4.as_ref());
        let lone_f3 = Pagani::new(devices(1).pop().unwrap(), config).integrate(f3.as_ref());
        for (i, output) in outputs.iter().enumerate() {
            let reference = if i % 2 == 0 { &lone_f4 } else { &lone_f3 };
            assert_eq!(
                output.result.estimate.to_bits(),
                reference.result.estimate.to_bits(),
                "job {i} diverged from its single-device run"
            );
        }
    }

    #[test]
    fn empty_multi_device_batch_is_empty() {
        let multi = MultiDevicePagani::new(devices(2), PaganiConfig::default());
        assert!(multi.integrate_batch(&[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// §4.4 composition: on single-sign Genz integrands, integrating each
        /// slab to the full relative tolerance composes into the global
        /// tolerance (the Lemma 3.1 argument applied across devices) — for
        /// any device count and any integrand dimension.
        #[test]
        fn prop_slab_results_compose_to_the_global_tolerance(
            device_count in 1usize..5,
            dim in 2usize..4,
            family in 0usize..2,
        ) {
            let f = if family == 0 {
                PaperIntegrand::f4(dim)
            } else {
                PaperIntegrand::f3(dim)
            };
            let tol = 1e-3;
            let multi = MultiDevicePagani::new(
                devices(device_count),
                PaganiConfig::test_small(Tolerances::rel(tol)),
            )
            .integrate(&f);
            prop_assert!(multi.result.converged(), "{:?}", multi.result.termination);
            prop_assert_eq!(multi.per_device.len(), device_count);
            // The combined estimate is exactly the slab sum (same fold order).
            let slab_sum: f64 = multi.per_device.iter().map(|o| o.result.estimate).sum();
            prop_assert_eq!(slab_sum.to_bits(), multi.result.estimate.to_bits());
            // Every slab satisfied its own tolerance, and the composition
            // holds against the analytic reference.
            let true_err = multi.result.true_relative_error(f.reference_value());
            prop_assert!(true_err < tol, "true rel err {} vs {}", true_err, tol);
        }
    }
}
