//! Heuristic threshold classification (Algorithm 3 of the paper, §3.5.2–3.5.3).
//!
//! Relative-error filtering alone stalls at demanding tolerances: hardly any region
//! satisfies its own relative tolerance, so nothing is filtered, the region list
//! doubles every iteration and memory runs out before the error budget is met.  The
//! threshold classification finds an error-estimate cut-off such that finishing every
//! region below it
//!
//! * frees at least half of the region list (the *memory requirement*), and
//! * consumes at most a fraction `P_max` of the caller-supplied error budget
//!   (the *accuracy requirement*),
//!
//! searching between the minimum and maximum error estimate in a bisection-like
//! fashion.  `P_max` starts at 25 % and is relaxed by 10 percentage points every time
//! the search direction flips, up to 95 %; the number of direction changes is capped
//! to keep the search short.  If no acceptable threshold exists the original
//! classification is returned unchanged (unsuccessful filtering), which is how the
//! paper reports runs that ultimately exhaust memory.
//!
//! Two readings of the paper are normalised here so the search stays self-consistent
//! under repeated invocation:
//!
//! * The note that the threshold "decreases, allowing more regions to surpass it" when
//!   too few regions are discarded reads inverted; this implementation follows the
//!   direction that matches the published Figure 3 trace: too little memory freed →
//!   raise the threshold, too much error budget consumed → lower it.
//! * The error budget is supplied by the driver as the *remaining headroom* the frozen
//!   error may still grow into (`PAGANI` computes it from τ_rel·|v_tot|, the error
//!   already frozen, and a cap on how much of the headroom threshold filtering may
//!   consume over the whole run).  Because finished error can never be reduced again,
//!   this guarantees the frozen error never makes convergence impossible — the
//!   property §3.5.2 states the search must preserve — even when the classification is
//!   invoked on many consecutive iterations.

use crate::arena::ScratchArena;
use crate::classify::{ACTIVE, FINISHED};
use crate::trace::ThresholdProbe;

/// Result of a threshold classification attempt.
#[derive(Debug, Clone)]
pub struct ThresholdOutcome {
    /// Updated activity mask (1 = still active, 0 = finished).
    pub mask: Vec<u8>,
    /// Error estimate newly frozen by this classification (zero when unsuccessful).
    pub newly_committed_error: f64,
    /// Whether an acceptable threshold was found (if not, `mask` equals the input).
    pub successful: bool,
    /// The probes tried, for the Figure-3 trace.
    pub probes: Vec<ThresholdProbe>,
}

/// Tuning constants of the search (fixed in the paper; exposed for tests/ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    /// Initial fraction of the error budget the finished regions may consume.
    pub initial_budget_fraction: f64,
    /// Relaxation added to the budget fraction on every direction change.
    pub budget_relaxation: f64,
    /// Maximum budget fraction after relaxation.
    pub max_budget_fraction: f64,
    /// Minimum fraction of the processed regions that must be finished.
    pub min_finished_fraction: f64,
    /// Maximum number of search-direction changes before giving up.
    pub max_direction_changes: usize,
    /// Hard cap on probes (safety net).
    pub max_probes: usize,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        Self {
            initial_budget_fraction: 0.25,
            budget_relaxation: 0.10,
            max_budget_fraction: 0.95,
            min_finished_fraction: 0.5,
            max_direction_changes: 8,
            max_probes: 64,
        }
    }
}

/// Run the threshold classification.
///
/// * `mask` — the activity mask produced by the relative-error classification,
/// * `errors` — per-region (refined) error estimates for the regions processed this
///   iteration,
/// * `error_budget` — how much additional error estimate may be frozen without
///   jeopardising convergence (non-positive budgets return immediately),
/// * `iteration_error` — summed error estimate of the regions processed this iteration
///   (used for the initial average-error threshold),
/// * `arena` — scratch shelves the candidate masks are drawn from and returned
///   to, so the probe loop performs no per-probe allocations once the arena is
///   warm (the returned mask leaves the arena; the driver shelves it when the
///   generation retires).
///
/// The newly frozen error reported in the outcome counts only regions that flip from
/// active to finished; regions already finished by the relative-error classification
/// are not charged against the budget a second time.
///
/// # Panics
/// Panics if `mask` and `errors` have different lengths.
#[must_use]
pub fn threshold_classify(
    mask: &[u8],
    errors: &[f64],
    error_budget: f64,
    iteration_error: f64,
    policy: ThresholdPolicy,
    arena: &ScratchArena,
) -> ThresholdOutcome {
    assert_eq!(mask.len(), errors.len(), "mask/error length mismatch");
    let regions = mask.len();
    let unchanged = |probes: Vec<ThresholdProbe>| {
        let mut copy = arena.take_mask(regions);
        copy.extend_from_slice(mask);
        ThresholdOutcome {
            mask: copy,
            newly_committed_error: 0.0,
            successful: false,
            probes,
        }
    };
    if regions == 0 || error_budget <= 0.0 {
        return unchanged(Vec::new());
    }

    let (min_err, max_err) = errors
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &e| {
            (lo.min(e), hi.max(e))
        });

    let mut threshold = iteration_error / regions as f64; // average error estimate
    let mut budget_fraction = policy.initial_budget_fraction;
    let mut probes = Vec::new();
    let mut direction_changes = 0usize;
    let mut last_direction: Option<i8> = None;

    for _ in 0..policy.max_probes {
        // Apply the candidate threshold: a region is finished if it was already
        // finished or its error falls below the threshold.  The candidate mask
        // comes off the arena shelf, so repeated probes recycle one buffer.
        let mut candidate = arena.take_mask(regions);
        candidate.extend(mask.iter().zip(errors).map(|(&m, &e)| {
            if m == FINISHED || e < threshold {
                FINISHED
            } else {
                ACTIVE
            }
        }));
        let finished_count = candidate.iter().filter(|&&m| m == FINISHED).count();
        // Error newly frozen by the threshold (previously-active regions only).
        let committed_error: f64 = candidate
            .iter()
            .zip(mask)
            .zip(errors)
            .filter(|((&c, &m), _)| c == FINISHED && m == ACTIVE)
            .map(|(_, &e)| e)
            .sum();

        let fraction_finished = finished_count as f64 / regions as f64;
        let budget_used = committed_error / error_budget;
        let memory_ok = fraction_finished > policy.min_finished_fraction;
        let accuracy_ok = committed_error <= budget_fraction * error_budget;
        let accepted = memory_ok && accuracy_ok;

        probes.push(ThresholdProbe {
            threshold,
            fraction_finished,
            budget_fraction: budget_used,
            accepted,
        });

        if accepted {
            return ThresholdOutcome {
                mask: candidate,
                newly_committed_error: committed_error,
                successful: true,
                probes,
            };
        }
        arena.put_mask(candidate);

        // Decide the search direction: accuracy violations dominate (they make
        // convergence impossible), otherwise free more memory.
        let direction: i8 = if !accuracy_ok {
            -1 // too much error frozen → lower the threshold
        } else {
            1 // too little memory freed → raise the threshold
        };
        if let Some(prev) = last_direction {
            if prev != direction {
                direction_changes += 1;
                budget_fraction =
                    (budget_fraction + policy.budget_relaxation).min(policy.max_budget_fraction);
                if direction_changes > policy.max_direction_changes {
                    break;
                }
            }
        }
        last_direction = Some(direction);

        // Move half-way towards the relevant extreme of the error estimates.
        threshold = if direction < 0 {
            0.5 * (threshold + min_err)
        } else {
            0.5 * (threshold + max_err)
        };
    }

    unchanged(probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_active(n: usize) -> Vec<u8> {
        vec![ACTIVE; n]
    }

    #[test]
    fn empty_input_is_a_noop() {
        let out = threshold_classify(
            &[],
            &[],
            1.0,
            0.5,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(!out.successful);
        assert!(out.mask.is_empty());
        assert_eq!(out.newly_committed_error, 0.0);
    }

    #[test]
    fn exhausted_budget_returns_unchanged() {
        let mask = all_active(4);
        let out = threshold_classify(
            &mask,
            &[1e-9; 4],
            0.0,
            4e-9,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(!out.successful);
        assert_eq!(out.mask, mask);
    }

    #[test]
    fn bimodal_errors_are_split_at_an_acceptable_threshold() {
        // 900 regions with tiny errors, 100 with large errors; freezing the tiny ones
        // frees 90 % of memory and uses a negligible slice of the budget.
        let mut errors = vec![1e-12; 900];
        errors.extend(vec![1e-3; 100]);
        let mask = all_active(1000);
        let iteration_error: f64 = errors.iter().sum();
        let out = threshold_classify(
            &mask,
            &errors,
            1e-6,
            iteration_error,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(out.successful);
        let finished = out.mask.iter().filter(|&&m| m == FINISHED).count();
        assert_eq!(finished, 900);
        // Large-error regions must all remain active.
        assert!(out.mask[900..].iter().all(|&m| m == ACTIVE));
        assert!((out.newly_committed_error - 900.0 * 1e-12).abs() < 1e-15);
        assert!(!out.probes.is_empty());
    }

    #[test]
    fn uniform_large_errors_cannot_be_filtered() {
        // Every region carries a large error: any 50 %+ cut would blow the budget, so
        // the search must fail and leave the mask untouched.
        let errors = vec![1e-2; 64];
        let mask = all_active(64);
        let out = threshold_classify(
            &mask,
            &errors,
            1e-6,
            0.64,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(!out.successful);
        assert_eq!(out.mask, mask);
        assert_eq!(out.newly_committed_error, 0.0);
    }

    #[test]
    fn already_finished_regions_are_not_charged_again() {
        // Region 0 is already finished with a large error: it must not be counted
        // against the budget, and the small active regions can still be frozen.
        let mask = vec![FINISHED, ACTIVE, ACTIVE, ACTIVE];
        let errors = vec![5e-3, 1e-12, 1e-12, 1e-12];
        let iteration_error: f64 = errors.iter().sum();
        let out = threshold_classify(
            &mask,
            &errors,
            1e-6,
            iteration_error,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(out.successful);
        assert_eq!(out.mask, vec![FINISHED; 4]);
        assert!((out.newly_committed_error - 3e-12).abs() < 1e-18);
    }

    #[test]
    fn probes_record_the_search_trajectory() {
        let mut errors = vec![1e-10; 800];
        errors.extend(vec![5e-4; 200]);
        let mask = all_active(1000);
        let iteration_error: f64 = errors.iter().sum();
        let out = threshold_classify(
            &mask,
            &errors,
            1e-5,
            iteration_error,
            ThresholdPolicy::default(),
            &ScratchArena::new(),
        );
        assert!(out.successful);
        let last = out.probes.last().unwrap();
        assert!(last.accepted);
        // All earlier probes were rejected.
        assert!(out.probes[..out.probes.len() - 1]
            .iter()
            .all(|p| !p.accepted));
    }

    #[test]
    fn probes_recycle_arena_storage_instead_of_allocating() {
        // A search that needs several probes before accepting (the first
        // probes blow the initial budget fraction, then freeing only the tiny
        // tier misses the memory requirement, and only after the relaxation
        // does the mid tier fit): every candidate mask after the first must
        // come off the arena shelf, so the miss counter stays at one however
        // many probes run.
        let mut errors = vec![1e-10; 400];
        errors.extend(vec![1e-5; 300]);
        errors.extend(vec![1e-3; 300]);
        let mask = all_active(1000);
        let iteration_error: f64 = errors.iter().sum();
        let arena = ScratchArena::new();
        let out = threshold_classify(
            &mask,
            &errors,
            1e-2,
            iteration_error,
            ThresholdPolicy::default(),
            &arena,
        );
        assert!(out.successful);
        assert!(out.probes.len() > 1, "want a multi-probe search");
        assert_eq!(
            arena.reuse_misses(),
            1,
            "only the very first probe may allocate"
        );
        assert_eq!(arena.reuse_hits(), out.probes.len() - 1);
        // With the accepted mask shelved again, a second search allocates
        // nothing at all.
        arena.put_mask(out.mask);
        let misses_before = arena.reuse_misses();
        let again = threshold_classify(
            &mask,
            &errors,
            1e-2,
            iteration_error,
            ThresholdPolicy::default(),
            &arena,
        );
        assert!(again.successful);
        assert_eq!(arena.reuse_misses(), misses_before, "warm arena: no allocs");
    }

    #[test]
    fn repeated_invocations_stay_within_a_shrinking_budget() {
        // Drive the search the way the PAGANI driver does: each successful call
        // shrinks the remaining budget; the cumulative frozen error must never exceed
        // the initial headroom.
        let headroom = 1e-4f64;
        let mut frozen = 0.0f64;
        for round in 0..20 {
            // Errors shrink as subdivision refines the regions.
            let small = 1e-9 / (1 << round) as f64;
            let large = 1e-5;
            let mut errors = vec![small; 700];
            errors.extend(vec![large; 300]);
            let mask = all_active(1000);
            let iteration_error: f64 = errors.iter().sum();
            let out = threshold_classify(
                &mask,
                &errors,
                headroom - frozen,
                iteration_error,
                ThresholdPolicy::default(),
                &ScratchArena::new(),
            );
            if out.successful {
                frozen += out.newly_committed_error;
            }
            assert!(frozen <= headroom, "frozen {frozen} exceeded headroom");
        }
        assert!(
            frozen > 0.0,
            "at least one round should have frozen something"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_successful_filtering_respects_both_requirements(
            small in proptest::collection::vec(1e-12f64..1e-9, 50..400),
            large in proptest::collection::vec(1e-4f64..1e-2, 1..50),
            budget in 1e-7f64..1e-5,
        ) {
            let mut errors = small.clone();
            errors.extend(large.iter().copied());
            let mask = all_active(errors.len());
            let iteration_error: f64 = errors.iter().sum();
            let policy = ThresholdPolicy::default();
            let out = threshold_classify(&mask, &errors, budget, iteration_error, policy, &ScratchArena::new());
            if out.successful {
                let finished: Vec<usize> = out.mask.iter().enumerate().filter(|(_, &m)| m == FINISHED).map(|(i, _)| i).collect();
                prop_assert!(finished.len() as f64 > policy.min_finished_fraction * errors.len() as f64);
                prop_assert!(out.newly_committed_error <= policy.max_budget_fraction * budget + 1e-18);
            } else {
                prop_assert_eq!(out.mask, mask);
                prop_assert_eq!(out.newly_committed_error, 0.0);
            }
        }

        #[test]
        fn prop_mask_only_moves_from_active_to_finished(
            errors in proptest::collection::vec(1e-12f64..1e-2, 10..300),
            seed in 0u64..u64::MAX,
            budget in 1e-9f64..1e-2,
        ) {
            let mask: Vec<u8> = (0..errors.len()).map(|i| ((seed >> (i % 61)) & 1) as u8).collect();
            let iteration_error: f64 = errors.iter().sum();
            let out = threshold_classify(&mask, &errors, budget, iteration_error, ThresholdPolicy::default(), &ScratchArena::new());
            for (before, after) in mask.iter().zip(&out.mask) {
                // A region can be newly finished but never resurrected.
                prop_assert!(*after <= *before);
            }
        }
    }
}
