//! The reusable scratch arena behind allocation-recycled execution.
//!
//! Every PAGANI iteration materialises a handful of per-generation arrays —
//! region geometry, integral and error estimates, split axes, classification
//! masks — and the original driver allocated all of them afresh each
//! generation.  A [`ScratchArena`] is a set of typed [`VecShelf`]s that those
//! arrays are *retired* into and *taken* back out of, so one integration run
//! recycles its storage across iterations and — when the arena is owned by a
//! batch-runner worker — across jobs.
//!
//! Recycling is invisible to the algorithm: taken vectors are always cleared
//! before refilling, and retired device buffers release their pool charge on
//! the way to the shelf (see [`VecShelf`]), so device-memory accounting and
//! every memory-pressure heuristic behave exactly as they would without reuse.
//! Results are therefore bit-identical with and without an arena, which is
//! what lets `integrate_batch` guarantee batch/sequential equivalence.

use pagani_device::{DeviceBuffer, DeviceResult, MemoryPool, VecShelf};

/// Typed shelves recycling the per-generation arrays of the PAGANI driver.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Geometry arrays and per-region estimates (`f64`).
    f64s: VecShelf<f64>,
    /// Split-axis lists (`usize`).
    axes: VecShelf<usize>,
    /// Classification masks (`u8`).
    masks: VecShelf<u8>,
}

impl ScratchArena {
    /// Create an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Take an empty `f64` vector with at least `capacity` reserved.
    #[must_use]
    pub fn take_f64(&self, capacity: usize) -> Vec<f64> {
        self.f64s.take(capacity)
    }

    /// Shelve `f64` storage for reuse.
    pub fn put_f64(&self, storage: Vec<f64>) {
        self.f64s.put(storage);
    }

    /// Take an empty axis vector with at least `capacity` reserved.
    #[must_use]
    pub fn take_axes(&self, capacity: usize) -> Vec<usize> {
        self.axes.take(capacity)
    }

    /// Shelve axis storage for reuse.
    pub fn put_axes(&self, storage: Vec<usize>) {
        self.axes.put(storage);
    }

    /// Take an empty mask vector with at least `capacity` reserved.
    #[must_use]
    pub fn take_mask(&self, capacity: usize) -> Vec<u8> {
        self.masks.take(capacity)
    }

    /// Shelve mask storage for reuse.
    pub fn put_mask(&self, storage: Vec<u8>) {
        self.masks.put(storage);
    }

    /// Charge a filled vector against `pool` as a device buffer.
    ///
    /// # Errors
    /// Returns `OutOfDeviceMemory` if the backing bytes do not fit the pool.
    pub fn adopt_f64(&self, pool: &MemoryPool, data: Vec<f64>) -> DeviceResult<DeviceBuffer<f64>> {
        pool.adopt_vec(data)
    }

    /// Retire a device buffer: release its pool charge, shelve its storage.
    pub fn retire_f64(&self, buffer: DeviceBuffer<f64>) {
        self.f64s.retire(buffer);
    }

    /// Total `take` calls served from recycled storage, across all shelves.
    #[must_use]
    pub fn reuse_hits(&self) -> usize {
        self.f64s.reuse_hits() + self.axes.reuse_hits() + self.masks.reuse_hits()
    }

    /// Total `take` calls that allocated fresh storage, across all shelves.
    #[must_use]
    pub fn reuse_misses(&self) -> usize {
        self.f64s.reuse_misses() + self.axes.reuse_misses() + self.masks.reuse_misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_recycles_across_types_independently() {
        let arena = ScratchArena::new();
        let mut v = arena.take_f64(64);
        v.resize(64, 1.0);
        arena.put_f64(v);
        let mut m = arena.take_mask(64);
        m.resize(64, 1);
        arena.put_mask(m);
        assert_eq!(arena.reuse_misses(), 2);
        let _v = arena.take_f64(32);
        let _m = arena.take_mask(10);
        let _a = arena.take_axes(10);
        assert_eq!(
            arena.reuse_hits(),
            2,
            "f64 and mask shelves hit; axes missed"
        );
        assert_eq!(arena.reuse_misses(), 3);
    }

    #[test]
    fn retired_device_buffers_feed_later_takes() {
        let pool = MemoryPool::new(1 << 20);
        let arena = ScratchArena::new();
        let mut data = arena.take_f64(128);
        data.resize(128, 0.5);
        let buf = arena.adopt_f64(&pool, data).unwrap();
        assert_eq!(pool.usage().used, 1024);
        arena.retire_f64(buf);
        assert_eq!(pool.usage().used, 0, "retired storage is uncharged");
        let reused = arena.take_f64(100);
        assert!(reused.capacity() >= 128);
        assert_eq!(arena.reuse_hits(), 1);
    }
}
