//! The `evaluate` kernel: apply the Genz–Malik rule to every region in parallel.
//!
//! This is the kernel that dominates PAGANI's run time (§4.3.2 reports it at more than
//! 90 % of execution time).  One simulated block evaluates one region — the same 1-1
//! block/region mapping the CUDA implementation uses — and produces the region's
//! integral estimate, raw error estimate and recommended split axis.
//!
//! Two layers of storage are recycled on the hot path: the per-generation output
//! arrays come from a [`ScratchArena`] (see [`evaluate_all_in`]), and the per-block
//! rule scratch ([`EvalScratch`] plus the centre/half-width staging buffers) is
//! cached per worker thread, mirroring how a CUDA block reuses its shared-memory
//! scratch across kernel launches instead of re-allocating it per region.

use std::cell::RefCell;
use std::collections::HashMap;

use pagani_device::{Device, DeviceResult};
use pagani_quadrature::{EvalScratch, GenzMalik, Integrand};

use crate::arena::ScratchArena;
use crate::region_list::RegionList;

/// Per-generation output of the evaluate kernel (PAGANI's `V`, `E` and `K` lists).
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Integral estimate per region.
    pub integrals: Vec<f64>,
    /// Raw (embedded-rule) error estimate per region.
    pub errors: Vec<f64>,
    /// Recommended split axis per region.
    pub split_axes: Vec<usize>,
    /// Total number of integrand evaluations performed by the kernel.
    pub function_evaluations: u64,
}

impl Evaluation {
    /// Shelve this generation's arrays into `arena` for the next one.
    pub fn retire(self, arena: &ScratchArena) {
        arena.put_f64(self.integrals);
        arena.put_f64(self.errors);
        arena.put_axes(self.split_axes);
    }
}

/// Per-thread rule scratch, keyed by dimension.  Worker threads are
/// persistent, so each worker allocates this once per dimension and reuses it
/// for every region it ever evaluates.
struct BlockScratch {
    scratch: EvalScratch,
    center: Vec<f64>,
    halfwidth: Vec<f64>,
}

impl BlockScratch {
    fn new(dim: usize) -> Self {
        Self {
            scratch: EvalScratch::new(dim),
            center: vec![0.0; dim],
            halfwidth: vec![0.0; dim],
        }
    }
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<HashMap<usize, BlockScratch>> = RefCell::new(HashMap::new());
}

/// Run `body` with this thread's cached scratch for `dim`, creating it on
/// first use.  The scratch is taken out of the cache for the duration of the
/// call (and re-inserted afterwards), so a re-entrant evaluation on the same
/// thread degrades to a fresh allocation instead of a borrow panic.
fn with_block_scratch<R>(dim: usize, body: impl FnOnce(&mut BlockScratch) -> R) -> R {
    let mut block = BLOCK_SCRATCH
        .with(|cache| cache.borrow_mut().remove(&dim))
        .unwrap_or_else(|| BlockScratch::new(dim));
    let out = body(&mut block);
    BLOCK_SCRATCH.with(|cache| cache.borrow_mut().insert(dim, block));
    out
}

/// Evaluate all regions of `list` with `rule`, one block per region.
///
/// # Errors
/// Propagates launch errors from the device (an empty list is rejected as an empty
/// launch, mirroring a zero-block CUDA launch).
pub fn evaluate_all<F: Integrand + ?Sized>(
    device: &Device,
    rule: &GenzMalik,
    integrand: &F,
    list: &RegionList,
) -> DeviceResult<Evaluation> {
    evaluate_all_in(device, rule, integrand, list, &ScratchArena::default())
}

/// [`evaluate_all`] drawing the output arrays from `arena`.
///
/// # Errors
/// Propagates launch errors from the device.
pub fn evaluate_all_in<F: Integrand + ?Sized>(
    device: &Device,
    rule: &GenzMalik,
    integrand: &F,
    list: &RegionList,
    arena: &ScratchArena,
) -> DeviceResult<Evaluation> {
    let dim = list.dim();
    debug_assert_eq!(rule.dim(), dim);
    let estimates = device.launch_map("evaluate", list.len(), |ctx| {
        with_block_scratch(dim, |block| {
            list.centered_view(ctx.block_idx, &mut block.center, &mut block.halfwidth);
            rule.evaluate_centered(
                integrand,
                &block.center,
                &block.halfwidth,
                &mut block.scratch,
            )
        })
    })?;

    let mut integrals = arena.take_f64(estimates.len());
    let mut errors = arena.take_f64(estimates.len());
    let mut split_axes = arena.take_axes(estimates.len());
    let mut function_evaluations = 0u64;
    for est in estimates {
        integrals.push(est.integral);
        errors.push(est.error);
        split_axes.push(est.split_axis);
        function_evaluations += est.evaluations as u64;
    }
    Ok(Evaluation {
        integrals,
        errors,
        split_axes,
        function_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::Device;
    use pagani_quadrature::{FnIntegrand, Region};

    fn setup(dim: usize, d: usize) -> (Device, RegionList, GenzMalik) {
        let device = Device::test_small();
        let list = RegionList::initial_split(&Region::unit_cube(dim), d, device.memory()).unwrap();
        let rule = GenzMalik::new(dim);
        (device, list, rule)
    }

    #[test]
    fn constant_integrand_sums_to_volume() {
        let (device, list, rule) = setup(3, 4);
        let f = FnIntegrand::new(3, |_: &[f64]| 2.0);
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        assert_eq!(eval.integrals.len(), 64);
        let total: f64 = eval.integrals.iter().sum();
        assert!((total - 2.0).abs() < 1e-10);
        assert!(eval.errors.iter().all(|&e| e < 1e-10));
        assert_eq!(eval.function_evaluations, (rule.num_points() * 64) as u64);
    }

    #[test]
    fn per_region_estimates_sum_to_global_estimate_for_smooth_integrand() {
        let (device, list, rule) = setup(2, 8);
        let f = FnIntegrand::new(2, |x: &[f64]| (3.0 * x[0]).sin() * (2.0 * x[1]).cos() + 1.0);
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        let total: f64 = eval.integrals.iter().sum();
        // Analytic: ∫ sin(3x)dx ∫ cos(2y)dy + 1 = ((1-cos3)/3)(sin2/2) + 1
        let exact = (1.0 - 3.0f64.cos()) / 3.0 * (2.0f64.sin() / 2.0) + 1.0;
        assert!((total - exact).abs() < 1e-8, "{total} vs {exact}");
    }

    #[test]
    fn split_axis_points_at_the_peaked_dimension() {
        let (device, list, rule) = setup(3, 2);
        // Sharp variation along axis 2 only.
        let f = FnIntegrand::new(3, |x: &[f64]| (-200.0 * (x[2] - 0.5).powi(2)).exp());
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        let votes = eval.split_axes.iter().filter(|&&a| a == 2).count();
        assert!(
            votes >= eval.split_axes.len() / 2,
            "most regions should want to split axis 2, got {votes}/{}",
            eval.split_axes.len()
        );
    }

    #[test]
    fn evaluation_is_profiled_under_the_evaluate_kernel() {
        let (device, list, rule) = setup(2, 4);
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[1]);
        let _ = evaluate_all(&device, &rule, &f, &list).unwrap();
        let timing = device.profile().kernel("evaluate").unwrap();
        assert_eq!(timing.launches, 1);
        assert_eq!(timing.blocks, 16);
    }

    #[test]
    fn arena_path_is_bit_identical_and_recycles() {
        let (device, list, rule) = setup(3, 4);
        let f = FnIntegrand::new(3, |x: &[f64]| (7.0 * x[0]).sin() + x[1] * x[2]);
        let plain = evaluate_all(&device, &rule, &f, &list).unwrap();
        let arena = ScratchArena::new();
        let first = evaluate_all_in(&device, &rule, &f, &list, &arena).unwrap();
        assert_eq!(plain.integrals, first.integrals);
        assert_eq!(plain.errors, first.errors);
        assert_eq!(plain.split_axes, first.split_axes);
        first.retire(&arena);
        let second = evaluate_all_in(&device, &rule, &f, &list, &arena).unwrap();
        assert_eq!(plain.integrals, second.integrals);
        assert!(
            arena.reuse_hits() >= 3,
            "retired arrays must be reused, hits {}",
            arena.reuse_hits()
        );
    }
}
