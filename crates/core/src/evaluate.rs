//! The `evaluate` kernel: apply the Genz–Malik rule to every region in parallel.
//!
//! This is the kernel that dominates PAGANI's run time (§4.3.2 reports it at more than
//! 90 % of execution time).  One simulated block evaluates one region — the same 1-1
//! block/region mapping the CUDA implementation uses — and produces the region's
//! integral estimate, raw error estimate and recommended split axis.
//!
//! Since the backend redesign the whole generation goes through **one batched
//! structure-of-arrays launch**: the region list's centres and half-widths are
//! packed into contiguous [`RegionPack`] buffers, every block reads its region
//! straight out of the pack and writes its [`EVAL_LANES`] result values into its
//! own slot of one flat output buffer, and the host unpacks the lanes in block
//! order.  No per-block return values, no per-launch `Vec` of estimates — the
//! same flat `dRegions`/`dRegionsLength` idiom the CUDA implementation uses.
//!
//! Two layers of storage are recycled on the hot path: the pack, the lane buffer
//! and the per-generation output arrays come from a [`ScratchArena`] (see
//! [`evaluate_all_in`]), and the per-block rule scratch ([`EvalScratch`]) is
//! cached per worker thread, mirroring how a CUDA block reuses its shared-memory
//! scratch across kernel launches instead of re-allocating it per region.

use std::cell::RefCell;
use std::collections::HashMap;

use pagani_device::{Device, DeviceResult};
use pagani_quadrature::{EvalScratch, GenzMalik, Integrand};

use crate::arena::ScratchArena;
use crate::region_list::RegionList;

/// Output lanes per block of the batched `evaluate` launch: integral estimate,
/// raw error estimate, split axis and evaluation count (the two integer lanes
/// ride in `f64` values; both are far below 2^53, so the round trip is exact).
pub const EVAL_LANES: usize = 4;

/// A generation of regions packed into contiguous centre/half-width arrays —
/// the structure-of-arrays input of the batched `evaluate` launch.
///
/// Layout is region-major like [`RegionList`]: region `i`'s centre occupies
/// `centers[i*dim .. (i+1)*dim]`.  The arrays are taken from (and retired to)
/// a [`ScratchArena`], so steady-state generations allocate nothing.
#[derive(Debug)]
pub struct RegionPack {
    centers: Vec<f64>,
    halfwidths: Vec<f64>,
    len: usize,
    dim: usize,
}

impl RegionPack {
    /// Pack `list` into contiguous centre/half-width buffers drawn from
    /// `arena`.  The per-element arithmetic is exactly
    /// [`RegionList::centered_view`]'s, so a packed centre is bit-identical
    /// to the scalar path's.
    #[must_use]
    pub fn pack(list: &RegionList, arena: &ScratchArena) -> Self {
        let values = list.len() * list.dim();
        let mut centers = arena.take_f64(values);
        let mut halfwidths = arena.take_f64(values);
        for (&left, &length) in list.lefts().iter().zip(list.lengths()) {
            let halfwidth = 0.5 * length;
            halfwidths.push(halfwidth);
            centers.push(left + halfwidth);
        }
        Self {
            centers,
            halfwidths,
            len: list.len(),
            dim: list.dim(),
        }
    }

    /// Number of packed regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the packed regions.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centre of region `i`.
    #[must_use]
    pub fn center_of(&self, i: usize) -> &[f64] {
        &self.centers[i * self.dim..(i + 1) * self.dim]
    }

    /// Half-widths of region `i`.
    #[must_use]
    pub fn halfwidth_of(&self, i: usize) -> &[f64] {
        &self.halfwidths[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat centre array, region-major.
    #[must_use]
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// The whole flat half-width array, region-major.
    #[must_use]
    pub fn halfwidths(&self) -> &[f64] {
        &self.halfwidths
    }

    /// Shelve the pack's buffers into `arena` for the next generation.
    pub fn retire(self, arena: &ScratchArena) {
        arena.put_f64(self.centers);
        arena.put_f64(self.halfwidths);
    }
}

/// Per-generation output of the evaluate kernel (PAGANI's `V`, `E` and `K` lists).
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Integral estimate per region.
    pub integrals: Vec<f64>,
    /// Raw (embedded-rule) error estimate per region.
    pub errors: Vec<f64>,
    /// Recommended split axis per region.
    pub split_axes: Vec<usize>,
    /// Total number of integrand evaluations performed by the kernel.
    pub function_evaluations: u64,
}

impl Evaluation {
    /// Shelve this generation's arrays into `arena` for the next one.
    pub fn retire(self, arena: &ScratchArena) {
        arena.put_f64(self.integrals);
        arena.put_f64(self.errors);
        arena.put_axes(self.split_axes);
    }
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<HashMap<usize, EvalScratch>> = RefCell::new(HashMap::new());
}

/// Run `body` with this thread's cached rule scratch for `dim`, creating it on
/// first use.  The scratch is taken out of the cache for the duration of the
/// call (and re-inserted afterwards), so a re-entrant evaluation on the same
/// thread degrades to a fresh allocation instead of a borrow panic.
fn with_block_scratch<R>(dim: usize, body: impl FnOnce(&mut EvalScratch) -> R) -> R {
    let mut scratch = BLOCK_SCRATCH
        .with(|cache| cache.borrow_mut().remove(&dim))
        .unwrap_or_else(|| EvalScratch::new(dim));
    let out = body(&mut scratch);
    BLOCK_SCRATCH.with(|cache| cache.borrow_mut().insert(dim, scratch));
    out
}

/// Evaluate all regions of `list` with `rule`, one block per region.
///
/// # Errors
/// Propagates launch errors from the device (an empty list is rejected as an empty
/// launch, mirroring a zero-block CUDA launch).
pub fn evaluate_all<F: Integrand + ?Sized>(
    device: &Device,
    rule: &GenzMalik,
    integrand: &F,
    list: &RegionList,
) -> DeviceResult<Evaluation> {
    evaluate_all_in(device, rule, integrand, list, &ScratchArena::default())
}

/// [`evaluate_all`] drawing the pack, lane and output arrays from `arena`:
/// pack the generation into a [`RegionPack`], issue **one** batched
/// [`Device::launch_batch`] over it, and unpack the flat lanes in block order.
///
/// # Errors
/// Propagates launch errors from the device.
pub fn evaluate_all_in<F: Integrand + ?Sized>(
    device: &Device,
    rule: &GenzMalik,
    integrand: &F,
    list: &RegionList,
    arena: &ScratchArena,
) -> DeviceResult<Evaluation> {
    let dim = list.dim();
    debug_assert_eq!(rule.dim(), dim);
    let count = list.len();
    let pack = RegionPack::pack(list, arena);
    let mut lanes = arena.take_f64(count * EVAL_LANES);
    lanes.resize(count * EVAL_LANES, 0.0);
    let launched = device.launch_batch("evaluate", count, EVAL_LANES, &mut lanes, |ctx, out| {
        let i = ctx.block_idx;
        with_block_scratch(dim, |scratch| {
            let est =
                rule.evaluate_centered(integrand, pack.center_of(i), pack.halfwidth_of(i), scratch);
            out[0] = est.integral;
            out[1] = est.error;
            out[2] = est.split_axis as f64;
            out[3] = est.evaluations as f64;
        });
    });
    pack.retire(arena);
    if let Err(err) = launched {
        arena.put_f64(lanes);
        return Err(err);
    }

    let mut integrals = arena.take_f64(count);
    let mut errors = arena.take_f64(count);
    let mut split_axes = arena.take_axes(count);
    let mut function_evaluations = 0u64;
    for slot in lanes.chunks_exact(EVAL_LANES) {
        integrals.push(slot[0]);
        errors.push(slot[1]);
        split_axes.push(slot[2] as usize);
        function_evaluations += slot[3] as u64;
    }
    arena.put_f64(lanes);
    Ok(Evaluation {
        integrals,
        errors,
        split_axes,
        function_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::Device;
    use pagani_quadrature::{FnIntegrand, Region};

    fn setup(dim: usize, d: usize) -> (Device, RegionList, GenzMalik) {
        let device = Device::test_small();
        let list = RegionList::initial_split(&Region::unit_cube(dim), d, device.memory()).unwrap();
        let rule = GenzMalik::new(dim);
        (device, list, rule)
    }

    #[test]
    fn constant_integrand_sums_to_volume() {
        let (device, list, rule) = setup(3, 4);
        let f = FnIntegrand::new(3, |_: &[f64]| 2.0);
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        assert_eq!(eval.integrals.len(), 64);
        let total: f64 = eval.integrals.iter().sum();
        assert!((total - 2.0).abs() < 1e-10);
        assert!(eval.errors.iter().all(|&e| e < 1e-10));
        assert_eq!(eval.function_evaluations, (rule.num_points() * 64) as u64);
    }

    #[test]
    fn per_region_estimates_sum_to_global_estimate_for_smooth_integrand() {
        let (device, list, rule) = setup(2, 8);
        let f = FnIntegrand::new(2, |x: &[f64]| (3.0 * x[0]).sin() * (2.0 * x[1]).cos() + 1.0);
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        let total: f64 = eval.integrals.iter().sum();
        // Analytic: ∫ sin(3x)dx ∫ cos(2y)dy + 1 = ((1-cos3)/3)(sin2/2) + 1
        let exact = (1.0 - 3.0f64.cos()) / 3.0 * (2.0f64.sin() / 2.0) + 1.0;
        assert!((total - exact).abs() < 1e-8, "{total} vs {exact}");
    }

    #[test]
    fn split_axis_points_at_the_peaked_dimension() {
        let (device, list, rule) = setup(3, 2);
        // Sharp variation along axis 2 only.
        let f = FnIntegrand::new(3, |x: &[f64]| (-200.0 * (x[2] - 0.5).powi(2)).exp());
        let eval = evaluate_all(&device, &rule, &f, &list).unwrap();
        let votes = eval.split_axes.iter().filter(|&&a| a == 2).count();
        assert!(
            votes >= eval.split_axes.len() / 2,
            "most regions should want to split axis 2, got {votes}/{}",
            eval.split_axes.len()
        );
    }

    #[test]
    fn evaluation_is_profiled_under_the_evaluate_kernel() {
        let (device, list, rule) = setup(2, 4);
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] * x[1]);
        let _ = evaluate_all(&device, &rule, &f, &list).unwrap();
        let timing = device.profile().kernel("evaluate").unwrap();
        assert_eq!(timing.launches, 1);
        assert_eq!(timing.blocks, 16);
    }

    #[test]
    fn pack_matches_centered_view_bit_for_bit() {
        let (device, _, _) = setup(2, 2);
        let regions = [
            Region::new(vec![0.25, -3.0, 10.0], vec![0.75, 4.5, 10.125]),
            Region::new(vec![-1e-9, 0.0, -5.5], vec![2e-9, 0.1, -2.25]),
        ];
        let list = RegionList::from_regions(&regions, device.memory()).unwrap();
        let arena = ScratchArena::new();
        let pack = RegionPack::pack(&list, &arena);
        assert_eq!((pack.len(), pack.dim()), (2, 3));
        let mut center = vec![0.0; 3];
        let mut halfwidth = vec![0.0; 3];
        for i in 0..list.len() {
            list.centered_view(i, &mut center, &mut halfwidth);
            for axis in 0..3 {
                assert_eq!(pack.center_of(i)[axis].to_bits(), center[axis].to_bits());
                assert_eq!(
                    pack.halfwidth_of(i)[axis].to_bits(),
                    halfwidth[axis].to_bits()
                );
            }
        }
        assert_eq!(pack.centers().len(), 6);
        assert_eq!(pack.halfwidths().len(), 6);
        pack.retire(&arena);
    }

    #[test]
    fn arena_path_is_bit_identical_and_recycles() {
        let (device, list, rule) = setup(3, 4);
        let f = FnIntegrand::new(3, |x: &[f64]| (7.0 * x[0]).sin() + x[1] * x[2]);
        let plain = evaluate_all(&device, &rule, &f, &list).unwrap();
        let arena = ScratchArena::new();
        let first = evaluate_all_in(&device, &rule, &f, &list, &arena).unwrap();
        assert_eq!(plain.integrals, first.integrals);
        assert_eq!(plain.errors, first.errors);
        assert_eq!(plain.split_axes, first.split_axes);
        first.retire(&arena);
        let second = evaluate_all_in(&device, &rule, &f, &list, &arena).unwrap();
        assert_eq!(plain.integrals, second.integrals);
        assert!(
            arena.reuse_hits() >= 3,
            "retired arrays must be reused, hits {}",
            arena.reuse_hits()
        );
    }
}
