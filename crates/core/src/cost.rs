//! The cost model behind dispatch and admission: a static Genz–Malik formula
//! that *learns* from measured wall times.
//!
//! Two predictions are answered here, both keyed by what a job *is* rather
//! than what it does:
//!
//! * **Dispatch weight** ([`CostModel::weigh_job`], [`estimated_cost`]) — a
//!   unitless relative weight used by the multi-device dispatcher's
//!   outstanding-cost ledger.  Only orderings and ratios matter.
//! * **Time prediction** ([`CostModel::predict_job`]) — an estimated wall
//!   time in real units, used by deadline-aware admission
//!   ([`crate::IntegrationService::try_submit`]) to refuse jobs whose
//!   deadline cannot be met at the current backlog.
//!
//! A fresh model answers both from the static formula alone (time
//! predictions start as `None` — admission is optimistic until the model has
//! seen real work).  Every completed, uncancelled job feeds its measured
//! wall time back through [`CostModel::record_job`] into a per-`(family,
//! dim, digits)` bucket ([`CostKey`]) holding an exponentially-weighted
//! moving average ([`Ewma`]) of observed wall times, plus one cross-bucket
//! *calibration* EWMA of microseconds per static cost unit — so even a
//! `(family, dim, digits)` combination the model has never seen gets a time
//! estimate once *any* job has been measured, scaled by its static cost.
//!
//! **Feedback never changes results.**  The model observes completions and
//! influences only *placement* (which lane) and *admission* (whether a
//! deadline-carrying `try_submit` is accepted); every job still runs against
//! an isolated memory view, so a trained model produces bit-identical
//! integration results to a cold one — pinned in
//! `tests/scheduling_semantics.rs`.
//!
//! **Determinism.**  Each bucket's EWMA is a pure fold over that bucket's
//! observation sequence: feeding the same observations in the same order
//! yields bit-identical state whatever the worker-thread count, and
//! concurrent recording into *distinct* buckets cannot cross-contaminate
//! (also pinned in `tests/scheduling_semantics.rs`).

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use pagani_quadrature::{Region, Tolerances};

use crate::batch::BatchJob;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The saturation ceiling shared by [`estimated_cost`] and every dispatch
/// weight: `2⁴⁰`.
///
/// Costs and weights are **integer-valued finite f64 values in
/// `[1, cost_ceiling()]`**.  The bounds are load-bearing for the
/// outstanding-cost ledgers, which charge a job's weight on dispatch and
/// retire it on completion: sums of integers this size stay far below `2⁵³`,
/// so `+=` followed by `-=` cancels exactly and a ledger can neither drift
/// negative through f64 absorption nor turn NaN through `inf - inf`.
#[must_use]
pub fn cost_ceiling() -> f64 {
    (40.0f64).exp2()
}

/// Estimated relative cost of integrating a `dim`-dimensional job to
/// `tolerances` — the *static* model, used before any wall time has been
/// measured.
///
/// The model multiplies the Genz–Malik evaluation cost per region
/// (`2^d + 2d² + 2d + 1` points) by a region-count factor that grows
/// exponentially with the requested digits of precision, scaled by dimension
/// — the paper's Figure 9 shape: every extra digit multiplies the number of
/// regions an adaptive run generates, and higher dimensions split more times
/// to reach the same digit.  Only the *ordering and ratios* of costs matter
/// for dispatch, not the absolute scale.
///
/// # Saturation and clamping
///
/// The result is always an **integer-valued finite f64 in
/// `[1, `[`cost_ceiling`]`]`** (see there for why the bounds are
/// load-bearing).  Very high-dimensional or very tight-tolerance jobs
/// (Monte Carlo accepts any `dim`) saturate at the ceiling instead of
/// overflowing to infinity — beyond the bound every job weighs the same
/// maximal amount, degrading to round-robin-like spreading, the safe
/// failure mode:
///
/// ```
/// use pagani_core::{cost_ceiling, estimated_cost};
/// use pagani_quadrature::Tolerances;
///
/// // An absurd request saturates at exactly the 2^40 ceiling — finite, so an
/// // outstanding-cost ledger can always retire what it charged.
/// let huge = estimated_cost(1000, Tolerances::rel(1e-12));
/// assert_eq!(huge, cost_ceiling());
///
/// // The floor is 1, and every cost is integer-valued (fract() == 0), so
/// // charge/retire cycles cancel exactly in f64 arithmetic.
/// let tiny = estimated_cost(1, Tolerances::rel(1e-1));
/// assert!(tiny >= 1.0);
/// assert_eq!(tiny.fract(), 0.0);
/// assert_eq!(huge.fract(), 0.0);
/// ```
#[must_use]
pub fn estimated_cost(dim: usize, tolerances: Tolerances) -> f64 {
    let d = dim as f64;
    let points_per_region = d.min(256.0).exp2() + 2.0 * d * d + 2.0 * d + 1.0;
    let digits = tolerances.digits_requested().clamp(1.0, 12.0);
    let raw = points_per_region * (digits * d / 2.0).min(512.0).exp2();
    raw.round().clamp(1.0, cost_ceiling())
}

/// The error targets that govern `job`: its method override's own tolerances
/// when it carries an override that knows them, otherwise
/// `default_tolerances` (the service's configuration).
#[must_use]
pub fn job_tolerances(job: &BatchJob, default_tolerances: Tolerances) -> Tolerances {
    job.method()
        .and_then(|method| method.tolerances())
        .unwrap_or(default_tolerances)
}

/// Static estimated cost of one queued job: [`estimated_cost`] under
/// [`job_tolerances`].
#[must_use]
pub fn estimated_job_cost(job: &BatchJob, default_tolerances: Tolerances) -> f64 {
    estimated_cost(job.region().dim(), job_tolerances(job, default_tolerances))
}

/// Estimated peak device-memory footprint (bytes) of integrating a
/// `dim`-dimensional job to `tolerances`.
///
/// Uses the same region-count growth factor as [`estimated_cost`]
/// (`2^(digits·d/2)` surviving regions at the precision frontier), times the
/// per-region storage a region list actually holds: bounds (`2d` f64s) plus
/// estimate, error, split axis and classification bookkeeping (~6 f64-sized
/// slots).  A deliberately *rough* planning number — its only consumer is the
/// slab-splitting admission check, which compares it against a device's
/// memory budget to decide whether a job must be cut into
/// [`crate::MultiDevicePagani::partition`] slabs at all, and into how many.
/// Everyday test-sized jobs (dim ≤ 4, tolerances ≥ 1e-5) land in the
/// kilobytes, far under any device budget, so they never split.
#[must_use]
pub fn estimated_footprint_bytes(dim: usize, tolerances: Tolerances) -> f64 {
    let d = dim as f64;
    let digits = tolerances.digits_requested().clamp(1.0, 12.0);
    let peak_regions = (digits * d / 2.0).min(53.0).exp2();
    let bytes_per_region = (2.0 * d + 6.0) * 8.0;
    peak_regions * bytes_per_region
}

/// [`estimated_footprint_bytes`] for a queued job, under [`job_tolerances`].
#[must_use]
pub fn estimated_job_footprint_bytes(job: &BatchJob, default_tolerances: Tolerances) -> f64 {
    estimated_footprint_bytes(job.region().dim(), job_tolerances(job, default_tolerances))
}

/// Apportion a whole-job dispatch weight across its slabs, proportionally to
/// slab volume, such that the per-slab weights are integer-valued and **sum
/// to exactly `total_cost`** (largest-remainder apportionment; ties break to
/// the lowest slab index).
///
/// Exactness is what the outstanding-cost ledgers need: a slab-split job
/// charges each child's weight to its lane and retires it on completion, so
/// the weights must add up to the parent's weight without f64 drift —
/// integer-valued f64s well below `2⁵³` guarantee that (see
/// [`cost_ceiling`]).
///
/// # Panics
/// Panics if `slabs` is empty or `total_cost` is not a non-negative
/// integer-valued finite f64 (every [`CostModel::weigh_job`] weight is).
#[must_use]
pub fn slab_weights(total_cost: f64, slabs: &[Region]) -> Vec<f64> {
    assert!(!slabs.is_empty(), "at least one slab is required");
    assert!(
        total_cost.is_finite() && total_cost >= 0.0 && total_cost.fract() == 0.0,
        "dispatch weights are non-negative integer-valued f64s, got {total_cost}"
    );
    let volumes: Vec<f64> = slabs.iter().map(Region::volume).collect();
    let total_volume: f64 = volumes.iter().sum();
    // Degenerate (zero-volume) partitions fall back to equal shares.
    let shares: Vec<f64> = if total_volume > 0.0 && total_volume.is_finite() {
        volumes
            .iter()
            .map(|v| total_cost * (v / total_volume))
            .collect()
    } else {
        vec![total_cost / slabs.len() as f64; slabs.len()]
    };
    let mut weights: Vec<f64> = shares.iter().map(|s| s.floor()).collect();
    let assigned: f64 = weights.iter().sum();
    let mut leftover = (total_cost - assigned) as u64;
    // Hand the leftover units to the largest fractional remainders, ties to
    // the lowest index — a pure function of the inputs, so slab order (and
    // with it bit-deterministic recombination) is stable.
    let mut order: Vec<usize> = (0..slabs.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (shares[a] - shares[a].floor(), shares[b] - shares[b].floor());
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut cursor = 0usize;
    while leftover > 0 {
        weights[order[cursor % order.len()]] += 1.0;
        cursor += 1;
        leftover -= 1;
    }
    weights
}

/// Effective load of a remote lane: estimated outstanding cost normalised by
/// the worker threads serving it, so a 8-worker remote box absorbs
/// proportionally more outstanding work than a 1-worker box before
/// least-loaded dispatch steers away from it.
#[must_use]
pub fn remote_lane_load(outstanding: f64, workers: usize) -> f64 {
    outstanding / workers.max(1) as f64
}

/// An exponentially-weighted moving average: `value ← α·x + (1-α)·value`,
/// seeded by the first observation.
///
/// The update is a pure fold over the observation sequence — no clocks, no
/// randomness — so feeding the same observations in the same order yields
/// bit-identical state on any host and any thread count:
///
/// ```
/// use pagani_core::Ewma;
///
/// let mut a = Ewma::new(0.25);
/// assert_eq!(a.value(), None); // unseeded
/// for x in [100.0, 200.0, 150.0] {
///     a.observe(x);
/// }
/// let mut b = Ewma::new(0.25);
/// for x in [100.0, 200.0, 150.0] {
///     b.observe(x);
/// }
/// assert_eq!(a.value().unwrap().to_bits(), b.value().unwrap().to_bits());
/// assert_eq!(a.samples(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    samples: u64,
}

impl Ewma {
    /// A fresh average with smoothing factor `alpha`, clamped to `(0, 1]`
    /// (1 means "latest observation wins outright").
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::EPSILON, 1.0)
            } else {
                1.0
            },
            value: 0.0,
            samples: 0,
        }
    }

    /// Fold one observation in.  The first observation seeds the average;
    /// non-finite observations are ignored.
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.value = if self.samples == 0 {
            sample
        } else {
            self.alpha.mul_add(sample, (1.0 - self.alpha) * self.value)
        };
        self.samples += 1;
    }

    /// The current average, or `None` before the first observation.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.value)
    }

    /// Number of observations folded in so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The smoothing factor in force.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// The bucket key of the measured cost model: integrand family (its
/// [`pagani_quadrature::Integrand::name`]), dimension, and requested digits
/// of precision (clamped to `[1, 12]` and rounded, so nearby tolerances
/// share a bucket).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CostKey {
    /// Integrand family — the integrand's reported name.
    pub family: String,
    /// Dimensionality of the job's integration region.
    pub dim: usize,
    /// Requested decimal digits of relative precision, clamped and rounded.
    pub digits: u32,
}

impl CostKey {
    /// Key for integrating `family` in `dim` dimensions to `tolerances`.
    #[must_use]
    pub fn new(family: impl Into<String>, dim: usize, tolerances: Tolerances) -> Self {
        let digits = tolerances.digits_requested().clamp(1.0, 12.0).round();
        Self {
            family: family.into(),
            dim,
            digits: digits as u32,
        }
    }

    /// The key a queued job falls into, under [`job_tolerances`].
    #[must_use]
    pub fn for_job(job: &BatchJob, default_tolerances: Tolerances) -> Self {
        Self::new(
            job.integrand().name(),
            job.region().dim(),
            job_tolerances(job, default_tolerances),
        )
    }

    /// The static [`estimated_cost`] of a job in this bucket.
    #[must_use]
    pub fn static_cost(&self) -> f64 {
        estimated_cost(self.dim, Tolerances::digits(f64::from(self.digits)))
    }
}

#[derive(Debug)]
struct ModelState {
    /// Per-bucket EWMA of measured wall time, in microseconds.
    buckets: HashMap<CostKey, Ewma>,
    /// Cross-bucket calibration: EWMA of measured microseconds per static
    /// cost unit.  Turns [`estimated_cost`] into a time estimate for buckets
    /// the model has never observed.
    micros_per_unit: Ewma,
    /// Total observations recorded.
    observations: u64,
}

/// The measured cost model: per-[`CostKey`] EWMA buckets of observed wall
/// times over the static [`estimated_cost`] fallback.
///
/// Shared by every lane of a [`crate::MultiDeviceService`] (buckets pool
/// their learning across devices) and owned per
/// [`crate::IntegrationService`] otherwise.  See the [module
/// docs](crate::cost) for the learning scheme and the determinism and
/// result-transparency guarantees.
///
/// ```
/// use std::time::Duration;
/// use pagani_core::{CostKey, CostModel};
/// use pagani_quadrature::Tolerances;
///
/// let model = CostModel::new();
/// let key = CostKey::new("oscillatory", 5, Tolerances::rel(1e-6));
///
/// // Cold model: no time prediction yet (admission stays optimistic)…
/// assert_eq!(model.predict(&key), None);
///
/// // …after two measured runs the bucket answers with its EWMA…
/// model.record(&key, Duration::from_millis(80));
/// model.record(&key, Duration::from_millis(120));
/// let predicted = model.predict(&key).unwrap();
/// assert!(predicted > Duration::from_millis(80) && predicted < Duration::from_millis(120));
///
/// // …and an unseen bucket is priced through the calibration (measured
/// // microseconds per static cost unit), scaled by its own static cost.
/// let unseen = CostKey::new("corner-peak", 6, Tolerances::rel(1e-6));
/// assert!(model.predict(&unseen).is_some());
/// ```
#[derive(Debug)]
pub struct CostModel {
    alpha: f64,
    state: Mutex<ModelState>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModel {
    /// The default smoothing factor: recent runs weigh 25%.
    pub const DEFAULT_ALPHA: f64 = 0.25;

    /// A fresh model with the default smoothing factor.
    #[must_use]
    pub fn new() -> Self {
        Self::with_alpha(Self::DEFAULT_ALPHA)
    }

    /// A fresh model with an explicit EWMA smoothing factor, clamped to
    /// `(0, 1]`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        let alpha = Ewma::new(alpha).alpha();
        Self {
            alpha,
            state: Mutex::new(ModelState {
                buckets: HashMap::new(),
                micros_per_unit: Ewma::new(alpha),
                observations: 0,
            }),
        }
    }

    /// The smoothing factor in force.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one measured wall time into `key`'s bucket (and the cross-bucket
    /// calibration).  The service records every completed, *uncancelled* job
    /// here — cancelled runs carry partial wall times that would bias the
    /// average low.
    pub fn record(&self, key: &CostKey, wall_time: Duration) {
        let micros = (wall_time.as_secs_f64() * 1e6).clamp(0.0, cost_ceiling());
        let mut state = lock(&self.state);
        state
            .buckets
            .entry(key.clone())
            .or_insert_with(|| Ewma::new(self.alpha))
            .observe(micros);
        let per_unit = micros / key.static_cost();
        state.micros_per_unit.observe(per_unit);
        state.observations += 1;
    }

    /// [`CostModel::record`] keyed by a job ([`CostKey::for_job`]).
    pub fn record_job(&self, job: &BatchJob, default_tolerances: Tolerances, wall_time: Duration) {
        self.record(&CostKey::for_job(job, default_tolerances), wall_time);
    }

    /// Predicted wall time for a job in `key`'s bucket: the bucket's own EWMA
    /// when the bucket has been observed, otherwise the calibration scaled by
    /// the bucket's static cost, otherwise `None` (a cold model refuses to
    /// guess — deadline admission stays optimistic until real work has been
    /// measured).
    #[must_use]
    pub fn predict(&self, key: &CostKey) -> Option<Duration> {
        let state = lock(&self.state);
        let micros = match state.buckets.get(key).and_then(Ewma::value) {
            Some(measured) => measured,
            None => state.micros_per_unit.value()? * key.static_cost(),
        };
        Some(Duration::from_secs_f64(
            micros.clamp(0.0, cost_ceiling()) / 1e6,
        ))
    }

    /// [`CostModel::predict`] keyed by a job ([`CostKey::for_job`]).
    #[must_use]
    pub fn predict_job(&self, job: &BatchJob, default_tolerances: Tolerances) -> Option<Duration> {
        self.predict(&CostKey::for_job(job, default_tolerances))
    }

    /// Dispatch weight for a job in `key`'s bucket: the predicted wall time
    /// in whole microseconds when the model can price it, otherwise the
    /// static [`estimated_cost`].  Always integer-valued in
    /// `[1, `[`cost_ceiling`]`]`, so outstanding-cost ledgers cancel exactly
    /// (see [`cost_ceiling`]).
    ///
    /// The two scales (microseconds vs static units) coexist only while the
    /// model is cold: after the first recorded run the calibration prices
    /// every bucket, so all subsequent weights are microseconds.  Ledger
    /// exactness is unaffected either way — every charge is retired at the
    /// value it was charged at.
    #[must_use]
    pub fn weigh(&self, key: &CostKey) -> f64 {
        match self.predict(key) {
            Some(predicted) => (predicted.as_secs_f64() * 1e6)
                .round()
                .clamp(1.0, cost_ceiling()),
            None => key.static_cost(),
        }
    }

    /// [`CostModel::weigh`] keyed by a job ([`CostKey::for_job`]).
    #[must_use]
    pub fn weigh_job(&self, job: &BatchJob, default_tolerances: Tolerances) -> f64 {
        self.weigh(&CostKey::for_job(job, default_tolerances))
    }

    /// Total wall-time observations recorded so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        lock(&self.state).observations
    }

    /// Number of distinct `(family, dim, digits)` buckets observed.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        lock(&self.state).buckets.len()
    }

    /// A copy of `key`'s bucket EWMA (microseconds), if observed.
    #[must_use]
    pub fn bucket(&self, key: &CostKey) -> Option<Ewma> {
        lock(&self.state).buckets.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_integrands::paper::PaperIntegrand;

    fn key(family: &str) -> CostKey {
        CostKey::new(family, 3, Tolerances::rel(1e-4))
    }

    #[test]
    fn ewma_is_a_pure_fold() {
        let observations = [100.0, 250.0, 175.0, 60.0, 300.0];
        let fold = |xs: &[f64]| {
            let mut e = Ewma::new(0.25);
            for &x in xs {
                e.observe(x);
            }
            e
        };
        let a = fold(&observations);
        let b = fold(&observations);
        assert_eq!(a.value().unwrap().to_bits(), b.value().unwrap().to_bits());
        assert_eq!(a.samples(), 5);
        // Hand-rolled first two steps: seed then blend.
        let mut manual = 100.0f64;
        manual = 0.25f64.mul_add(250.0, 0.75 * manual);
        let mut two = Ewma::new(0.25);
        two.observe(100.0);
        two.observe(250.0);
        assert_eq!(two.value().unwrap().to_bits(), manual.to_bits());
    }

    #[test]
    fn ewma_ignores_non_finite_observations() {
        let mut e = Ewma::new(0.5);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        e.observe(f64::NAN);
        assert_eq!(e.value(), Some(10.0));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn cold_model_has_no_time_prediction_but_a_static_weight() {
        let model = CostModel::new();
        let k = key("f4");
        assert_eq!(model.predict(&k), None);
        assert_eq!(model.weigh(&k), k.static_cost());
        assert_eq!(model.observations(), 0);
        assert_eq!(model.bucket_count(), 0);
    }

    #[test]
    fn observed_bucket_predicts_its_own_ewma() {
        let model = CostModel::new();
        let k = key("f4");
        model.record(&k, Duration::from_millis(100));
        assert_eq!(model.predict(&k), Some(Duration::from_millis(100)));
        model.record(&k, Duration::from_millis(200));
        let predicted = model.predict(&k).unwrap();
        assert!(predicted > Duration::from_millis(100));
        assert!(predicted < Duration::from_millis(200));
        assert_eq!(model.observations(), 2);
        assert_eq!(model.bucket_count(), 1);
    }

    #[test]
    fn calibration_prices_unseen_buckets_proportionally_to_static_cost() {
        let model = CostModel::new();
        model.record(&key("f4"), Duration::from_millis(50));
        let cheap = CostKey::new("unseen", 2, Tolerances::rel(1e-3));
        let dear = CostKey::new("unseen", 5, Tolerances::rel(1e-6));
        let (p_cheap, p_dear) = (
            model.predict(&cheap).unwrap(),
            model.predict(&dear).unwrap(),
        );
        assert!(p_dear > p_cheap, "{p_dear:?} <= {p_cheap:?}");
        // The ratio tracks the static cost ratio exactly (one shared
        // calibration scalar).
        let ratio = p_dear.as_secs_f64() / p_cheap.as_secs_f64();
        let static_ratio = dear.static_cost() / cheap.static_cost();
        assert!((ratio / static_ratio - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_are_integer_valued_and_clamped() {
        let model = CostModel::new();
        let k = key("f4");
        // Sub-microsecond measurement: weight clamps up to 1.
        model.record(&k, Duration::from_nanos(10));
        assert_eq!(model.weigh(&k), 1.0);
        // An absurd measurement clamps to the shared ceiling.
        let slow = key("slow");
        model.record(&slow, Duration::from_secs(u64::MAX >> 16));
        let w = model.weigh(&slow);
        assert!(w <= cost_ceiling());
        assert_eq!(w.fract(), 0.0);
        assert!(w.is_finite());
    }

    #[test]
    fn job_keys_use_method_override_tolerances() {
        let job = BatchJob::new(PaperIntegrand::f4(3));
        let default_key = CostKey::for_job(&job, Tolerances::rel(1e-3));
        assert_eq!(default_key.digits, 3);
        let tighter = CostKey::for_job(&job, Tolerances::rel(1e-8));
        assert_eq!(tighter.digits, 8);
        assert_eq!(default_key.family, job.integrand().name());
    }

    #[test]
    fn estimated_cost_still_saturates_and_stays_integer() {
        for dim in [30, 147, 1000, usize::MAX >> 32] {
            let cost = estimated_cost(dim, Tolerances::rel(1e-12));
            assert!(cost.is_finite());
            assert_eq!(cost, cost_ceiling());
        }
        assert!(estimated_cost(1, Tolerances::rel(1e-1)) >= 1.0);
    }
}
