//! PAGANI: the breadth-first parallel adaptive integration algorithm of
//! Sakiotis et al. (SC 2021), implemented on the simulated massively-parallel device
//! of `pagani-device`.
//!
//! Unlike Cuhre and the two-phase GPU method, PAGANI never runs the sequential
//! adaptive loop on any processor.  Every iteration it
//!
//! 1. evaluates **all** regions in the region list in parallel (one block per region),
//! 2. refines their error estimates with Berntsen's two-level estimate,
//! 3. classifies each region as *active* or *finished* by its relative error,
//! 4. reduces the per-region estimates to global estimates and checks termination,
//! 5. optionally runs the heuristic threshold classification (Algorithm 3) to finish
//!    additional low-contribution regions when the integral estimate has converged or
//!    device memory is about to run out,
//! 6. removes the finished regions from memory (their contributions are accumulated
//!    into the *finished* totals and never revisited), and
//! 7. splits every surviving region in half along its rule-selected axis.
//!
//! The public entry point is [`Pagani`]; its [`PaganiOutput`] carries both the
//! [`pagani_quadrature::IntegrationResult`] and an [`trace::ExecutionTrace`] with
//! per-iteration statistics and the threshold-search probes used to reproduce
//! Figures 3, 8 and 9 and the §4.3.2 performance breakdown.
//!
//! Two additional front doors wrap the driver:
//!
//! * [`Integrator`] — the method-agnostic trait every integrator in the
//!   workspace implements (the baselines implement it in `pagani-baselines`),
//!   so harnesses can sweep `Box<dyn Integrator>` values;
//! * [`IntegrationService`] — a resident worker pool serving
//!   `submit(job) → handle` with polling, blocking waits, cooperative
//!   cancellation and graceful shutdown; [`integrate_batch`] is
//!   submit-all-then-wait sugar over it.

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod batch;
pub mod builder;
pub mod classify;
pub mod config;
pub mod cost;
pub mod driver;
pub mod evaluate;
pub mod integrator;
pub mod multi_device;
pub mod region_list;
pub mod remote;
pub mod resume;
pub mod service;
pub mod threshold;
pub mod trace;

pub use arena::ScratchArena;
pub use batch::{integrate_batch, BatchJob, BatchRunner};
pub use builder::ServiceBuilder;
pub use config::{HeuristicFiltering, PaganiConfig};
pub use cost::{
    cost_ceiling, estimated_cost, estimated_footprint_bytes, estimated_job_cost,
    estimated_job_footprint_bytes, job_tolerances, remote_lane_load, slab_weights, CostKey,
    CostModel, Ewma,
};
pub use driver::{CancelToken, Pagani, PaganiOutput};
pub use evaluate::{Evaluation, RegionPack, EVAL_LANES};
pub use integrator::{check_cancelled, Capabilities, Integrator, IntegratorFactory};
pub use multi_device::{
    plan_dispatch, DispatchMode, MultiDeviceOutput, MultiDevicePagani, MultiDeviceService,
};
// Persistence types, re-exported so service callers need not depend on
// `pagani-persist` directly.
pub use pagani_persist::{CacheKey, CachedResult, ResultCache, Snapshot, WarmStartInfo};
pub use region_list::RegionList;
pub use remote::{
    DistributedService, IntegrandRegistry, Message, RemoteWorker, WireError, PROTOCOL_VERSION,
};
pub use resume::{ResumableOutput, ResumeError};
pub use service::{
    DeadlineInfeasible, IntegrationService, JobHandle, Priority, QueueFull, Rejected,
    ServiceMetrics, ServicePolicy, WaitStats,
};
pub use trace::{ExecutionTrace, IterationRecord, ThresholdProbe, ThresholdSearchRecord};
