//! Test-integrand suite for the PAGANI reproduction.
//!
//! The paper evaluates PAGANI, Cuhre, the two-phase method and the QMC baseline on
//! eight fixed-parameter integrands (f1–f8, §4.1) derived from the Genz test families,
//! chosen so that analytic reference values exist and the *true* relative error can be
//! compared with the *estimated* relative error (§4.2).  This crate provides:
//!
//! * [`paper`] — f1..f8 exactly as printed in the paper, each carrying its analytic
//!   reference value.
//! * [`genz`] — the six Genz (1984) integrand families with randomised parameters and
//!   analytic reference values, used for robustness testing beyond the paper's suite.
//! * [`mod@reference`] — the machinery that computes those reference values: product
//!   formulas, inclusion–exclusion for the corner peak, a multinomial dynamic program
//!   for even box integrals and a 1-D Gamma-representation reduction for the
//!   half-integer box integral f8.
//! * [`special`] — erf / log-gamma / incomplete-gamma implementations the references
//!   need (no external numerics crates are used anywhere in the workspace).
//! * [`workloads`] — application-flavoured integrands matching the motivating use
//!   cases in the paper's introduction (a Gaussian-likelihood normalisation and a
//!   basket-option payoff).

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod genz;
pub mod paper;
pub mod reference;
pub mod special;
pub mod workloads;

pub use paper::{paper_plot_suite, PaperIntegrand};

/// A named integrand together with its analytic reference value.
///
/// This is the unit the benchmark harness sweeps over: every figure in the paper plots
/// a set of `(integrand, dimension)` pairs against the tolerance sweep.
pub struct ReferenceIntegrand {
    /// The integrand itself.
    pub integrand: Box<dyn pagani_quadrature::Integrand + Send>,
    /// Analytic (or analytically-reduced) value of the integral over the unit cube.
    pub reference: f64,
    /// Display label used in benchmark output, e.g. `"5D f4"`.
    pub label: String,
}

impl ReferenceIntegrand {
    /// Construct from any integrand with a known reference value.
    pub fn new(
        integrand: impl pagani_quadrature::Integrand + Send + 'static,
        reference: f64,
        label: impl Into<String>,
    ) -> Self {
        Self {
            integrand: Box::new(integrand),
            reference,
            label: label.into(),
        }
    }
}
