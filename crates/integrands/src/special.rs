//! Special functions needed by the analytic reference values.
//!
//! Nothing fancy: a Lanczos log-gamma, the regularised incomplete gamma functions
//! (series + continued fraction, Numerical-Recipes style), and `erf`/`erfc` expressed
//! through them.  Accuracy is ~1e-14 relative, comfortably beyond the 10–11 digits of
//! precision the paper's tolerance sweep reaches.

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
#[must_use]
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularised lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-17 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    // Modified Lentz's algorithm for the continued fraction representation of Q.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// The error function `erf(x)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// `∫_a^b exp(-alpha (t - mu)^2) dt` expressed through [`erf`].
#[must_use]
pub fn gaussian_segment_integral(alpha: f64, mu: f64, a: f64, b: f64) -> f64 {
    assert!(alpha > 0.0, "gaussian integral needs a positive exponent");
    let s = alpha.sqrt();
    0.5 * (std::f64::consts::PI / alpha).sqrt() * (erf(s * (b - mu)) - erf(s * (a - mu)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let expected: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!(
                (ln_gamma(n as f64) - expected).abs() < 1e-11,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun.
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 1.5, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erfc_tail_is_accurate() {
        // erfc(3) from high-precision tables.
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-17);
    }

    #[test]
    fn gamma_p_q_partition_unity() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn gamma_p_of_integer_a_matches_poisson_sum() {
        // P(k, x) = 1 - e^{-x} Σ_{j<k} x^j/j!
        let a = 4.0;
        let x: f64 = 3.0;
        let poisson: f64 = (0..4i32).map(|j| x.powi(j) / gamma(j as f64 + 1.0)).sum();
        let expected = 1.0 - (-x).exp() * poisson;
        assert!((gamma_p(a, x) - expected).abs() < 1e-12);
    }

    #[test]
    fn gaussian_segment_matches_series_for_narrow_peak() {
        // The f4 per-dimension factor: ∫_0^1 exp(-625 (x-1/2)^2) dx.
        let value = gaussian_segment_integral(625.0, 0.5, 0.0, 1.0);
        let expected = (std::f64::consts::PI / 625.0).sqrt() * erf(12.5);
        assert!((value - expected).abs() < 1e-15);
        assert!((value - 0.070_898_154_036_220_64).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_erf_is_odd_and_bounded(x in -5.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
            prop_assert!(erf(x).abs() <= 1.0);
        }

        #[test]
        fn prop_erf_is_monotone(a in -4.0f64..4.0, delta in 1e-3f64..1.0) {
            prop_assert!(erf(a + delta) >= erf(a));
        }

        #[test]
        fn prop_ln_gamma_recurrence(x in 0.1f64..20.0) {
            // Γ(x+1) = x Γ(x)
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
        }

        #[test]
        fn prop_gamma_p_monotone_in_x(a in 0.2f64..10.0, x in 0.0f64..20.0, dx in 0.01f64..5.0) {
            prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-13);
        }
    }
}
