//! The six Genz (1984) integrand families with randomised parameters.
//!
//! The paper's test suite (§4.1) fixes the parameters of these families so that
//! analytic values are available; this module provides the general parameterised
//! families, both for robustness testing (random parameter draws, as in the standard
//! testing methodology of Genz that the paper discusses in §4.2) and because each
//! family has an analytic reference value for *any* parameter choice, which makes
//! them ideal property-test subjects.

use pagani_quadrature::Integrand;
use rand::Rng;

use crate::reference;

/// The six families of Genz's testing package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenzFamily {
    /// `cos(2π u_1 + Σ a_i x_i)` — oscillatory.
    Oscillatory,
    /// `Π (a_i^{-2} + (x_i − u_i)²)^{-1}` — product peak.
    ProductPeak,
    /// `(1 + Σ a_i x_i)^{-(d+1)}` — corner peak.
    CornerPeak,
    /// `exp(−Σ a_i² (x_i − u_i)²)` — Gaussian.
    Gaussian,
    /// `exp(−Σ a_i |x_i − u_i|)` — C⁰ (continuous, non-differentiable).
    C0,
    /// `exp(Σ a_i x_i)` for `x_1 ≤ u_1 ∧ x_2 ≤ u_2`, else 0 — discontinuous.
    Discontinuous,
}

impl GenzFamily {
    /// The "difficulty" normalisation Genz recommends: the affective parameters are
    /// scaled so that `Σ a_i` equals this constant for a `dim`-dimensional instance.
    #[must_use]
    pub fn difficulty(self, dim: usize) -> f64 {
        let d = dim as f64;
        match self {
            GenzFamily::Oscillatory => 9.0 * d.sqrt(),
            GenzFamily::ProductPeak => 7.25 * d.sqrt(),
            GenzFamily::CornerPeak => 1.85 * d.sqrt(),
            GenzFamily::Gaussian => 7.03 * d.sqrt(),
            GenzFamily::C0 => 20.4 * d.sqrt(),
            GenzFamily::Discontinuous => 4.3 * d.sqrt(),
        }
    }

    /// All six families.
    #[must_use]
    pub fn all() -> [GenzFamily; 6] {
        [
            GenzFamily::Oscillatory,
            GenzFamily::ProductPeak,
            GenzFamily::CornerPeak,
            GenzFamily::Gaussian,
            GenzFamily::C0,
            GenzFamily::Discontinuous,
        ]
    }
}

/// A concrete Genz integrand with parameter vectors `a` (affective) and `u` (shift).
#[derive(Debug, Clone)]
pub struct GenzIntegrand {
    family: GenzFamily,
    a: Vec<f64>,
    u: Vec<f64>,
}

impl GenzIntegrand {
    /// Construct from explicit parameters.
    ///
    /// # Panics
    /// Panics if `a` and `u` differ in length, are empty, or `a` contains a
    /// non-positive entry.
    #[must_use]
    pub fn new(family: GenzFamily, a: Vec<f64>, u: Vec<f64>) -> Self {
        assert_eq!(a.len(), u.len(), "parameter vectors must match in length");
        assert!(!a.is_empty(), "Genz integrands need at least one dimension");
        assert!(
            a.iter().all(|&ai| ai > 0.0),
            "affective parameters must be positive"
        );
        Self { family, a, u }
    }

    /// Draw random parameters with Genz's difficulty normalisation.
    pub fn random<R: Rng + ?Sized>(family: GenzFamily, dim: usize, rng: &mut R) -> Self {
        let raw: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.01..1.0)).collect();
        let total: f64 = raw.iter().sum();
        let scale = family.difficulty(dim) / total;
        let a: Vec<f64> = raw.iter().map(|&r| r * scale).collect();
        let u: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
        Self::new(family, a, u)
    }

    /// The family this instance belongs to.
    #[must_use]
    pub fn family(&self) -> GenzFamily {
        self.family
    }

    /// The affective parameters `a`.
    #[must_use]
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// The shift parameters `u`.
    #[must_use]
    pub fn u(&self) -> &[f64] {
        &self.u
    }

    /// Analytic value of the integral over the unit cube.
    #[must_use]
    pub fn reference_value(&self) -> f64 {
        let dim = self.a.len();
        match self.family {
            GenzFamily::Oscillatory => {
                reference::cos_sum_reference(&self.a, 2.0 * std::f64::consts::PI * self.u[0])
            }
            GenzFamily::ProductPeak => self
                .a
                .iter()
                .zip(&self.u)
                .map(|(&a, &u)| a * ((a * (1.0 - u)).atan() + (a * u).atan()))
                .product(),
            GenzFamily::CornerPeak => reference::corner_peak_reference(&self.a),
            GenzFamily::Gaussian => self
                .a
                .iter()
                .zip(&self.u)
                .map(|(&a, &u)| {
                    0.5 * std::f64::consts::PI.sqrt() / a
                        * (crate::special::erf(a * (1.0 - u)) + crate::special::erf(a * u))
                })
                .product(),
            GenzFamily::C0 => self
                .a
                .iter()
                .zip(&self.u)
                .map(|(&a, &u)| (2.0 - (-a * u).exp() - (-a * (1.0 - u)).exp()) / a)
                .product(),
            GenzFamily::Discontinuous => {
                let mut value = 1.0;
                for (i, (&a, &u)) in self.a.iter().zip(&self.u).enumerate() {
                    let cut = if i < 2 && dim >= 2 { u.min(1.0) } else { 1.0 };
                    value *= ((a * cut).exp() - 1.0) / a;
                }
                value
            }
        }
    }
}

impl Integrand for GenzIntegrand {
    fn dim(&self) -> usize {
        self.a.len()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.a.len());
        match self.family {
            GenzFamily::Oscillatory => {
                let s: f64 = x.iter().zip(&self.a).map(|(&xi, &ai)| ai * xi).sum();
                (2.0 * std::f64::consts::PI * self.u[0] + s).cos()
            }
            GenzFamily::ProductPeak => x
                .iter()
                .zip(self.a.iter().zip(&self.u))
                .map(|(&xi, (&ai, &ui))| 1.0 / (ai.powi(-2) + (xi - ui) * (xi - ui)))
                .product(),
            GenzFamily::CornerPeak => {
                let s: f64 = x.iter().zip(&self.a).map(|(&xi, &ai)| ai * xi).sum();
                (1.0 + s).powi(-(self.a.len() as i32) - 1)
            }
            GenzFamily::Gaussian => {
                let s: f64 = x
                    .iter()
                    .zip(self.a.iter().zip(&self.u))
                    .map(|(&xi, (&ai, &ui))| ai * ai * (xi - ui) * (xi - ui))
                    .sum();
                (-s).exp()
            }
            GenzFamily::C0 => {
                let s: f64 = x
                    .iter()
                    .zip(self.a.iter().zip(&self.u))
                    .map(|(&xi, (&ai, &ui))| ai * (xi - ui).abs())
                    .sum();
                (-s).exp()
            }
            GenzFamily::Discontinuous => {
                let outside = x.iter().zip(&self.u).take(2).any(|(&xi, &ui)| xi > ui);
                if outside {
                    0.0
                } else {
                    let s: f64 = x.iter().zip(&self.a).map(|(&xi, &ai)| ai * xi).sum();
                    s.exp()
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("genz-{:?}-{}d", self.family, self.a.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::adaptive1d::integrate_1d;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nested_2d(f: &GenzIntegrand) -> f64 {
        let quad = |g: &dyn Fn(f64) -> f64| integrate_1d(&g, 0.0, 1.0, 1e-11, 0.0, 20_000).integral;
        quad(&|x: f64| quad(&|y: f64| f.eval(&[x, y])))
    }

    #[test]
    fn random_parameters_respect_difficulty() {
        let mut rng = StdRng::seed_from_u64(7);
        for family in GenzFamily::all() {
            let g = GenzIntegrand::random(family, 5, &mut rng);
            let total: f64 = g.a().iter().sum();
            assert!((total - family.difficulty(5)).abs() < 1e-9, "{family:?}");
            assert!(g.u().iter().all(|&u| (0.0..1.0).contains(&u)));
        }
    }

    #[test]
    fn reference_matches_quadrature_for_every_family_in_2d() {
        let mut rng = StdRng::seed_from_u64(12345);
        for family in GenzFamily::all() {
            let g = GenzIntegrand::random(family, 2, &mut rng);
            let numeric = nested_2d(&g);
            let reference = g.reference_value();
            let tol = match family {
                // The discontinuous family converges slowest under nested bisection.
                GenzFamily::Discontinuous => 1e-5,
                _ => 1e-7,
            };
            assert!(
                (numeric - reference).abs() / reference.abs().max(1e-12) < tol,
                "{family:?}: numeric {numeric} vs reference {reference}"
            );
        }
    }

    #[test]
    fn paper_f1_is_an_oscillatory_instance() {
        // With a_i = i and u_1 = 0 the oscillatory family reduces to the paper's f1.
        let g = GenzIntegrand::new(
            GenzFamily::Oscillatory,
            (1..=4).map(|i| i as f64).collect(),
            vec![0.0; 4],
        );
        let f1 = crate::paper::PaperIntegrand::f1(4);
        assert!((g.reference_value() - f1.reference_value()).abs() < 1e-14);
        assert!((g.eval(&[0.1, 0.2, 0.3, 0.4]) - f1.eval(&[0.1, 0.2, 0.3, 0.4])).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "must match in length")]
    fn mismatched_parameters_panic() {
        let _ = GenzIntegrand::new(GenzFamily::Gaussian, vec![1.0], vec![0.5, 0.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_positive_families_have_positive_references(seed in 0u64..10_000, dim in 2usize..7) {
            let mut rng = StdRng::seed_from_u64(seed);
            for family in [GenzFamily::ProductPeak, GenzFamily::CornerPeak, GenzFamily::Gaussian, GenzFamily::C0, GenzFamily::Discontinuous] {
                let g = GenzIntegrand::random(family, dim, &mut rng);
                prop_assert!(g.reference_value() > 0.0, "{:?}", family);
            }
        }

        #[test]
        fn prop_oscillatory_reference_is_bounded_by_volume(seed in 0u64..10_000, dim in 2usize..7) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = GenzIntegrand::random(GenzFamily::Oscillatory, dim, &mut rng);
            prop_assert!(g.reference_value().abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_gaussian_reference_decreases_with_sharper_peaks(dim in 2usize..6, scale in 1.1f64..3.0) {
            let a: Vec<f64> = (1..=dim).map(|i| i as f64).collect();
            let sharper: Vec<f64> = a.iter().map(|&ai| ai * scale).collect();
            let u = vec![0.5; dim];
            let base = GenzIntegrand::new(GenzFamily::Gaussian, a, u.clone());
            let sharp = GenzIntegrand::new(GenzFamily::Gaussian, sharper, u);
            prop_assert!(sharp.reference_value() < base.reference_value());
        }
    }
}
