//! Analytic (and analytically-reduced) reference values for the test integrands.
//!
//! The paper's accuracy experiments (Figure 4, §4.2) require the *true* value of every
//! integral in the test suite so that the true relative error of each integrator can
//! be compared against the tolerance it claims to have met.  Every reference here is
//! either a closed form or an exact reduction to a one-dimensional integral that is
//! evaluated to ~13 significant digits with the Gauss–Kronrod substrate — far beyond
//! the 10–11 digits the tolerance sweep reaches.

use pagani_quadrature::adaptive1d::integrate_1d_reference;

use crate::special::{erf, gamma};

/// `∫_[0,1]^n cos(Σ c_i x_i + phase) dx` via the complex product
/// `Re( e^{i·phase} ∏_j (e^{i c_j} − 1)/(i c_j) )`.
///
/// # Panics
/// Panics if any coefficient is zero (the factor degenerates to 1 and should simply be
/// omitted by the caller).
#[must_use]
pub fn cos_sum_reference(coefficients: &[f64], phase: f64) -> f64 {
    // Complex arithmetic on (re, im) pairs; no external crate needed.
    let mut re = phase.cos();
    let mut im = phase.sin();
    for &c in coefficients {
        assert!(c != 0.0, "cos_sum_reference requires non-zero coefficients");
        // (e^{ic} - 1)/(ic) = (sin c)/c + i (1 - cos c)/c
        let factor_re = c.sin() / c;
        let factor_im = (1.0 - c.cos()) / c;
        let new_re = re * factor_re - im * factor_im;
        let new_im = re * factor_im + im * factor_re;
        re = new_re;
        im = new_im;
    }
    re
}

/// `∫_[0,1]^n ∏ 1/(a² + (x_i − u_i)²) dx`: each factor is
/// `(atan((1−u_i)/a) + atan(u_i/a)) / a`.
#[must_use]
pub fn product_lorentzian_reference(a: f64, centers: &[f64]) -> f64 {
    centers
        .iter()
        .map(|&u| (((1.0 - u) / a).atan() + (u / a).atan()) / a)
        .product()
}

/// `∫_[0,1]^n (1 + Σ c_i x_i)^{-(n+1)} dx` by inclusion–exclusion:
///
/// `1/(n! ∏ c_i) · Σ_{S ⊆ [n]} (−1)^{|S|} / (1 + Σ_{i∈S} c_i)`.
///
/// # Panics
/// Panics if `coefficients` is empty, longer than 30 (the subset enumeration would
/// explode), or contains a non-positive coefficient.
#[must_use]
pub fn corner_peak_reference(coefficients: &[f64]) -> f64 {
    let n = coefficients.len();
    assert!(
        (1..=30).contains(&n),
        "corner peak supports 1..=30 dimensions"
    );
    assert!(
        coefficients.iter().all(|&c| c > 0.0),
        "corner peak requires positive coefficients"
    );
    let mut sum = 0.0;
    for subset in 0u64..(1u64 << n) {
        let mut denom = 1.0;
        let mut sign = 1.0;
        for (i, &c) in coefficients.iter().enumerate() {
            if subset & (1 << i) != 0 {
                denom += c;
                sign = -sign;
            }
        }
        sum += sign / denom;
    }
    let factorial: f64 = (1..=n).map(|k| k as f64).product();
    let coeff_product: f64 = coefficients.iter().product();
    sum / (factorial * coeff_product)
}

/// `∫_[0,1]^n exp(-alpha Σ (x_i − u_i)²) dx` — a product of 1-D Gaussian segments.
#[must_use]
pub fn gaussian_reference(alpha: f64, centers: &[f64]) -> f64 {
    centers
        .iter()
        .map(|&u| {
            let s = alpha.sqrt();
            0.5 * (std::f64::consts::PI / alpha).sqrt() * (erf(s * (1.0 - u)) + erf(s * u))
        })
        .product()
}

/// `∫_[0,1]^n exp(-a Σ |x_i − u_i|) dx` — a product of two-sided exponential segments.
#[must_use]
pub fn abs_exponential_reference(a: f64, centers: &[f64]) -> f64 {
    centers
        .iter()
        .map(|&u| (2.0 - (-a * u).exp() - (-a * (1.0 - u)).exp()) / a)
        .product()
}

/// Reference for the paper's f6: `exp(Σ (i+4) x_i)` on `x_i < (3+i)/10` (1-based `i`),
/// zero otherwise, in `dim` dimensions.
#[must_use]
pub fn discontinuous_reference(dim: usize) -> f64 {
    (1..=dim)
        .map(|i| {
            let rate = (i + 4) as f64;
            let cut = ((3 + i) as f64 / 10.0).min(1.0);
            ((rate * cut).exp() - 1.0) / rate
        })
        .product()
}

/// Exact value of the even box integral `∫_[0,1]^n (Σ x_i²)^p dx` for integer `p ≥ 0`.
///
/// Expanding by the multinomial theorem, the integral is
/// `Σ_{k_1+…+k_n = p} p!/(∏ k_i!) ∏ 1/(2 k_i + 1)`, which is computed here by a
/// convolution dynamic program over the dimensions (exact up to rounding).
#[must_use]
pub fn box_integral_even_reference(dim: usize, p: usize) -> f64 {
    // per-dimension sequence a_k = 1 / (k! (2k+1)); the answer is p! times the
    // p-th coefficient of the n-fold convolution.
    let factorial = |m: usize| -> f64 { (1..=m).map(|k| k as f64).product() };
    let base: Vec<f64> = (0..=p)
        .map(|k| 1.0 / (factorial(k) * (2 * k + 1) as f64))
        .collect();
    let mut acc = vec![0.0; p + 1];
    acc[0] = 1.0;
    for _ in 0..dim {
        let mut next = vec![0.0; p + 1];
        for (i, &a) in acc.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in base.iter().enumerate() {
                if i + j <= p {
                    next[i + j] += a * b;
                }
            }
        }
        acc = next;
    }
    factorial(p) * acc[p]
}

/// Reference value of the odd/half-integer box integral `∫_[0,1]^n (Σ x_i²)^{s/2} dx`
/// for odd positive `s`, via the Gamma-function representation
///
/// `r^s = 1/Γ(k − s/2) ∫_0^∞ t^{k−s/2−1} r^{2k} e^{−r² t} dt`,  `k = (s+1)/2`,
///
/// which reduces the n-dimensional integral to a one-dimensional integral of a product
/// of per-axis moments `m_a(t) = ∫_0^1 x^{2a} e^{−t x²} dx`.  The `t` integral is
/// evaluated with the adaptive Gauss–Kronrod substrate after the substitution
/// `t = u²` (removing the `t^{−1/2}` endpoint singularity).
///
/// # Panics
/// Panics if `s` is even or zero, or `dim == 0`.
#[must_use]
pub fn box_integral_odd_reference(dim: usize, s: usize) -> f64 {
    assert!(dim >= 1, "box integral needs at least one dimension");
    assert!(
        s % 2 == 1,
        "use box_integral_even_reference for even powers"
    );
    let k = s.div_ceil(2); // k - s/2 = 1/2
    let prefactor = 1.0 / gamma(k as f64 - s as f64 / 2.0);

    // S_k(t) = Σ_{|a| = k} k!/∏ a_i! ∏ m_{a_i}(t), accumulated by a convolution DP over
    // dimensions in the "exponential" normalisation b_a = m_a / a!.
    let factorial = |m: usize| -> f64 { (1..=m).map(|j| j as f64).product() };
    let s_k = move |t: f64| -> f64 {
        let moments = axis_moments(t, k);
        let base: Vec<f64> = moments
            .iter()
            .enumerate()
            .map(|(a, &m)| m / factorial(a))
            .collect();
        let mut acc = vec![0.0; k + 1];
        acc[0] = 1.0;
        for _ in 0..dim {
            let mut next = vec![0.0; k + 1];
            for (i, &x) in acc.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                for (j, &b) in base.iter().enumerate() {
                    if i + j <= k {
                        next[i + j] += x * b;
                    }
                }
            }
            acc = next;
        }
        factorial(k) * acc[k]
    };

    // ∫_0^∞ t^{-1/2} S_k(t) dt = 2 ∫_0^∞ S_k(u²) du.  The substitution u = v/(1−v)
    // maps the half-line to (0, 1); S_k decays like u^{-(dim + 2k)}, so the transformed
    // integrand vanishes smoothly at v = 1 and the adaptive rule resolves the whole
    // tail without truncation error.
    let result = integrate_1d_reference(
        &|v: f64| {
            let u = v / (1.0 - v);
            let jacobian = 1.0 / ((1.0 - v) * (1.0 - v));
            s_k(u * u) * jacobian
        },
        0.0,
        1.0,
    );
    prefactor * 2.0 * result.integral
}

/// Per-axis moments `m_a(t) = ∫_0^1 x^{2a} e^{−t x²} dx` for `a = 0..=k_max`.
///
/// For small `t` an alternating series in `t` is used; for larger `t` the stable
/// upward recursion `m_a = ((2a−1) m_{a−1} − e^{−t}) / (2t)` seeded by the erf-based
/// `m_0`.
#[must_use]
pub fn axis_moments(t: f64, k_max: usize) -> Vec<f64> {
    let mut out = vec![0.0; k_max + 1];
    if t < 1.0 {
        // m_a(t) = Σ_j (−t)^j / (j! (2a + 2j + 1)); terms decay faster than 1/j!.
        for (a, slot) in out.iter_mut().enumerate() {
            let mut term = 1.0;
            let mut sum = 1.0 / (2 * a + 1) as f64;
            for j in 1..60 {
                term *= -t / j as f64;
                let contribution = term / (2 * a + 2 * j + 1) as f64;
                sum += contribution;
                if contribution.abs() < 1e-18 {
                    break;
                }
            }
            *slot = sum;
        }
        return out;
    }
    let sqrt_t = t.sqrt();
    out[0] = 0.5 * (std::f64::consts::PI / t).sqrt() * erf(sqrt_t);
    let e = (-t).exp();
    for a in 1..=k_max {
        out[a] = ((2 * a - 1) as f64 * out[a - 1] - e) / (2.0 * t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::adaptive1d::integrate_1d_reference;

    /// Brute-force nested 1-D quadrature for low-dimensional checks.  The tolerance is
    /// kept at 1e-10 so debug-mode test runs stay fast; test assertions use 1e-8..1e-9.
    fn brute_force_3d(f: impl Fn(&[f64]) -> f64) -> f64 {
        use pagani_quadrature::adaptive1d::integrate_1d;
        let quad = |g: &dyn Fn(f64) -> f64| integrate_1d(&g, 0.0, 1.0, 1e-10, 0.0, 4000).integral;
        let inner = |x: f64, y: f64| quad(&|z: f64| f(&[x, y, z]));
        let middle = |x: f64| quad(&|y: f64| inner(x, y));
        quad(&|x: f64| middle(x))
    }

    #[test]
    fn cos_sum_matches_brute_force_3d() {
        let coeffs = [1.0, 2.0, 3.0];
        let reference = cos_sum_reference(&coeffs, 0.0);
        let brute = brute_force_3d(|x| (x[0] + 2.0 * x[1] + 3.0 * x[2]).cos());
        assert!((reference - brute).abs() < 1e-10, "{reference} vs {brute}");
    }

    #[test]
    fn cos_sum_with_phase() {
        let coeffs = [1.5, 0.5, 2.5];
        let phase = 0.7;
        let reference = cos_sum_reference(&coeffs, phase);
        let brute = brute_force_3d(|x| (0.7 + 1.5 * x[0] + 0.5 * x[1] + 2.5 * x[2]).cos());
        assert!((reference - brute).abs() < 1e-10);
    }

    #[test]
    fn lorentzian_product_matches_brute_force() {
        let a = 0.1;
        let centers = [0.5, 0.3, 0.7];
        let reference = product_lorentzian_reference(a, &centers);
        let brute = brute_force_3d(|x| {
            x.iter()
                .zip(&centers)
                .map(|(&xi, &u)| 1.0 / (a * a + (xi - u) * (xi - u)))
                .product()
        });
        assert!((reference - brute).abs() / brute < 1e-9);
    }

    #[test]
    fn corner_peak_matches_brute_force() {
        let coeffs = [1.0, 2.0, 3.0];
        let reference = corner_peak_reference(&coeffs);
        let brute = brute_force_3d(|x| (1.0 + x[0] + 2.0 * x[1] + 3.0 * x[2]).powi(-4));
        assert!((reference - brute).abs() / brute < 1e-9);
    }

    #[test]
    fn corner_peak_1d_closed_form() {
        // ∫_0^1 (1 + c x)^{-2} dx = 1/(1+c)
        for &c in &[0.5, 1.0, 4.0] {
            assert!((corner_peak_reference(&[c]) - 1.0 / (1.0 + c)).abs() < 1e-14);
        }
    }

    #[test]
    fn gaussian_reference_matches_brute_force() {
        let reference = gaussian_reference(25.0, &[0.5, 0.5, 0.5]);
        let brute = brute_force_3d(|x| {
            (-25.0 * x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>()).exp()
        });
        assert!((reference - brute).abs() / brute < 1e-10);
    }

    #[test]
    fn abs_exponential_matches_brute_force() {
        let reference = abs_exponential_reference(10.0, &[0.5, 0.5, 0.5]);
        let brute =
            brute_force_3d(|x| (-10.0 * x.iter().map(|&v| (v - 0.5).abs()).sum::<f64>()).exp());
        assert!((reference - brute).abs() / brute < 1e-9);
    }

    #[test]
    fn abs_exponential_closed_form_1d() {
        // Symmetric centre: 2 (1 - e^{-a/2}) / a.
        let a = 10.0;
        let expected = 2.0 * (1.0 - (-5.0f64).exp()) / a;
        assert!((abs_exponential_reference(a, &[0.5]) - expected).abs() < 1e-14);
    }

    #[test]
    fn discontinuous_reference_matches_per_axis_quadrature() {
        // The integrand factorises, so each axis factor ∫_0^{cut_i} e^{(i+4) x} dx can
        // be checked independently by 1-D quadrature over the smooth piece.
        for dim in 1..=6usize {
            let reference = discontinuous_reference(dim);
            let numeric: f64 = (1..=dim)
                .map(|i| {
                    let rate = (i + 4) as f64;
                    let cut = (3 + i) as f64 / 10.0;
                    integrate_1d_reference(&|x: f64| (rate * x).exp(), 0.0, cut).integral
                })
                .product();
            assert!(
                (reference - numeric).abs() / numeric < 1e-11,
                "dim {dim}: {reference} vs {numeric}"
            );
        }
    }

    #[test]
    fn box_even_small_cases() {
        // dim 1, p = 1: ∫ x² = 1/3.
        assert!((box_integral_even_reference(1, 1) - 1.0 / 3.0).abs() < 1e-14);
        // dim 2, p = 1: ∫ x²+y² = 2/3.
        assert!((box_integral_even_reference(2, 1) - 2.0 / 3.0).abs() < 1e-14);
        // dim 2, p = 2: ∫ (x²+y²)² = ∫ x⁴+2x²y²+y⁴ = 1/5 + 2/9 + 1/5 = 0.6222…
        assert!((box_integral_even_reference(2, 2) - (0.4 + 2.0 / 9.0)).abs() < 1e-14);
        // p = 0 is the volume.
        assert!((box_integral_even_reference(5, 0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn box_even_matches_brute_force_3d() {
        let reference = box_integral_even_reference(3, 3);
        let brute = brute_force_3d(|x| x.iter().map(|&v| v * v).sum::<f64>().powi(3));
        assert!((reference - brute).abs() / brute < 1e-10);
    }

    #[test]
    fn axis_moments_match_direct_quadrature() {
        for &t in &[0.0, 0.3, 1.0, 4.0, 25.0] {
            let moments = axis_moments(t, 4);
            for (a, &m) in moments.iter().enumerate() {
                let direct = integrate_1d_reference(
                    &|x: f64| x.powi(2 * a as i32) * (-t * x * x).exp(),
                    0.0,
                    1.0,
                )
                .integral;
                assert!((m - direct).abs() < 1e-12, "t={t}, a={a}: {m} vs {direct}");
            }
        }
    }

    #[test]
    fn box_odd_matches_brute_force_3d() {
        // dim 3, s = 1: mean distance to origin in the unit cube — a classic constant
        // (Robbins' constant relative): ∫ |x| dx ≈ 0.960591956455...
        let reference = box_integral_odd_reference(3, 1);
        let brute = brute_force_3d(|x| x.iter().map(|&v| v * v).sum::<f64>().sqrt());
        assert!((reference - brute).abs() < 1e-8, "{reference} vs {brute}");
        assert!((reference - 0.960_591_956_455_052).abs() < 1e-9);
    }

    #[test]
    fn box_odd_matches_brute_force_higher_power() {
        // dim 3, s = 3.
        let reference = box_integral_odd_reference(3, 3);
        let brute = brute_force_3d(|x| x.iter().map(|&v| v * v).sum::<f64>().powf(1.5));
        assert!(
            (reference - brute).abs() / brute < 1e-8,
            "{reference} vs {brute}"
        );
    }

    #[test]
    fn box_odd_consistent_with_even_neighbours() {
        // For the 8-D f8 case (s = 15) the value must lie between the even powers 7 and
        // 8 scaled appropriately: (Σx²)^7 ≤ (Σx²)^7.5 ≤ (Σx²)^8 does NOT hold pointwise
        // (Σx² can be < 1), so instead just check positivity and a loose sandwich using
        // Cauchy–Schwarz: I(7.5)² ≤ I(7)·I(8).
        let i7 = box_integral_even_reference(8, 7);
        let i8 = box_integral_even_reference(8, 8);
        let i75 = box_integral_odd_reference(8, 15);
        assert!(i75 > 0.0);
        assert!(i75 * i75 <= i7 * i8 * (1.0 + 1e-9));
    }
}
