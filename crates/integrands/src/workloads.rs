//! Application-flavoured integrands.
//!
//! The paper motivates GPU quadrature with two applications: parameter estimation in
//! cosmological models (marginal-likelihood / normalisation integrals over a handful
//! of parameters) and beam-dynamics simulation, plus the standard finance use cases of
//! the numerical-integration literature.  These integrands give the examples and the
//! integration tests something realistic to chew on; where a closed form exists it is
//! provided so the examples can report true errors.

use pagani_quadrature::Integrand;

use crate::special::erf;

/// An axis-aligned multivariate Gaussian likelihood over the unit cube, the shape of a
/// posterior-normalisation integrand in a cosmological parameter fit.
///
/// `L(x) = exp(−½ Σ (x_i − μ_i)² / σ_i²)`
///
/// The normalisation over the unit cube has the closed form
/// `Π σ_i √(π/2) (erf((1−μ_i)/(σ_i√2)) + erf(μ_i/(σ_i√2)))`, so examples can report
/// their true error.
#[derive(Debug, Clone)]
pub struct GaussianLikelihood {
    means: Vec<f64>,
    sigmas: Vec<f64>,
}

impl GaussianLikelihood {
    /// Create a likelihood with the given per-parameter means and widths.
    ///
    /// # Panics
    /// Panics if the vectors differ in length, are empty, or any width is non-positive.
    #[must_use]
    pub fn new(means: Vec<f64>, sigmas: Vec<f64>) -> Self {
        assert_eq!(means.len(), sigmas.len(), "means/sigmas must match");
        assert!(!means.is_empty(), "at least one parameter required");
        assert!(sigmas.iter().all(|&s| s > 0.0), "widths must be positive");
        Self { means, sigmas }
    }

    /// A `dim`-parameter fit with narrowing widths, loosely resembling the posterior
    /// of a well-constrained cosmological chain: means staggered around 0.5 and widths
    /// from 0.15 down to a few times 0.01.
    #[must_use]
    pub fn cosmology_like(dim: usize) -> Self {
        let means = (0..dim)
            .map(|i| 0.35 + 0.3 * (i as f64 / dim.max(1) as f64))
            .collect();
        let sigmas = (0..dim).map(|i| 0.15 / (1.0 + i as f64 * 0.8)).collect();
        Self::new(means, sigmas)
    }

    /// Closed-form value of the normalisation integral over the unit cube.
    #[must_use]
    pub fn reference_value(&self) -> f64 {
        self.means
            .iter()
            .zip(&self.sigmas)
            .map(|(&mu, &sigma)| {
                let root2 = std::f64::consts::SQRT_2;
                sigma
                    * (std::f64::consts::PI / 2.0).sqrt()
                    * (erf((1.0 - mu) / (sigma * root2)) + erf(mu / (sigma * root2)))
            })
            .product()
    }
}

impl Integrand for GaussianLikelihood {
    fn dim(&self) -> usize {
        self.means.len()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let exponent: f64 = x
            .iter()
            .zip(self.means.iter().zip(&self.sigmas))
            .map(|(&xi, (&mu, &sigma))| {
                let z = (xi - mu) / sigma;
                z * z
            })
            .sum();
        (-0.5 * exponent).exp()
    }

    fn name(&self) -> String {
        format!("gaussian-likelihood-{}d", self.means.len())
    }
}

/// The discounted payoff of a European basket call option under a log-normal model,
/// mapped onto the unit cube through inverse-normal sampling of the terminal prices.
///
/// `payoff(u) = e^{−rT} max(Σ w_i S_i exp((r − σ_i²/2) T + σ_i √T Φ^{-1}(u_i)) − K, 0)`
///
/// There is no closed form for a basket (only Monte Carlo / quadrature estimates), so
/// no reference value is exposed; the example cross-checks PAGANI against the QMC
/// baseline instead — exactly the situation the paper's finance motivation describes.
#[derive(Debug, Clone)]
pub struct BasketOption {
    spots: Vec<f64>,
    weights: Vec<f64>,
    vols: Vec<f64>,
    strike: f64,
    rate: f64,
    maturity: f64,
}

impl BasketOption {
    /// Construct a basket option.
    ///
    /// # Panics
    /// Panics if the per-asset vectors differ in length, are empty, or contain
    /// non-positive spots/vols, or if `maturity <= 0`.
    #[must_use]
    pub fn new(
        spots: Vec<f64>,
        weights: Vec<f64>,
        vols: Vec<f64>,
        strike: f64,
        rate: f64,
        maturity: f64,
    ) -> Self {
        assert_eq!(spots.len(), weights.len());
        assert_eq!(spots.len(), vols.len());
        assert!(!spots.is_empty(), "at least one asset required");
        assert!(spots.iter().all(|&s| s > 0.0), "spots must be positive");
        assert!(
            vols.iter().all(|&v| v > 0.0),
            "volatilities must be positive"
        );
        assert!(maturity > 0.0, "maturity must be positive");
        Self {
            spots,
            weights,
            vols,
            strike,
            rate,
            maturity,
        }
    }

    /// A small equally-weighted five-asset basket at the money.
    #[must_use]
    pub fn demo_basket() -> Self {
        Self::new(
            vec![100.0; 5],
            vec![0.2; 5],
            vec![0.2, 0.25, 0.3, 0.35, 0.4],
            100.0,
            0.03,
            1.0,
        )
    }

    /// Inverse standard-normal CDF (Acklam's rational approximation, |error| < 1.2e-9,
    /// refined by one Halley step using `erf` to full double precision).
    #[must_use]
    pub fn inverse_normal_cdf(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "inverse CDF defined on (0,1)");
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        let p_low = 0.02425;
        let x = if p < p_low {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - p_low {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement against Φ(x) − p expressed through erf.
        let e = 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2)) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }
}

impl Integrand for BasketOption {
    fn dim(&self) -> usize {
        self.spots.len()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        // Clamp away from the endpoints: the open unit cube is the paper's domain and
        // cubature points never hit the boundary exactly, but be defensive anyway.
        let basket: f64 = x
            .iter()
            .zip(self.spots.iter().zip(self.weights.iter().zip(&self.vols)))
            .map(|(&u, (&s0, (&w, &sigma)))| {
                let u = u.clamp(1e-12, 1.0 - 1e-12);
                let z = Self::inverse_normal_cdf(u);
                let drift = (self.rate - 0.5 * sigma * sigma) * self.maturity;
                let diffusion = sigma * self.maturity.sqrt() * z;
                w * s0 * (drift + diffusion).exp()
            })
            .sum();
        (-self.rate * self.maturity).exp() * (basket - self.strike).max(0.0)
    }

    fn name(&self) -> String {
        format!("basket-option-{}d", self.spots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::adaptive1d::integrate_1d_reference;
    use proptest::prelude::*;

    #[test]
    fn likelihood_reference_matches_1d_quadrature() {
        let like = GaussianLikelihood::new(vec![0.4], vec![0.07]);
        let numeric = integrate_1d_reference(&|x: f64| like.eval(&[x]), 0.0, 1.0).integral;
        assert!((like.reference_value() - numeric).abs() / numeric < 1e-11);
    }

    #[test]
    fn likelihood_peaks_at_the_mean() {
        let like = GaussianLikelihood::cosmology_like(4);
        let at_mean = like.eval(&[0.35, 0.35 + 0.3 * 0.25, 0.35 + 0.3 * 0.5, 0.35 + 0.3 * 0.75]);
        assert!((at_mean - 1.0).abs() < 1e-12);
        assert!(like.eval(&[0.0; 4]) < at_mean);
    }

    #[test]
    fn cosmology_like_narrows_with_index() {
        let like = GaussianLikelihood::cosmology_like(6);
        assert_eq!(like.dim(), 6);
        assert!(like.sigmas.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    #[should_panic(expected = "widths must be positive")]
    fn zero_width_is_rejected() {
        let _ = GaussianLikelihood::new(vec![0.5], vec![0.0]);
    }

    #[test]
    fn inverse_normal_cdf_round_trips_through_erf() {
        for &p in &[1e-6, 0.01, 0.3, 0.5, 0.77, 0.999, 1.0 - 1e-7] {
            let x = BasketOption::inverse_normal_cdf(p);
            let back = 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
            assert!((back - p).abs() < 1e-12, "p = {p}: got {back}");
        }
        assert!(BasketOption::inverse_normal_cdf(0.5).abs() < 1e-12);
    }

    #[test]
    fn basket_payoff_is_nonnegative_and_increases_with_u() {
        let option = BasketOption::demo_basket();
        let low = option.eval(&[0.1; 5]);
        let high = option.eval(&[0.9; 5]);
        assert!(low >= 0.0);
        assert!(high > low);
    }

    #[test]
    fn single_asset_option_matches_black_scholes() {
        // With one asset and weight 1 the quadrature over u reproduces Black–Scholes.
        let option = BasketOption::new(vec![100.0], vec![1.0], vec![0.2], 100.0, 0.03, 1.0);
        let numeric = integrate_1d_reference(&|u: f64| option.eval(&[u]), 1e-10, 1.0 - 1e-10);
        let black_scholes = {
            let (s0, k, r, sigma, t) = (100.0f64, 100.0f64, 0.03f64, 0.2f64, 1.0f64);
            let d1 = ((s0 / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
            let d2 = d1 - sigma * t.sqrt();
            let phi = |x: f64| 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
            s0 * phi(d1) - k * (-r * t).exp() * phi(d2)
        };
        assert!(
            (numeric.integral - black_scholes).abs() < 2e-3,
            "{} vs {black_scholes}",
            numeric.integral
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_inverse_cdf_is_monotone(p1 in 0.001f64..0.999, dp in 0.0005f64..0.1) {
            let p2 = (p1 + dp).min(0.9995);
            prop_assert!(BasketOption::inverse_normal_cdf(p2) >= BasketOption::inverse_normal_cdf(p1));
        }

        #[test]
        fn prop_likelihood_reference_bounded_by_volume(dim in 1usize..8) {
            let like = GaussianLikelihood::cosmology_like(dim);
            let v = like.reference_value();
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
        }
    }
}
