//! The paper's test suite: integrands f1–f8 of §4.1 with fixed parameters and
//! analytic reference values.
//!
//! All integrands are defined on the unit hyper-cube `(0,1)^d`.  The dimensionality is
//! a constructor parameter where the paper varies it (f3 is run in 3 and 8 dimensions,
//! f4 in 5 and 8, f5 in 5 and 8, …); the fixed-dimension integrands (f2 and f6) reject
//! other dimensions.

use pagani_quadrature::Integrand;

use crate::reference;

/// Which of the paper's eight integrand families an instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperFamily {
    /// f1: oscillatory `cos(Σ i·x_i)`.
    F1Oscillatory,
    /// f2: product of six Lorentzian peaks.
    F2ProductPeak,
    /// f3: corner peak `(1 + Σ i·x_i)^{-(d+1)}`.
    F3CornerPeak,
    /// f4: sharp Gaussian `exp(−625 Σ (x_i − 1/2)²)`.
    F4Gaussian,
    /// f5: C⁰ ridge `exp(−10 Σ |x_i − 1/2|)`.
    F5C0,
    /// f6: exponential with a discontinuous cut-off per axis.
    F6Discontinuous,
    /// f7: box integral `(Σ x_i²)^{11}`.
    F7BoxEven,
    /// f8: box integral `(Σ x_i²)^{15/2}`.
    F8BoxHalfInteger,
}

/// One concrete paper integrand (family + dimension), carrying its reference value.
#[derive(Debug, Clone)]
pub struct PaperIntegrand {
    family: PaperFamily,
    dim: usize,
    reference: f64,
}

impl PaperIntegrand {
    /// f1(x) = cos(Σ_{i=1}^{d} i·x_i).  The paper uses d = 8.
    #[must_use]
    pub fn f1(dim: usize) -> Self {
        assert!(dim >= 1, "f1 needs at least one dimension");
        let coeffs: Vec<f64> = (1..=dim).map(|i| i as f64).collect();
        Self {
            family: PaperFamily::F1Oscillatory,
            dim,
            reference: reference::cos_sum_reference(&coeffs, 0.0),
        }
    }

    /// f2(x) = Π_{i=1}^{6} (1/50² + (x_i − 1/2)²)^{-1}.  Fixed at 6 dimensions.
    #[must_use]
    pub fn f2() -> Self {
        let dim = 6;
        Self {
            family: PaperFamily::F2ProductPeak,
            dim,
            reference: reference::product_lorentzian_reference(1.0 / 50.0, &[0.5; 6]),
        }
    }

    /// f3(x) = (1 + Σ_{i=1}^{d} i·x_i)^{-(d+1)}.  The paper uses d = 3 and d = 8.
    #[must_use]
    pub fn f3(dim: usize) -> Self {
        assert!((1..=20).contains(&dim), "f3 supports 1..=20 dimensions");
        let coeffs: Vec<f64> = (1..=dim).map(|i| i as f64).collect();
        Self {
            family: PaperFamily::F3CornerPeak,
            dim,
            reference: reference::corner_peak_reference(&coeffs),
        }
    }

    /// f4(x) = exp(−625 Σ_{i=1}^{d} (x_i − 1/2)²).  The paper uses d = 5 and d = 8.
    #[must_use]
    pub fn f4(dim: usize) -> Self {
        assert!(dim >= 1, "f4 needs at least one dimension");
        Self {
            family: PaperFamily::F4Gaussian,
            dim,
            reference: reference::gaussian_reference(625.0, &vec![0.5; dim]),
        }
    }

    /// f5(x) = exp(−10 Σ_{i=1}^{d} |x_i − 1/2|).  The paper uses d = 5 and d = 8.
    #[must_use]
    pub fn f5(dim: usize) -> Self {
        assert!(dim >= 1, "f5 needs at least one dimension");
        Self {
            family: PaperFamily::F5C0,
            dim,
            reference: reference::abs_exponential_reference(10.0, &vec![0.5; dim]),
        }
    }

    /// f6(x) = exp(Σ_{i=1}^{6} (i+4)·x_i) when every x_i < (3+i)/10, else 0.
    /// Fixed at 6 dimensions.
    #[must_use]
    pub fn f6() -> Self {
        let dim = 6;
        Self {
            family: PaperFamily::F6Discontinuous,
            dim,
            reference: reference::discontinuous_reference(dim),
        }
    }

    /// f7(x) = (Σ_{i=1}^{d} x_i²)^{11}.  The paper uses d = 8.
    #[must_use]
    pub fn f7(dim: usize) -> Self {
        assert!(dim >= 1, "f7 needs at least one dimension");
        Self {
            family: PaperFamily::F7BoxEven,
            dim,
            reference: reference::box_integral_even_reference(dim, 11),
        }
    }

    /// f8(x) = (Σ_{i=1}^{d} x_i²)^{15/2}.  The paper uses d = 8.
    #[must_use]
    pub fn f8(dim: usize) -> Self {
        assert!(dim >= 1, "f8 needs at least one dimension");
        Self {
            family: PaperFamily::F8BoxHalfInteger,
            dim,
            reference: reference::box_integral_odd_reference(dim, 15),
        }
    }

    /// The integrand family.
    #[must_use]
    pub fn family(&self) -> PaperFamily {
        self.family
    }

    /// Analytic value of the integral over the unit cube.
    #[must_use]
    pub fn reference_value(&self) -> f64 {
        self.reference
    }

    /// Whether the integrand takes both signs on the domain, in which case PAGANI's
    /// relative-error filtering must be disabled (§3.5.1 / §4.3 of the paper — the
    /// oscillatory f1 is the only such member of the suite).
    #[must_use]
    pub fn is_sign_oscillating(&self) -> bool {
        matches!(self.family, PaperFamily::F1Oscillatory)
    }

    /// Short label matching the paper's plots, e.g. `"5D f4"`.
    #[must_use]
    pub fn label(&self) -> String {
        let idx = match self.family {
            PaperFamily::F1Oscillatory => 1,
            PaperFamily::F2ProductPeak => 2,
            PaperFamily::F3CornerPeak => 3,
            PaperFamily::F4Gaussian => 4,
            PaperFamily::F5C0 => 5,
            PaperFamily::F6Discontinuous => 6,
            PaperFamily::F7BoxEven => 7,
            PaperFamily::F8BoxHalfInteger => 8,
        };
        format!("{}D f{}", self.dim, idx)
    }
}

impl Integrand for PaperIntegrand {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        match self.family {
            PaperFamily::F1Oscillatory => x
                .iter()
                .enumerate()
                .map(|(i, &xi)| (i as f64 + 1.0) * xi)
                .sum::<f64>()
                .cos(),
            PaperFamily::F2ProductPeak => {
                let a2 = (1.0f64 / 50.0) * (1.0 / 50.0);
                x.iter()
                    .map(|&xi| 1.0 / (a2 + (xi - 0.5) * (xi - 0.5)))
                    .product()
            }
            PaperFamily::F3CornerPeak => {
                let s: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(i, &xi)| (i as f64 + 1.0) * xi)
                    .sum();
                (1.0 + s).powi(-(self.dim as i32) - 1)
            }
            PaperFamily::F4Gaussian => {
                let s: f64 = x.iter().map(|&xi| (xi - 0.5) * (xi - 0.5)).sum();
                (-625.0 * s).exp()
            }
            PaperFamily::F5C0 => {
                let s: f64 = x.iter().map(|&xi| (xi - 0.5).abs()).sum();
                (-10.0 * s).exp()
            }
            PaperFamily::F6Discontinuous => {
                let inside = x
                    .iter()
                    .enumerate()
                    .all(|(i, &xi)| xi < (3 + i + 1) as f64 / 10.0);
                if inside {
                    x.iter()
                        .enumerate()
                        .map(|(i, &xi)| (i as f64 + 1.0 + 4.0) * xi)
                        .sum::<f64>()
                        .exp()
                } else {
                    0.0
                }
            }
            PaperFamily::F7BoxEven => {
                let s: f64 = x.iter().map(|&xi| xi * xi).sum();
                s.powi(11)
            }
            PaperFamily::F8BoxHalfInteger => {
                let s: f64 = x.iter().map(|&xi| xi * xi).sum();
                s.powf(7.5)
            }
        }
    }

    fn name(&self) -> String {
        self.label()
    }
}

/// The `(integrand, dimension)` pairs plotted in the paper's figures
/// (§4.1: f1, f3, f4, f5, f7, f8 in 8D; f4 in 5D; f6 in 6D; f3 in 3D; f5 in 5D).
#[must_use]
pub fn paper_plot_suite() -> Vec<PaperIntegrand> {
    vec![
        PaperIntegrand::f1(8),
        PaperIntegrand::f3(3),
        PaperIntegrand::f3(8),
        PaperIntegrand::f4(5),
        PaperIntegrand::f4(8),
        PaperIntegrand::f5(5),
        PaperIntegrand::f5(8),
        PaperIntegrand::f6(),
        PaperIntegrand::f7(8),
        PaperIntegrand::f8(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::adaptive1d::integrate_1d_reference;

    #[test]
    fn dimensions_match_construction() {
        assert_eq!(PaperIntegrand::f1(8).dim(), 8);
        assert_eq!(PaperIntegrand::f2().dim(), 6);
        assert_eq!(PaperIntegrand::f6().dim(), 6);
        assert_eq!(PaperIntegrand::f4(5).dim(), 5);
    }

    #[test]
    fn labels_match_paper_convention() {
        assert_eq!(PaperIntegrand::f4(5).label(), "5D f4");
        assert_eq!(PaperIntegrand::f7(8).label(), "8D f7");
        assert_eq!(PaperIntegrand::f6().label(), "6D f6");
    }

    #[test]
    fn only_f1_is_sign_oscillating() {
        assert!(PaperIntegrand::f1(8).is_sign_oscillating());
        for f in [
            PaperIntegrand::f2(),
            PaperIntegrand::f3(3),
            PaperIntegrand::f4(5),
            PaperIntegrand::f5(5),
            PaperIntegrand::f6(),
            PaperIntegrand::f7(8),
            PaperIntegrand::f8(8),
        ] {
            assert!(!f.is_sign_oscillating(), "{}", f.label());
        }
    }

    #[test]
    fn f6_is_zero_outside_the_cutoffs() {
        let f6 = PaperIntegrand::f6();
        // First axis cut-off is 0.4.
        assert_eq!(f6.eval(&[0.5, 0.1, 0.1, 0.1, 0.1, 0.1]), 0.0);
        assert!(f6.eval(&[0.3, 0.1, 0.1, 0.1, 0.1, 0.1]) > 0.0);
        // Last axis cut-off is 0.9.
        assert_eq!(f6.eval(&[0.1, 0.1, 0.1, 0.1, 0.1, 0.95]), 0.0);
    }

    #[test]
    fn f4_peaks_at_the_centre() {
        let f4 = PaperIntegrand::f4(5);
        assert_eq!(f4.eval(&[0.5; 5]), 1.0);
        assert!(f4.eval(&[0.4; 5]) < 1.0);
        assert!(f4.eval(&[0.0; 5]) < 1e-100 * f4.eval(&[0.5; 5]));
    }

    #[test]
    fn f7_f8_are_monotone_in_radius() {
        let f7 = PaperIntegrand::f7(8);
        let f8 = PaperIntegrand::f8(8);
        assert!(f7.eval(&[0.9; 8]) > f7.eval(&[0.5; 8]));
        assert!(f8.eval(&[0.9; 8]) > f8.eval(&[0.5; 8]));
        assert_eq!(f7.eval(&[0.0; 8]), 0.0);
    }

    #[test]
    fn low_dim_references_match_nested_quadrature() {
        // 1-D and 2-D instances can be verified directly by nested 1-D quadrature.
        let cases: Vec<(PaperIntegrand, f64)> = vec![
            (PaperIntegrand::f1(2), 1e-10),
            (PaperIntegrand::f3(2), 1e-9),
            (PaperIntegrand::f4(2), 1e-9),
            (PaperIntegrand::f5(2), 1e-9),
            (PaperIntegrand::f7(2), 1e-9),
        ];
        for (integrand, tol) in cases {
            let numeric = integrate_1d_reference(
                &|x: f64| {
                    integrate_1d_reference(&|y: f64| integrand.eval(&[x, y]), 0.0, 1.0).integral
                },
                0.0,
                1.0,
            )
            .integral;
            let reference = integrand.reference_value();
            assert!(
                (numeric - reference).abs() / reference.abs().max(1e-300) < tol,
                "{}: {numeric} vs {reference}",
                integrand.label()
            );
        }
    }

    #[test]
    fn known_closed_forms() {
        // f4 per-axis factor to the power of the dimension.
        let per_axis = crate::special::gaussian_segment_integral(625.0, 0.5, 0.0, 1.0);
        let f4 = PaperIntegrand::f4(5);
        assert!((f4.reference_value() - per_axis.powi(5)).abs() < 1e-15);
        // f5 per-axis factor.
        let per_axis = 2.0 * (1.0 - (-5.0f64).exp()) / 10.0;
        let f5 = PaperIntegrand::f5(8);
        assert!((f5.reference_value() - per_axis.powi(8)).abs() < 1e-16);
    }

    #[test]
    fn reference_values_are_finite_and_positive_where_expected() {
        for f in paper_plot_suite() {
            let v = f.reference_value();
            assert!(v.is_finite(), "{}", f.label());
            if !f.is_sign_oscillating() {
                assert!(v > 0.0, "{}", f.label());
            }
        }
    }

    #[test]
    fn plot_suite_contains_the_figure_cases() {
        let labels: Vec<String> = paper_plot_suite().iter().map(|f| f.label()).collect();
        for needed in [
            "5D f4", "6D f6", "8D f7", "5D f5", "3D f3", "8D f1", "8D f8",
        ] {
            assert!(labels.iter().any(|l| l == needed), "missing {needed}");
        }
    }
}
