//! Dynamic method selection: one configuration enum, one builder, five
//! integrators.
//!
//! The paper's evaluation sweeps PAGANI against its baselines over a grid of
//! tolerances; a serving front-end picks a method per request.  Both want the
//! same thing: turn a *value* describing a method into a live
//! `Box<dyn Integrator>`.  [`MethodConfig`] is that value — one variant per
//! method, wrapping the method's own configuration type — and
//! [`IntegratorBuilder`] is the fluent spelling:
//!
//! ```
//! use pagani_baselines::IntegratorBuilder;
//! use pagani_core::PaganiConfig;
//! use pagani_device::Device;
//! use pagani_quadrature::{FnIntegrand, Tolerances};
//!
//! let device = Device::test_small();
//! let integrator = IntegratorBuilder::pagani(PaganiConfig::test_small(Tolerances::rel(1e-3)))
//!     .tolerances(Tolerances::rel(1e-5))
//!     .build(&device);
//! let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
//! let result = integrator.integrate(&f);
//! assert!(result.converged());
//! assert_eq!(integrator.name(), "pagani");
//! ```

use pagani_core::{Integrator, IntegratorFactory, Pagani, PaganiConfig};
use pagani_device::Device;
use pagani_quadrature::Tolerances;

use crate::cuhre::{Cuhre, CuhreConfig};
use crate::monte_carlo::{MonteCarlo, MonteCarloConfig};
use crate::qmc::{Qmc, QmcConfig};
use crate::two_phase::{TwoPhase, TwoPhaseConfig};

/// The configuration of any integration method in the workspace.
///
/// Each variant wraps the method's own configuration type unchanged, so every
/// knob stays reachable; [`MethodConfig::build`] instantiates the matching
/// [`Integrator`] on a device.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodConfig {
    /// The PAGANI algorithm (breadth-first parallel adaptive).
    Pagani(PaganiConfig),
    /// Sequential Cuhre (max-error-first heap, host only).
    Cuhre(CuhreConfig),
    /// The two-phase GPU method of Arumugam et al.
    TwoPhase(TwoPhaseConfig),
    /// Randomized quasi-Monte Carlo (shifted Halton points).
    Qmc(QmcConfig),
    /// Plain Monte Carlo with a sample-variance error estimate.
    MonteCarlo(MonteCarloConfig),
}

impl MethodConfig {
    /// The method's stable name, matching [`Integrator::name`] of the built
    /// integrator.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MethodConfig::Pagani(_) => "pagani",
            MethodConfig::Cuhre(_) => "cuhre",
            MethodConfig::TwoPhase(_) => "two-phase",
            MethodConfig::Qmc(_) => "qmc",
            MethodConfig::MonteCarlo(_) => "monte-carlo",
        }
    }

    /// The configured error targets.
    #[must_use]
    pub fn tolerances(&self) -> Tolerances {
        match self {
            MethodConfig::Pagani(c) => c.tolerances,
            MethodConfig::Cuhre(c) => c.tolerances,
            MethodConfig::TwoPhase(c) => c.tolerances,
            MethodConfig::Qmc(c) => c.tolerances,
            MethodConfig::MonteCarlo(c) => c.tolerances,
        }
    }

    /// Replace the error targets, keeping every other knob.
    #[must_use]
    pub fn with_tolerances(mut self, tolerances: Tolerances) -> Self {
        match &mut self {
            MethodConfig::Pagani(c) => c.tolerances = tolerances,
            MethodConfig::Cuhre(c) => c.tolerances = tolerances,
            MethodConfig::TwoPhase(c) => c.tolerances = tolerances,
            MethodConfig::Qmc(c) => c.tolerances = tolerances,
            MethodConfig::MonteCarlo(c) => c.tolerances = tolerances,
        }
        self
    }

    /// Instantiate the configured method on `device`.
    ///
    /// Host-only methods (Cuhre) ignore the device; every other method clones
    /// the handle and launches its kernels on it.
    #[must_use]
    pub fn build(&self, device: &Device) -> Box<dyn Integrator> {
        match self {
            MethodConfig::Pagani(c) => Box::new(Pagani::new(device.clone(), c.clone())),
            MethodConfig::Cuhre(c) => Box::new(Cuhre::new(c.clone())),
            MethodConfig::TwoPhase(c) => Box::new(TwoPhase::new(device.clone(), c.clone())),
            MethodConfig::Qmc(c) => Box::new(Qmc::new(device.clone(), c.clone())),
            MethodConfig::MonteCarlo(c) => Box::new(MonteCarlo::new(device.clone(), c.clone())),
        }
    }

    /// Every method at its paper-default configuration for `tolerances` — the
    /// sweep the benchmark harness and the comparison example iterate.
    #[must_use]
    pub fn all(tolerances: Tolerances) -> Vec<MethodConfig> {
        vec![
            MethodConfig::Pagani(PaganiConfig::new(tolerances)),
            MethodConfig::Cuhre(CuhreConfig::new(tolerances)),
            MethodConfig::TwoPhase(TwoPhaseConfig::new(tolerances)),
            MethodConfig::Qmc(QmcConfig::new(tolerances)),
            MethodConfig::MonteCarlo(MonteCarloConfig::new(tolerances)),
        ]
    }
}

/// A [`MethodConfig`] *is* an integrator factory: jobs submitted to the
/// scheduling service carry one as their per-job method override
/// (`BatchJob::with_method`), and the service builds the configured method on
/// the job's device view when the job is claimed.
impl IntegratorFactory for MethodConfig {
    fn method_name(&self) -> &'static str {
        self.name()
    }

    fn tolerances(&self) -> Option<Tolerances> {
        Some(MethodConfig::tolerances(self))
    }

    fn build(&self, device: &Device) -> Box<dyn Integrator> {
        MethodConfig::build(self, device)
    }
}

/// Fluent construction of a `Box<dyn Integrator>` from a method choice.
///
/// See the [module docs](crate::method) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegratorBuilder {
    config: MethodConfig,
}

impl IntegratorBuilder {
    /// Start from any [`MethodConfig`] value.
    #[must_use]
    pub fn from_config(config: MethodConfig) -> Self {
        Self { config }
    }

    /// Select PAGANI with `config`.
    #[must_use]
    pub fn pagani(config: PaganiConfig) -> Self {
        Self::from_config(MethodConfig::Pagani(config))
    }

    /// Select sequential Cuhre with `config`.
    #[must_use]
    pub fn cuhre(config: CuhreConfig) -> Self {
        Self::from_config(MethodConfig::Cuhre(config))
    }

    /// Select the two-phase method with `config`.
    #[must_use]
    pub fn two_phase(config: TwoPhaseConfig) -> Self {
        Self::from_config(MethodConfig::TwoPhase(config))
    }

    /// Select randomized QMC with `config`.
    #[must_use]
    pub fn qmc(config: QmcConfig) -> Self {
        Self::from_config(MethodConfig::Qmc(config))
    }

    /// Select plain Monte Carlo with `config`.
    #[must_use]
    pub fn monte_carlo(config: MonteCarloConfig) -> Self {
        Self::from_config(MethodConfig::MonteCarlo(config))
    }

    /// Override the error targets of the selected method.
    #[must_use]
    pub fn tolerances(mut self, tolerances: Tolerances) -> Self {
        self.config = self.config.with_tolerances(tolerances);
        self
    }

    /// The method configuration assembled so far.
    #[must_use]
    pub fn config(&self) -> &MethodConfig {
        &self.config
    }

    /// Instantiate the selected method on `device`.
    #[must_use]
    pub fn build(self, device: &Device) -> Box<dyn Integrator> {
        self.config.build(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_quadrature::FnIntegrand;

    #[test]
    fn all_methods_build_and_answer_through_the_trait() {
        let device = Device::test_small();
        let f = FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]);
        for config in MethodConfig::all(Tolerances::rel(1e-3)) {
            let integrator = config.build(&device);
            assert_eq!(integrator.name(), config.name());
            assert!(integrator.capabilities().supports_dim(2));
            let result = integrator.integrate(&f);
            assert!(
                result.converged(),
                "{} did not converge on the easy polynomial",
                config.name()
            );
            assert!(
                (result.estimate - 1.25).abs() < 5e-3,
                "{}: estimate {}",
                config.name(),
                result.estimate
            );
        }
    }

    #[test]
    fn builder_tolerance_override_applies_to_any_method() {
        let tight = Tolerances::rel(1e-7);
        for config in MethodConfig::all(Tolerances::rel(1e-3)) {
            let overridden = IntegratorBuilder::from_config(config)
                .tolerances(tight)
                .config()
                .clone();
            assert!((overridden.tolerances().rel - 1e-7).abs() < 1e-20);
        }
    }

    #[test]
    fn builder_example_shape_compiles_and_runs() {
        let device = Device::test_small();
        let integrator = IntegratorBuilder::pagani(PaganiConfig::test_small(Tolerances::rel(1e-3)))
            .tolerances(Tolerances::rel(1e-6))
            .build(&device);
        let f = FnIntegrand::new(2, |x: &[f64]| x[0] + x[1]);
        let result = integrator.integrate(&f);
        assert!(result.converged());
        assert!((result.estimate - 1.0).abs() < 1e-6);
    }

    #[test]
    fn method_names_are_distinct() {
        let names: Vec<_> = MethodConfig::all(Tolerances::default())
            .iter()
            .map(MethodConfig::name)
            .collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
