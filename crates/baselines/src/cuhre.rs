//! Sequential Cuhre: the fastest open-source deterministic adaptive method (§2.1).
//!
//! Cuhre follows the generic sequential adaptive loop (Algorithm 1): keep every region
//! in a priority queue ordered by error estimate, repeatedly split the worst region in
//! two along the axis chosen by the Genz–Malik rule, and stop when the cumulative
//! relative error satisfies the tolerance or the evaluation budget runs out.  The
//! error estimates are refined with Berntsen's two-level estimate, matching the
//! `final=1` setting the paper uses for Cuba.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pagani_core::integrator::{check_cancelled, ensure_matching_dims, Capabilities, Integrator};
use pagani_core::CancelToken;
use pagani_quadrature::two_level::refine_error;
use pagani_quadrature::{
    EvalScratch, GenzMalik, Integrand, IntegrationResult, Region, Termination, Tolerances,
};

/// Configuration of the sequential Cuhre baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CuhreConfig {
    /// Relative / absolute error targets.
    pub tolerances: Tolerances,
    /// Maximum number of integrand evaluations (the paper sets 10⁹).
    pub max_evaluations: u64,
    /// Whether to apply the two-level error refinement to children estimates.
    pub two_level_errors: bool,
}

impl CuhreConfig {
    /// Configuration with the paper's defaults for a given tolerance.
    #[must_use]
    pub fn new(tolerances: Tolerances) -> Self {
        Self {
            tolerances,
            max_evaluations: 1_000_000_000,
            two_level_errors: true,
        }
    }

    /// Configuration targeting `digits` decimal digits of relative precision.
    #[must_use]
    pub fn digits(digits: f64) -> Self {
        Self::new(Tolerances::digits(digits))
    }

    /// Cap the evaluation budget (useful for tests and benchmark sweeps).
    #[must_use]
    pub fn with_max_evaluations(mut self, max: u64) -> Self {
        self.max_evaluations = max;
        self
    }
}

impl Default for CuhreConfig {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

/// A region in the Cuhre heap.
#[derive(Debug, Clone)]
struct HeapRegion {
    region: Region,
    integral: f64,
    error: f64,
    split_axis: usize,
}

impl PartialEq for HeapRegion {
    fn eq(&self, other: &Self) -> bool {
        self.error == other.error
    }
}
impl Eq for HeapRegion {}
impl PartialOrd for HeapRegion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRegion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.error
            .partial_cmp(&other.error)
            .unwrap_or(Ordering::Equal)
    }
}

/// The sequential Cuhre integrator.
#[derive(Debug, Clone)]
pub struct Cuhre {
    config: CuhreConfig,
}

impl Cuhre {
    /// Create an integrator with `config`.
    #[must_use]
    pub fn new(config: CuhreConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &CuhreConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> IntegrationResult {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ or the dimension is
    /// outside the Genz–Malik range (2..=30).
    pub fn integrate_region<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> IntegrationResult {
        self.integrate_region_cancellable(f, region, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region, polling `cancel` at every heap
    /// pop (the sequential loop's iteration boundary).  A cancelled run
    /// reports [`Termination::Cancelled`] with the cumulative estimate and
    /// counters accumulated so far; an uncancelled token never changes a
    /// result.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ or the dimension is
    /// outside the Genz–Malik range (2..=30).
    pub fn integrate_region_cancellable<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let dim = f.dim();
        let rule = GenzMalik::new(dim);
        let mut scratch = EvalScratch::new(dim);
        let tolerances = self.config.tolerances;

        let first = rule.evaluate(f, region, &mut scratch);
        let mut evaluations = first.evaluations as u64;
        let mut heap = BinaryHeap::new();
        heap.push(HeapRegion {
            region: region.clone(),
            integral: first.integral,
            error: first.error,
            split_axis: first.split_axis,
        });
        let mut total_integral = first.integral;
        let mut total_error = first.error;
        let mut regions_generated = 1u64;
        let mut iterations = 0usize;
        let termination;

        loop {
            if tolerances.satisfied_by(total_integral, total_error) {
                termination = Termination::Converged;
                break;
            }
            // Cancellation checkpoint: one per heap pop, after the convergence
            // check so a run that already satisfied its tolerances keeps its
            // converged status even when a cancel races the finish.
            if let Some(cancelled) = check_cancelled(cancel) {
                termination = cancelled;
                break;
            }
            if evaluations >= self.config.max_evaluations {
                termination = Termination::MaxEvaluations;
                break;
            }
            let Some(worst) = heap.pop() else {
                termination = Termination::MaxIterations;
                break;
            };
            iterations += 1;
            let (left, right) = worst.region.split(worst.split_axis);
            let left_est = rule.evaluate(f, &left, &mut scratch);
            let right_est = rule.evaluate(f, &right, &mut scratch);
            evaluations += (left_est.evaluations + right_est.evaluations) as u64;
            regions_generated += 2;

            let (left_err, right_err) = if self.config.two_level_errors {
                (
                    refine_error(
                        left_est.integral,
                        left_est.error,
                        right_est.integral,
                        right_est.error,
                        worst.integral,
                    ),
                    refine_error(
                        right_est.integral,
                        right_est.error,
                        left_est.integral,
                        left_est.error,
                        worst.integral,
                    ),
                )
            } else {
                (left_est.error, right_est.error)
            };

            total_integral += left_est.integral + right_est.integral - worst.integral;
            total_error += left_err + right_err - worst.error;

            heap.push(HeapRegion {
                region: left,
                integral: left_est.integral,
                error: left_err,
                split_axis: left_est.split_axis,
            });
            heap.push(HeapRegion {
                region: right,
                integral: right_est.integral,
                error: right_err,
                split_axis: right_est.split_axis,
            });
        }

        IntegrationResult {
            estimate: total_integral,
            error_estimate: total_error,
            termination,
            iterations,
            function_evaluations: evaluations,
            regions_generated,
            active_regions_final: heap.len(),
            wall_time: start.elapsed(),
        }
    }
}

impl Integrator for Cuhre {
    fn name(&self) -> &'static str {
        "cuhre"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            deterministic: true,
            uses_device: false,
            adaptive: true,
            statistical_errors: false,
            min_dim: 2,
            max_dim: Some(30),
        }
    }

    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        Cuhre::integrate_region_cancellable(self, f, region, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_integrands::workloads::GaussianLikelihood;
    use pagani_quadrature::FnIntegrand;

    fn cuhre(rel: f64) -> Cuhre {
        Cuhre::new(CuhreConfig::new(Tolerances::rel(rel)).with_max_evaluations(20_000_000))
    }

    #[test]
    fn constant_converges_without_splitting() {
        let result = cuhre(1e-6).integrate(&FnIntegrand::new(3, |_: &[f64]| 2.0));
        assert!(result.converged());
        assert!((result.estimate - 2.0).abs() < 1e-10);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.regions_generated, 1);
    }

    #[test]
    fn gaussian_3d_reaches_requested_digits() {
        let f = PaperIntegrand::f4(3);
        for digits in [3.0, 5.0] {
            let result = cuhre(10f64.powf(-digits)).integrate(&f);
            assert!(result.converged(), "digits {digits}");
            assert!(
                result.true_relative_error(f.reference_value()) < 10f64.powf(-digits),
                "digits {digits}: true error {}",
                result.true_relative_error(f.reference_value())
            );
        }
    }

    #[test]
    fn corner_peak_3d_is_accurate() {
        let f = PaperIntegrand::f3(3);
        let result = cuhre(1e-6).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(f.reference_value()) < 1e-6);
    }

    #[test]
    fn c0_ridge_3d_is_accurate() {
        let f = PaperIntegrand::f5(3);
        let result = cuhre(1e-4).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(f.reference_value()) < 1e-4);
    }

    #[test]
    fn oscillatory_3d_is_accurate() {
        let f = PaperIntegrand::f1(3);
        let result = cuhre(1e-5).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(f.reference_value()) < 1e-5);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let f = PaperIntegrand::f4(5);
        let budget = 50_000;
        let result =
            Cuhre::new(CuhreConfig::new(Tolerances::rel(1e-10)).with_max_evaluations(budget))
                .integrate(&f);
        assert!(!result.converged());
        assert_eq!(result.termination, Termination::MaxEvaluations);
        // One extra region evaluation pair may be in flight when the budget trips.
        let per_region = GenzMalik::new(5).num_points() as u64;
        assert!(result.function_evaluations <= budget + 2 * per_region);
    }

    #[test]
    fn likelihood_matches_closed_form() {
        let like = GaussianLikelihood::cosmology_like(3);
        let result = cuhre(1e-6).integrate(&like);
        assert!(result.converged());
        assert!(result.true_relative_error(like.reference_value()) < 1e-6);
    }

    #[test]
    fn tighter_tolerance_needs_more_regions() {
        let f = PaperIntegrand::f4(3);
        let loose = cuhre(1e-3).integrate(&f);
        let tight = cuhre(1e-6).integrate(&f);
        assert!(tight.regions_generated > loose.regions_generated);
        assert!(tight.function_evaluations > loose.function_evaluations);
    }

    #[test]
    fn pre_cancelled_token_stops_after_the_initial_estimate() {
        let f = PaperIntegrand::f4(4);
        let token = pagani_core::CancelToken::new();
        token.cancel();
        let result = cuhre(1e-8).integrate_region_cancellable(&f, &Region::unit_cube(4), &token);
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.iterations, 0, "no heap pop may follow a cancel");
        // Partial stats stay intact: the initial whole-domain estimate ran.
        assert!(result.function_evaluations > 0);
        assert!(result.estimate.is_finite());
    }

    #[test]
    fn uncancelled_token_is_bit_transparent() {
        let f = PaperIntegrand::f4(3);
        let plain = cuhre(1e-5).integrate(&f);
        let with_token = cuhre(1e-5).integrate_region_cancellable(
            &f,
            &Region::unit_cube(3),
            &pagani_core::CancelToken::new(),
        );
        assert_eq!(plain.estimate.to_bits(), with_token.estimate.to_bits());
        assert_eq!(plain.function_evaluations, with_token.function_evaluations);
    }

    #[test]
    fn two_level_refinement_changes_error_estimates() {
        let f = PaperIntegrand::f5(3);
        let with = Cuhre::new(CuhreConfig::new(Tolerances::rel(1e-4))).integrate(&f);
        let without = Cuhre::new(CuhreConfig {
            two_level_errors: false,
            ..CuhreConfig::new(Tolerances::rel(1e-4))
        })
        .integrate(&f);
        // Both must be accurate; the refined error estimate is more conservative so it
        // typically needs at least as many regions.
        assert!(with.true_relative_error(f.reference_value()) < 1e-3);
        assert!(without.true_relative_error(f.reference_value()) < 1e-3);
        assert!(with.regions_generated >= without.regions_generated);
    }
}
