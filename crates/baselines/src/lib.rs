//! Baseline integrators the paper evaluates PAGANI against.
//!
//! * [`cuhre`] — a from-scratch sequential Cuhre (the Cuba library's deterministic
//!   algorithm): a max-error-first heap of regions, Genz–Malik rules, two-level error
//!   estimation and the `τ_rel` / `τ_abs` / max-evaluation termination of Cuba 4.0.
//! * [`two_phase`] — the two-phase GPU method of Arumugam et al. (§2.2.1): phase I is
//!   a breadth-first expansion with relative-error filtering until enough sub-regions
//!   exist for a 1-1 processor mapping; phase II runs an independent, locally-bounded
//!   sequential Cuhre on every surviving region with no global coordination — which is
//!   precisely what makes it fail on high-precision runs (§4.2, Figure 4).
//! * [`qmc`] — a randomized quasi-Monte Carlo integrator with shift-based error
//!   estimates, standing in for the GPU QMC library of Borowka et al. used in
//!   Figure 7.  The paper's comparator uses rank-1 lattices; this implementation uses
//!   randomly-shifted Halton points, which preserves the relevant contract (an
//!   unbiased estimate with an error estimate that shrinks as samples grow).
//!
//! Every baseline implements the workspace-wide
//! [`pagani_core::Integrator`] trait and returns the same
//! [`pagani_quadrature::IntegrationResult`] as PAGANI, so the benchmark
//! harness can sweep methods interchangeably; the [`method`] module turns a
//! [`MethodConfig`] value into any of the five integrators at runtime.

#![warn(missing_docs)]
#![warn(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod cuhre;
pub mod method;
pub mod monte_carlo;
pub mod qmc;
pub mod two_phase;

pub use cuhre::{Cuhre, CuhreConfig};
pub use method::{IntegratorBuilder, MethodConfig};
pub use monte_carlo::{MonteCarlo, MonteCarloConfig};
pub use qmc::{Qmc, QmcConfig};
pub use two_phase::{TwoPhase, TwoPhaseConfig};
