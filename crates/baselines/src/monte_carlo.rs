//! Plain Monte Carlo integration with a statistical error estimate.
//!
//! The paper's introduction observes that on CPU platforms probabilistic methods such
//! as Vegas, Suave and Divonne are consistently outperformed by the deterministic
//! Cuhre on integrals of moderate dimension.  This baseline provides the simplest
//! member of that family — uniform-sampling Monte Carlo with a sample-variance error
//! estimate — so that the repository can demonstrate the same ordering (MC ≪ QMC ≪
//! adaptive cubature on smooth integrands) without pulling in the Cuba library.

use std::time::Instant;

use pagani_core::integrator::{check_cancelled, ensure_matching_dims, Capabilities, Integrator};
use pagani_core::CancelToken;
use pagani_device::Device;
use pagani_quadrature::{Integrand, IntegrationResult, Region, Termination, Tolerances};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the plain Monte Carlo baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Relative / absolute error targets.
    pub tolerances: Tolerances,
    /// Samples drawn in the first round (doubled every round thereafter).
    pub initial_samples: u64,
    /// Maximum total number of integrand evaluations.
    pub max_evaluations: u64,
    /// Number of parallel sampling streams (one simulated block each).
    pub streams: usize,
    /// Base seed; each stream derives its own deterministic sub-seed.
    pub seed: u64,
}

impl MonteCarloConfig {
    /// Configuration with sensible defaults for a given tolerance.
    #[must_use]
    pub fn new(tolerances: Tolerances) -> Self {
        Self {
            tolerances,
            initial_samples: 1 << 14,
            max_evaluations: 100_000_000,
            streams: 64,
            seed: 0xdead_beef,
        }
    }

    /// Cap the evaluation budget.
    #[must_use]
    pub fn with_max_evaluations(mut self, max: u64) -> Self {
        self.max_evaluations = max;
        self
    }
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

/// The plain Monte Carlo integrator.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    device: Device,
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Create an integrator on `device` with `config`.
    #[must_use]
    pub fn new(device: Device, config: MonteCarloConfig) -> Self {
        Self { device, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> IntegrationResult {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> IntegrationResult {
        self.integrate_region_cancellable(f, region, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region, polling `cancel` at every
    /// sample-doubling round.  A cancelled run reports
    /// [`Termination::Cancelled`] with the estimate of the last completed
    /// round; an uncancelled token never changes a result.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region_cancellable<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let dim = f.dim();
        let volume = region.volume();
        let tolerances = self.config.tolerances;
        let streams = self.config.streams.max(2);

        // Running totals across rounds: Σf and Σf² over all samples drawn so far.
        let mut total_sum = 0.0f64;
        let mut total_sum_sq = 0.0f64;
        let mut total_samples = 0u64;
        let mut round_samples = self.config.initial_samples.max(streams as u64);
        let mut iterations = 0usize;
        let mut round = 0u64;

        // Two lanes per stream: Σf and Σf² partials, combined in block order.
        let mut partials = vec![0.0f64; streams * 2];
        let (estimate, error, termination) = loop {
            iterations += 1;
            let per_stream = (round_samples / streams as u64).max(1);
            let seed = self.config.seed;
            self.device
                .launch_batch(
                    "monte_carlo.sample",
                    streams,
                    2,
                    &mut partials,
                    |ctx, out| {
                        let mut rng =
                            StdRng::seed_from_u64(seed ^ (round << 32) ^ ctx.block_idx as u64);
                        let mut point = vec![0.0; dim];
                        let mut sum = 0.0;
                        let mut sum_sq = 0.0;
                        for _ in 0..per_stream {
                            for (axis, coord) in point.iter_mut().enumerate() {
                                let u: f64 = rng.gen_range(0.0..1.0);
                                *coord = region.lo()[axis] + u * region.extent(axis);
                            }
                            let value = f.eval(&point);
                            sum += value;
                            sum_sq += value * value;
                        }
                        out[0] = sum;
                        out[1] = sum_sq;
                    },
                )
                .expect("Monte Carlo launches are never empty");
            for slot in partials.chunks_exact(2) {
                total_sum += slot[0];
                total_sum_sq += slot[1];
            }
            total_samples += per_stream * streams as u64;
            round += 1;

            let mean = total_sum / total_samples as f64;
            let variance = (total_sum_sq / total_samples as f64 - mean * mean).max(0.0);
            let estimate = volume * mean;
            let error = volume * (variance / total_samples as f64).sqrt();

            if tolerances.satisfied_by(estimate, error) {
                break (estimate, error, Termination::Converged);
            }
            // Cancellation checkpoint: once per doubling round, after the
            // convergence check so a finished run keeps its converged status.
            if let Some(cancelled) = check_cancelled(cancel) {
                break (estimate, error, cancelled);
            }
            if total_samples.saturating_mul(2) > self.config.max_evaluations {
                break (estimate, error, Termination::MaxEvaluations);
            }
            round_samples = total_samples; // double the cumulative sample count
        };

        IntegrationResult {
            estimate,
            error_estimate: error,
            termination,
            iterations,
            function_evaluations: total_samples,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: start.elapsed(),
        }
    }
}

impl Integrator for MonteCarlo {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // Stream seeds derive deterministically from the config seed.
            deterministic: true,
            uses_device: true,
            adaptive: false,
            statistical_errors: true,
            min_dim: 1,
            max_dim: None,
        }
    }

    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        MonteCarlo::integrate_region_cancellable(self, f, region, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::FnIntegrand;

    fn mc(rel: f64, budget: u64) -> MonteCarlo {
        MonteCarlo::new(
            Device::test_small(),
            MonteCarloConfig::new(Tolerances::rel(rel)).with_max_evaluations(budget),
        )
    }

    #[test]
    fn constant_integrand_is_exact() {
        let result = mc(1e-6, 1_000_000).integrate(&FnIntegrand::new(3, |_: &[f64]| 2.0));
        assert!(result.converged());
        assert!((result.estimate - 2.0).abs() < 1e-12);
        assert_eq!(result.error_estimate, 0.0);
    }

    #[test]
    fn smooth_integrand_reaches_two_digits() {
        let f = FnIntegrand::new(3, |x: &[f64]| 1.0 + x[0] * x[1] + x[2]);
        let result = mc(1e-2, 10_000_000).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(1.75) < 5e-2);
    }

    #[test]
    fn error_estimate_shrinks_with_budget() {
        let f = PaperIntegrand::f5(3);
        let small = mc(1e-9, 100_000).integrate(&f);
        let large = mc(1e-9, 5_000_000).integrate(&f);
        assert!(!small.converged());
        assert!(large.error_estimate < small.error_estimate);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let f = PaperIntegrand::f4(5);
        let result = mc(1e-6, 50_000).integrate(&f);
        assert!(!result.converged());
        assert_eq!(result.termination, Termination::MaxEvaluations);
        assert!(result.function_evaluations <= 100_000);
    }

    #[test]
    fn pre_cancelled_token_stops_after_one_round() {
        let f = PaperIntegrand::f4(5);
        let token = CancelToken::new();
        token.cancel();
        let result =
            mc(1e-9, 100_000_000).integrate_region_cancellable(&f, &Region::unit_cube(5), &token);
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.iterations, 1, "cancel lands at the round boundary");
        assert!(result.function_evaluations > 0);
        assert!(result.estimate.is_finite());
    }

    #[test]
    fn scaled_region_scales_the_estimate() {
        let f = FnIntegrand::new(2, |_: &[f64]| 1.0);
        let region = Region::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        let result = mc(1e-6, 1_000_000).integrate_region(&f, &region);
        assert!((result.estimate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let f = PaperIntegrand::f4(3);
        let a = mc(1e-3, 500_000).integrate(&f);
        let b = mc(1e-3, 500_000).integrate(&f);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.function_evaluations, b.function_evaluations);
    }
}
