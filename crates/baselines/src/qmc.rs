//! Randomized quasi-Monte Carlo integration with error estimates (§2.3, Figure 7).
//!
//! The paper compares PAGANI against the GPU QMC library of Borowka et al., which uses
//! randomly-shifted rank-1 lattice rules and — unlike most QMC codes — returns an error
//! estimate, making it directly comparable to cubature methods.  This baseline keeps
//! the same contract with a simpler low-discrepancy construction: Halton points with
//! independent Cranley–Patterson random shifts.  Each shift produces an independent,
//! unbiased estimate of the integral; the reported value is their mean and the error
//! estimate is the standard error across shifts.  The number of points per shift is
//! doubled until the requested tolerance is met or the sample budget is exhausted.

use std::time::Instant;

use pagani_core::integrator::{check_cancelled, ensure_matching_dims, Capabilities, Integrator};
use pagani_core::CancelToken;
use pagani_device::Device;
use pagani_quadrature::{Integrand, IntegrationResult, Region, Termination, Tolerances};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The first thirty primes, used as Halton bases (dimension ≤ 30, like Genz–Malik).
const PRIMES: [u32; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// Radical-inverse function in base `base` (the building block of Halton sequences).
#[must_use]
pub fn radical_inverse(mut index: u64, base: u32) -> f64 {
    let base = f64::from(base);
    let mut inverse = 0.0;
    let mut factor = 1.0 / base;
    while index > 0 {
        inverse += (index % base as u64) as f64 * factor;
        index /= base as u64;
        factor /= base;
    }
    inverse
}

/// Configuration of the QMC baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct QmcConfig {
    /// Relative / absolute error targets.
    pub tolerances: Tolerances,
    /// Number of independent random shifts (the error estimate averages over these).
    pub shifts: usize,
    /// Points per shift in the first round.
    pub initial_points: u64,
    /// Maximum total number of integrand evaluations.
    pub max_evaluations: u64,
    /// Seed for the shift generator (fixed by default for reproducible benchmarks).
    pub seed: u64,
}

impl QmcConfig {
    /// Configuration with sensible defaults for a given tolerance.
    #[must_use]
    pub fn new(tolerances: Tolerances) -> Self {
        Self {
            tolerances,
            shifts: 16,
            initial_points: 1 << 10,
            max_evaluations: 200_000_000,
            seed: 0x5eed_cafe,
        }
    }

    /// Configuration targeting `digits` decimal digits of relative precision.
    #[must_use]
    pub fn digits(digits: f64) -> Self {
        Self::new(Tolerances::digits(digits))
    }

    /// Cap the evaluation budget.
    #[must_use]
    pub fn with_max_evaluations(mut self, max: u64) -> Self {
        self.max_evaluations = max;
        self
    }
}

impl Default for QmcConfig {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

/// The randomized QMC integrator.
#[derive(Debug, Clone)]
pub struct Qmc {
    device: Device,
    config: QmcConfig,
}

impl Qmc {
    /// Create an integrator on `device` with `config`.
    #[must_use]
    pub fn new(device: Device, config: QmcConfig) -> Self {
        Self { device, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &QmcConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> IntegrationResult {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ or the dimension exceeds
    /// the number of Halton bases (30).
    pub fn integrate_region<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> IntegrationResult {
        self.integrate_region_cancellable(f, region, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region, polling `cancel` at every
    /// point-doubling round.  A cancelled run reports
    /// [`Termination::Cancelled`] with the estimate of the last completed
    /// round; an uncancelled token never changes a result.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ or the dimension exceeds
    /// the number of Halton bases (30).
    pub fn integrate_region_cancellable<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        ensure_matching_dims(f, region);
        let dim = f.dim();
        assert!(
            dim <= PRIMES.len(),
            "QMC baseline supports up to 30 dimensions"
        );
        let start = Instant::now();
        let tolerances = self.config.tolerances;
        let volume = region.volume();

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let shifts: Vec<Vec<f64>> = (0..self.config.shifts)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();

        let mut points_per_shift = self.config.initial_points;
        let mut evaluations = 0u64;
        let mut iterations = 0usize;

        let mut shift_means = vec![0.0f64; shifts.len()];
        let (estimate, error, termination) = loop {
            iterations += 1;
            // One simulated block per shift; each block streams its Halton
            // points and writes its mean into its own lane slot.
            self.device
                .launch_batch(
                    "qmc.sample",
                    shifts.len(),
                    1,
                    &mut shift_means,
                    |ctx, out| {
                        let shift = &shifts[ctx.block_idx];
                        let mut sum = 0.0;
                        let mut point = vec![0.0; dim];
                        for k in 0..points_per_shift {
                            for (axis, coord) in point.iter_mut().enumerate() {
                                let u = radical_inverse(k + 1, PRIMES[axis]) + shift[axis];
                                let u = u - u.floor();
                                *coord = region.lo()[axis] + u * region.extent(axis);
                            }
                            sum += f.eval(&point);
                        }
                        out[0] = volume * sum / points_per_shift as f64;
                    },
                )
                .expect("QMC launches are never empty");
            evaluations += points_per_shift * shifts.len() as u64;

            let mean: f64 = shift_means.iter().sum::<f64>() / shift_means.len() as f64;
            let variance: f64 = shift_means
                .iter()
                .map(|&m| (m - mean) * (m - mean))
                .sum::<f64>()
                / (shift_means.len().saturating_sub(1).max(1)) as f64;
            let error = (variance / shift_means.len() as f64).sqrt();

            if tolerances.satisfied_by(mean, error) {
                break (mean, error, Termination::Converged);
            }
            // Cancellation checkpoint: once per doubling round, after the
            // convergence check so a finished run keeps its converged status.
            if let Some(cancelled) = check_cancelled(cancel) {
                break (mean, error, cancelled);
            }
            if evaluations.saturating_mul(2) > self.config.max_evaluations {
                break (mean, error, Termination::MaxEvaluations);
            }
            points_per_shift *= 2;
        };

        IntegrationResult {
            estimate,
            error_estimate: error,
            termination,
            iterations,
            function_evaluations: evaluations,
            regions_generated: 0,
            active_regions_final: 0,
            wall_time: start.elapsed(),
        }
    }
}

impl Integrator for Qmc {
    fn name(&self) -> &'static str {
        "qmc"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // The shift seed is fixed in the config, so reruns are
            // bit-identical even though the error estimate is statistical.
            deterministic: true,
            uses_device: true,
            adaptive: false,
            statistical_errors: true,
            min_dim: 1,
            max_dim: Some(PRIMES.len()),
        }
    }

    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        Qmc::integrate_region_cancellable(self, f, region, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::FnIntegrand;

    fn qmc(rel: f64) -> Qmc {
        Qmc::new(
            Device::test_small(),
            QmcConfig::new(Tolerances::rel(rel)).with_max_evaluations(20_000_000),
        )
    }

    #[test]
    fn radical_inverse_base_2_is_van_der_corput() {
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn radical_inverse_stays_in_unit_interval() {
        for base in [2, 3, 5, 7, 11] {
            for index in 0..200 {
                let v = radical_inverse(index, base);
                assert!((0.0..1.0).contains(&v), "base {base} index {index}: {v}");
            }
        }
    }

    #[test]
    fn constant_is_exact_immediately() {
        let result = qmc(1e-6).integrate(&FnIntegrand::new(4, |_: &[f64]| 3.0));
        assert!(result.converged());
        assert!((result.estimate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_product_reaches_moderate_precision() {
        let f = FnIntegrand::new(3, |x: &[f64]| x.iter().map(|&v| 1.0 + 0.5 * v).product());
        let result = qmc(1e-4).integrate(&f);
        assert!(result.converged());
        let exact = 1.25f64.powi(3);
        assert!(
            result.true_relative_error(exact) < 5e-4,
            "true error {}",
            result.true_relative_error(exact)
        );
    }

    #[test]
    fn oscillatory_4d_is_handled() {
        // The oscillatory family is where QMC shines in the paper (Figure 7's 8D f1);
        // the 4-D instance keeps the unit test fast while exercising the same path.
        let f = PaperIntegrand::f1(4);
        let result = qmc(1e-3).integrate(&f);
        assert!(result.converged());
        assert!(
            result.true_relative_error(f.reference_value()) < 1e-2,
            "true error {}",
            result.true_relative_error(f.reference_value())
        );
    }

    #[test]
    fn pre_cancelled_token_stops_after_one_round() {
        let f = PaperIntegrand::f4(5);
        let token = pagani_core::CancelToken::new();
        token.cancel();
        let result = qmc(1e-9).integrate_region_cancellable(
            &f,
            &pagani_quadrature::Region::unit_cube(5),
            &token,
        );
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.iterations, 1, "cancel lands at the round boundary");
        assert!(result.function_evaluations > 0);
        assert!(result.estimate.is_finite());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let f = PaperIntegrand::f4(5);
        let result = Qmc::new(
            Device::test_small(),
            QmcConfig::new(Tolerances::rel(1e-9)).with_max_evaluations(100_000),
        )
        .integrate(&f);
        assert!(!result.converged());
        assert_eq!(result.termination, Termination::MaxEvaluations);
        assert!(result.function_evaluations <= 200_000);
    }

    #[test]
    fn error_estimate_is_honest_for_gaussian() {
        let f = PaperIntegrand::f4(3);
        let result = qmc(1e-3).integrate(&f);
        assert!(result.converged());
        let true_err = result.true_relative_error(f.reference_value());
        // The shift-based error estimate is statistical; allow a 5x slack factor.
        assert!(
            true_err < 5.0 * result.relative_error_estimate().max(1e-3),
            "true {true_err} vs estimated {}",
            result.relative_error_estimate()
        );
    }

    #[test]
    fn doubling_points_reduces_error() {
        let f = PaperIntegrand::f5(3);
        let coarse = Qmc::new(
            Device::test_small(),
            QmcConfig::new(Tolerances::rel(1e-12)).with_max_evaluations(50_000),
        )
        .integrate(&f);
        let fine = Qmc::new(
            Device::test_small(),
            QmcConfig::new(Tolerances::rel(1e-12)).with_max_evaluations(3_000_000),
        )
        .integrate(&f);
        assert!(fine.error_estimate < coarse.error_estimate);
        assert!(
            fine.true_relative_error(f.reference_value())
                <= coarse.true_relative_error(f.reference_value()) * 1.5
        );
    }
}
