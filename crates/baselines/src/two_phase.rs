//! The two-phase parallel adaptive method of Arumugam et al. (§2.2.1).
//!
//! Phase I expands the sub-region tree breadth-first — every region is split each
//! iteration unless its own relative error already satisfies the tolerance — until the
//! list is large enough for a 1-1 mapping onto the device's parallel processors
//! (2¹⁵ blocks in the paper's configuration).  Phase II then hands each surviving
//! region to an independent processor that runs the sequential Cuhre loop with a
//! bounded local heap (2048 regions per block) and **no global coordination**: the
//! processor stops when its *local* error looks good relative to its own estimates or
//! its memory/evaluation budget runs out.  Those local, globally-blind termination
//! conditions are exactly why the method loses digits on hard integrands and fails
//! outright when the per-processor memory runs out — the behaviour Figures 4, 5 and 9
//! of the paper document and this reproduction reproduces.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pagani_core::integrator::{check_cancelled, ensure_matching_dims, Capabilities, Integrator};
use pagani_core::CancelToken;
use pagani_device::{reduce, Device};
use pagani_quadrature::two_level::refine_generation;
use pagani_quadrature::{
    EvalScratch, GenzMalik, Integrand, IntegrationResult, Region, Termination, Tolerances,
};

/// Configuration of the two-phase baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPhaseConfig {
    /// Relative / absolute error targets.
    pub tolerances: Tolerances,
    /// Phase I stops expanding once at least this many active regions exist
    /// (the paper uses 2¹⁵, the number of blocks that fit the V100).
    pub phase1_region_target: usize,
    /// Maximum phase I iterations (safety bound).
    pub max_phase1_iterations: usize,
    /// Local heap capacity of each phase II processor (2048 regions in the paper).
    pub phase2_heap_capacity: usize,
    /// Local evaluation budget of each phase II processor.
    pub phase2_max_evaluations: u64,
}

impl TwoPhaseConfig {
    /// Configuration with the paper's defaults for a given tolerance.
    #[must_use]
    pub fn new(tolerances: Tolerances) -> Self {
        Self {
            tolerances,
            phase1_region_target: 1 << 15,
            max_phase1_iterations: 60,
            phase2_heap_capacity: 2048,
            phase2_max_evaluations: 2_000_000,
        }
    }

    /// Configuration targeting `digits` decimal digits of relative precision.
    #[must_use]
    pub fn digits(digits: f64) -> Self {
        Self::new(Tolerances::digits(digits))
    }

    /// Shrink the targets for unit tests.
    #[must_use]
    pub fn test_small(tolerances: Tolerances) -> Self {
        Self {
            phase1_region_target: 512,
            phase2_heap_capacity: 128,
            phase2_max_evaluations: 200_000,
            ..Self::new(tolerances)
        }
    }
}

impl Default for TwoPhaseConfig {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

/// Outcome of one phase II processor.
#[derive(Debug, Clone, Copy)]
struct ProcessorOutcome {
    integral: f64,
    error: f64,
    evaluations: u64,
    regions: u64,
    memory_exhausted: bool,
}

/// The two-phase integrator.
#[derive(Debug, Clone)]
pub struct TwoPhase {
    device: Device,
    config: TwoPhaseConfig,
}

impl TwoPhase {
    /// Create an integrator on `device` with `config`.
    #[must_use]
    pub fn new(device: Device, config: TwoPhaseConfig) -> Self {
        Self { device, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TwoPhaseConfig {
        &self.config
    }

    /// Integrate `f` over its default bounds.
    pub fn integrate<F: Integrand + ?Sized>(&self, f: &F) -> IntegrationResult {
        let (lo, hi) = f.default_bounds();
        self.integrate_region(f, &Region::new(lo, hi))
    }

    /// Integrate `f` over an explicit region.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
    ) -> IntegrationResult {
        self.integrate_region_cancellable(f, region, &CancelToken::new())
    }

    /// Integrate `f` over an explicit region, polling `cancel` at every
    /// phase I iteration boundary and inside each phase II processor's local
    /// loop.  A cancelled run reports [`Termination::Cancelled`] with the
    /// cumulative estimates accumulated so far.
    ///
    /// # Panics
    /// Panics if the region and integrand dimensions differ.
    pub fn integrate_region_cancellable<F: Integrand + ?Sized>(
        &self,
        f: &F,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        ensure_matching_dims(f, region);
        let start = Instant::now();
        let dim = f.dim();
        let rule = GenzMalik::new(dim);
        let tolerances = self.config.tolerances;

        // ----- Phase I: breadth-first expansion with relative-error filtering. -----
        let d = initial_splits(dim, self.config.phase1_region_target);
        let mut active: Vec<Region> = region.uniform_split(d);
        let mut finished_estimate = 0.0f64;
        let mut finished_error = 0.0f64;
        let mut function_evaluations = 0u64;
        let mut regions_generated = active.len() as u64;
        let mut phase1_iterations = 0usize;
        let mut parent_integrals: Option<Vec<f64>> = None;
        let mut converged_in_phase1 = false;
        let mut cancelled_in_phase1 = false;

        loop {
            phase1_iterations += 1;
            // Four lanes per region, the same layout as the core `evaluate`
            // kernel: integral, error, split axis and evaluation count.
            let mut lanes = vec![0.0f64; active.len() * 4];
            self.device
                .launch_batch(
                    "two_phase.evaluate",
                    active.len(),
                    4,
                    &mut lanes,
                    |ctx, out| {
                        let mut scratch = EvalScratch::new(dim);
                        let est = rule.evaluate(f, &active[ctx.block_idx], &mut scratch);
                        out[0] = est.integral;
                        out[1] = est.error;
                        out[2] = est.split_axis as f64;
                        out[3] = est.evaluations as f64;
                    },
                )
                .expect("phase I launch cannot be empty");
            let mut integrals: Vec<f64> = Vec::with_capacity(active.len());
            let mut errors: Vec<f64> = Vec::with_capacity(active.len());
            let mut axes: Vec<usize> = Vec::with_capacity(active.len());
            for slot in lanes.chunks_exact(4) {
                integrals.push(slot[0]);
                errors.push(slot[1]);
                axes.push(slot[2] as usize);
                function_evaluations += slot[3] as u64;
            }
            if let Some(parents) = &parent_integrals {
                if parents.len() * 2 == integrals.len() {
                    refine_generation(&integrals, &mut errors, parents);
                }
            }

            let iter_estimate = reduce::sum(&integrals);
            let iter_error = reduce::sum(&errors);
            let total_estimate = iter_estimate + finished_estimate;
            let total_error = iter_error + finished_error;
            if tolerances.satisfied_by(total_estimate, total_error) {
                finished_estimate = total_estimate;
                finished_error = total_error;
                converged_in_phase1 = true;
                break;
            }
            // Cancellation checkpoint: once per phase I iteration, after the
            // convergence check so a finished run keeps its converged status.
            if check_cancelled(cancel).is_some() {
                finished_estimate = total_estimate;
                finished_error = total_error;
                cancelled_in_phase1 = true;
                break;
            }
            if phase1_iterations >= self.config.max_phase1_iterations {
                finished_estimate = total_estimate;
                finished_error = total_error;
                break;
            }

            // Local termination: regions meeting their own relative error are finished
            // and leave memory.
            let mut survivors: Vec<Region> = Vec::new();
            let mut survivor_integrals: Vec<f64> = Vec::new();
            let mut survivor_axes: Vec<usize> = Vec::new();
            for (i, reg) in active.iter().enumerate() {
                if tolerances.satisfied_by(integrals[i], errors[i]) {
                    finished_estimate += integrals[i];
                    finished_error += errors[i];
                } else {
                    survivors.push(reg.clone());
                    survivor_integrals.push(integrals[i]);
                    survivor_axes.push(axes[i]);
                }
            }
            if survivors.is_empty() {
                converged_in_phase1 = tolerances.satisfied_by(finished_estimate, finished_error);
                break;
            }
            if survivors.len() >= self.config.phase1_region_target {
                // Enough regions for the 1-1 processor mapping: move to phase II.
                active = survivors;
                break;
            }

            // Split every surviving region along its chosen axis (left halves first,
            // matching the sibling layout the two-level refinement expects).
            let mut next = Vec::with_capacity(survivors.len() * 2);
            let mut rights = Vec::with_capacity(survivors.len());
            for (reg, &axis) in survivors.iter().zip(&survivor_axes) {
                let (left, right) = reg.split(axis);
                next.push(left);
                rights.push(right);
            }
            next.extend(rights);
            regions_generated += next.len() as u64;
            parent_integrals = Some(survivor_integrals);
            active = next;
        }

        if cancelled_in_phase1
            || converged_in_phase1
            || finished_estimate != 0.0 && active.is_empty()
        {
            let termination = if cancelled_in_phase1 {
                Termination::Cancelled
            } else if tolerances.satisfied_by(finished_estimate, finished_error) {
                Termination::Converged
            } else {
                Termination::MaxIterations
            };
            return IntegrationResult {
                estimate: finished_estimate,
                error_estimate: finished_error,
                termination,
                iterations: phase1_iterations,
                function_evaluations,
                regions_generated,
                active_regions_final: 0,
                wall_time: start.elapsed(),
            };
        }

        // ----- Phase II: independent sequential Cuhre per region. -------------------
        let heap_capacity = self.config.phase2_heap_capacity;
        let local_budget = self.config.phase2_max_evaluations;
        // Five lanes per processor: integral, error, evaluation count,
        // regions processed, and a 0/1 memory-exhaustion flag.  The counts
        // ride in `f64` lanes; both are bounded far below 2^53 (by the
        // per-processor evaluation budget), so the round trip is exact.
        let mut outcomes = vec![0.0f64; active.len() * 5];
        self.device
            .launch_batch(
                "two_phase.phase2",
                active.len(),
                5,
                &mut outcomes,
                |ctx, out| {
                    let outcome = phase2_processor(
                        f,
                        &rule,
                        &active[ctx.block_idx],
                        tolerances,
                        heap_capacity,
                        local_budget,
                        cancel,
                    );
                    out[0] = outcome.integral;
                    out[1] = outcome.error;
                    out[2] = outcome.evaluations as f64;
                    out[3] = outcome.regions as f64;
                    out[4] = f64::from(u8::from(outcome.memory_exhausted));
                },
            )
            .expect("phase II launch cannot be empty");

        let mut estimate = finished_estimate;
        let mut error = finished_error;
        let mut any_memory_exhausted = false;
        let mut phase2_regions = 0u64;
        for slot in outcomes.chunks_exact(5) {
            estimate += slot[0];
            error += slot[1];
            function_evaluations += slot[2] as u64;
            phase2_regions += slot[3] as u64;
            any_memory_exhausted |= slot[4] != 0.0;
        }
        regions_generated += phase2_regions;

        let termination = if tolerances.satisfied_by(estimate, error) {
            Termination::Converged
        } else if let Some(cancelled) = check_cancelled(cancel) {
            // Every processor saw the same token and stopped at its next local
            // checkpoint; the combined partial sums are still meaningful.
            cancelled
        } else if any_memory_exhausted {
            Termination::MemoryExhausted
        } else {
            Termination::MaxEvaluations
        };
        IntegrationResult {
            estimate,
            error_estimate: error,
            termination,
            iterations: phase1_iterations,
            function_evaluations,
            regions_generated,
            active_regions_final: active.len(),
            wall_time: start.elapsed(),
        }
    }
}

impl Integrator for TwoPhase {
    fn name(&self) -> &'static str {
        "two-phase"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            deterministic: true,
            uses_device: true,
            adaptive: true,
            statistical_errors: false,
            min_dim: 2,
            max_dim: Some(30),
        }
    }

    fn integrate_region_cancellable(
        &self,
        f: &dyn Integrand,
        region: &Region,
        cancel: &CancelToken,
    ) -> IntegrationResult {
        TwoPhase::integrate_region_cancellable(self, f, region, cancel)
    }
}

/// Number of parts per axis for the initial uniform split, mirroring PAGANI's rule.
fn initial_splits(dim: usize, target: usize) -> usize {
    let mut d = 2usize;
    loop {
        let next = d + 1;
        let Some(count) = next.checked_pow(dim as u32) else {
            break;
        };
        if count > target.max(2) {
            break;
        }
        d = next;
    }
    d
}

#[derive(Debug, Clone)]
struct LocalRegion {
    region: Region,
    integral: f64,
    error: f64,
    split_axis: usize,
}

impl PartialEq for LocalRegion {
    fn eq(&self, other: &Self) -> bool {
        self.error == other.error
    }
}
impl Eq for LocalRegion {}
impl PartialOrd for LocalRegion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LocalRegion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.error
            .partial_cmp(&other.error)
            .unwrap_or(Ordering::Equal)
    }
}

/// One phase II processor: a locally-bounded sequential Cuhre on a single region.
#[allow(clippy::too_many_arguments)]
fn phase2_processor<F: Integrand + ?Sized>(
    f: &F,
    rule: &GenzMalik,
    region: &Region,
    tolerances: Tolerances,
    heap_capacity: usize,
    max_evaluations: u64,
    cancel: &CancelToken,
) -> ProcessorOutcome {
    let mut scratch = EvalScratch::new(rule.dim());
    let first = rule.evaluate(f, region, &mut scratch);
    let mut evaluations = first.evaluations as u64;
    let mut regions = 1u64;
    let mut heap = BinaryHeap::new();
    heap.push(LocalRegion {
        region: region.clone(),
        integral: first.integral,
        error: first.error,
        split_axis: first.split_axis,
    });
    let mut total_integral = first.integral;
    let mut total_error = first.error;
    let mut memory_exhausted = false;

    loop {
        // Local termination: the processor only sees its own estimates.
        if tolerances.satisfied_by(total_integral, total_error) {
            break;
        }
        // The shared cancellation checkpoint: every processor polls the same
        // token, so a cancel stops the whole phase within one local pop each.
        if check_cancelled(cancel).is_some() {
            break;
        }
        if evaluations >= max_evaluations {
            break;
        }
        if heap.len() + 1 > heap_capacity {
            memory_exhausted = true;
            break;
        }
        let Some(worst) = heap.pop() else { break };
        let (left, right) = worst.region.split(worst.split_axis);
        let left_est = rule.evaluate(f, &left, &mut scratch);
        let right_est = rule.evaluate(f, &right, &mut scratch);
        evaluations += (left_est.evaluations + right_est.evaluations) as u64;
        regions += 2;
        let left_err = pagani_quadrature::two_level::refine_error(
            left_est.integral,
            left_est.error,
            right_est.integral,
            right_est.error,
            worst.integral,
        );
        let right_err = pagani_quadrature::two_level::refine_error(
            right_est.integral,
            right_est.error,
            left_est.integral,
            left_est.error,
            worst.integral,
        );
        total_integral += left_est.integral + right_est.integral - worst.integral;
        total_error += left_err + right_err - worst.error;
        heap.push(LocalRegion {
            region: left,
            integral: left_est.integral,
            error: left_err,
            split_axis: left_est.split_axis,
        });
        heap.push(LocalRegion {
            region: right,
            integral: right_est.integral,
            error: right_err,
            split_axis: right_est.split_axis,
        });
    }

    ProcessorOutcome {
        integral: total_integral,
        error: total_error,
        evaluations,
        regions,
        memory_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagani_device::Device;
    use pagani_integrands::paper::PaperIntegrand;
    use pagani_quadrature::FnIntegrand;

    fn two_phase(rel: f64) -> TwoPhase {
        TwoPhase::new(
            Device::test_small(),
            TwoPhaseConfig::test_small(Tolerances::rel(rel)),
        )
    }

    #[test]
    fn constant_converges_in_phase1() {
        let result = two_phase(1e-6).integrate(&FnIntegrand::new(3, |_: &[f64]| 1.5));
        assert!(result.converged());
        assert!((result.estimate - 1.5).abs() < 1e-9);
    }

    #[test]
    fn gaussian_3d_low_precision_is_accurate() {
        let f = PaperIntegrand::f4(3);
        let result = two_phase(1e-3).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(f.reference_value()) < 1e-3);
    }

    #[test]
    fn corner_peak_3d_moderate_precision() {
        let f = PaperIntegrand::f3(3);
        let result = two_phase(1e-5).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(f.reference_value()) < 1e-5);
    }

    #[test]
    fn initial_splits_match_pagani_rule() {
        assert_eq!(initial_splits(8, 1 << 15), 3);
        assert_eq!(initial_splits(5, 1 << 15), 8);
        assert_eq!(initial_splits(3, 512), 8);
    }

    #[test]
    fn tiny_phase2_heap_causes_memory_exhaustion_on_hard_integrand() {
        // A sharply-peaked 4D Gaussian at a demanding tolerance: the tiny local heaps
        // cannot resolve the peak, which is the failure mode the paper documents.
        let f = PaperIntegrand::f4(4);
        let config = TwoPhaseConfig {
            phase1_region_target: 64,
            phase2_heap_capacity: 8,
            phase2_max_evaluations: 5_000,
            ..TwoPhaseConfig::new(Tolerances::rel(1e-8))
        };
        let result = TwoPhase::new(Device::test_small(), config).integrate(&f);
        assert!(!result.converged());
        assert_eq!(result.termination, Termination::MemoryExhausted);
    }

    #[test]
    fn two_phase_reports_region_counts() {
        let f = PaperIntegrand::f4(3);
        let result = two_phase(1e-4).integrate(&f);
        assert!(result.regions_generated > 0);
        assert!(result.function_evaluations > 0);
    }

    #[test]
    fn pre_cancelled_token_stops_in_phase1_with_partial_stats() {
        let f = PaperIntegrand::f4(4);
        let token = pagani_core::CancelToken::new();
        token.cancel();
        let result =
            two_phase(1e-8).integrate_region_cancellable(&f, &Region::unit_cube(4), &token);
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.iterations, 1, "cancel lands at the first boundary");
        assert!(result.function_evaluations > 0);
        assert!(result.estimate.is_finite());
    }

    #[test]
    fn uncancelled_token_is_bit_transparent() {
        let f = PaperIntegrand::f4(3);
        let plain = two_phase(1e-3).integrate(&f);
        let with_token = two_phase(1e-3).integrate_region_cancellable(
            &f,
            &Region::unit_cube(3),
            &pagani_core::CancelToken::new(),
        );
        assert_eq!(plain.estimate.to_bits(), with_token.estimate.to_bits());
    }

    #[test]
    fn phase1_alone_handles_easy_integrands_like_pagani() {
        // For an easy polynomial the run should converge without phase II
        // (phase I's relative-error filtering finishes everything).
        let f = FnIntegrand::new(2, |x: &[f64]| 1.0 + x[0] * x[1]);
        let result = two_phase(1e-6).integrate(&f);
        assert!(result.converged());
        assert!(result.true_relative_error(1.25) < 1e-6);
    }
}
