//! End-to-end tests for the rule engine, driven by the seeded fixture tree
//! under `tests/fixtures/` (never compiled — data for the lexer only).
//!
//! `violations/` holds one file per rule with known-bad code; `clean/`,
//! `tests/` and `vendor/` hold the allowlisted forms each rule must stay
//! silent on.  The assertions pin exact (rule, file, line) triples so a
//! precision or recall regression in any rule shows up as a diff here.

use std::path::{Path, PathBuf};

use pagani_analyze::{analyze, find_workspace_root, json, parse_allows, Allow};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_findings(allows: &[Allow]) -> pagani_analyze::Analysis {
    analyze(&fixture_root(), allows).expect("fixture tree analyzes")
}

/// The full expected finding set over the fixture tree: every seeded
/// violation fires, and nothing in `clean/`, `tests/` or `vendor/` does.
#[test]
fn every_rule_fires_exactly_on_the_seeded_violations() {
    let analysis = fixture_findings(&[]);
    let got: Vec<(&str, &str, u32)> = analysis
        .violations
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    let expected: Vec<(&str, &str, u32)> = vec![
        ("R6", "violations/globals.rs", 2),
        ("R6", "violations/globals.rs", 5),
        ("R3", "violations/launch_accum.rs", 5),
        ("R3", "violations/launch_accum.rs", 11),
        ("R3", "violations/launch_accum.rs", 17),
        ("R1", "violations/lock_cycle.rs", 13),
        ("R2", "violations/spawns.rs", 4),
        ("R2", "violations/spawns.rs", 8),
        ("R4", "violations/timing.rs", 4),
        ("R4", "violations/timing.rs", 8),
        ("R5", "violations/unsafe_nodoc.rs", 3),
        ("R5", "violations/unsafe_nodoc.rs", 6),
        ("R5", "violations/unsafe_nodoc.rs", 10),
    ];
    assert_eq!(got, expected);
}

#[test]
fn lock_cycle_message_names_both_edges() {
    let analysis = fixture_findings(&[]);
    let r1 = analysis
        .violations
        .iter()
        .find(|d| d.rule == "R1")
        .expect("R1 fires");
    assert!(r1.message.contains("alpha@lock_cycle -> beta@lock_cycle"));
    assert!(r1.message.contains("beta@lock_cycle -> alpha@lock_cycle"));
    assert!(r1.message.contains("violations/lock_cycle.rs:20"));
}

#[test]
fn pattern_anchored_suppression_moves_a_finding_to_suppressed() {
    let allows = parse_allows(
        r#"
        [[allow]]
        rule = "R2"
        file = "violations/spawns.rs"
        pattern = "std::thread::spawn(|| {});"
        reason = "fixture: direct spawn is intentional here"
        "#,
    )
    .expect("allowlist parses");
    let analysis = fixture_findings(&allows);
    assert_eq!(analysis.violations.len(), 12);
    assert!(!analysis
        .violations
        .iter()
        .any(|d| d.rule == "R2" && d.line == 4));
    assert_eq!(analysis.suppressed.len(), 1);
    let (diag, reason) = &analysis.suppressed[0];
    assert_eq!((diag.rule, diag.line), ("R2", 4));
    assert_eq!(reason, "fixture: direct spawn is intentional here");
    assert!(analysis.unused_allows.is_empty());
}

#[test]
fn line_anchored_suppression_is_exact() {
    let allows = parse_allows(
        r#"
        [[allow]]
        rule = "R5"
        file = "violations/unsafe_nodoc.rs"
        line = 6
        reason = "fixture: exercising the line anchor"
        "#,
    )
    .expect("allowlist parses");
    let analysis = fixture_findings(&allows);
    // Only line 6 is excused; lines 3 and 10 still fire.
    let r5_lines: Vec<u32> = analysis
        .violations
        .iter()
        .filter(|d| d.rule == "R5")
        .map(|d| d.line)
        .collect();
    assert_eq!(r5_lines, vec![3, 10]);
}

#[test]
fn non_matching_suppression_is_reported_unused() {
    let allows = parse_allows(
        r#"
        [[allow]]
        rule = "R4"
        file = "violations/timing.rs"
        pattern = "this text appears nowhere"
        reason = "fixture: stale suppression"
        "#,
    )
    .expect("allowlist parses");
    let analysis = fixture_findings(&allows);
    assert_eq!(analysis.violations.len(), 13);
    assert!(analysis.suppressed.is_empty());
    assert_eq!(analysis.unused_allows.len(), 1);
    assert_eq!(
        analysis.unused_allows[0].reason,
        "fixture: stale suppression"
    );
}

#[test]
fn json_report_round_trips_through_the_parser() {
    let allows = parse_allows(
        r#"
        [[allow]]
        rule = "R6"
        file = "violations/globals.rs"
        line = 2
        reason = "fixture: round-trip payload"
        "#,
    )
    .expect("allowlist parses");
    let report = fixture_findings(&allows).to_report();
    let text = report.to_json();
    let reparsed = json::parse(&text).expect("report parses back");
    assert_eq!(reparsed, report);
    // Spot-check structure through the parsed form.
    let json::Value::Obj(map) = &reparsed else {
        panic!("report is an object")
    };
    assert_eq!(map["tool"], json::Value::Str("pagani-analyze".to_string()));
    let json::Value::Arr(violations) = &map["violations"] else {
        panic!("violations is an array")
    };
    assert_eq!(violations.len(), 12);
    let json::Value::Arr(suppressed) = &map["suppressed"] else {
        panic!("suppressed is an array")
    };
    assert_eq!(suppressed.len(), 1);
}

#[test]
fn human_report_formats_file_line_rule_message() {
    let analysis = fixture_findings(&[]);
    let report = analysis.human_report();
    assert!(report.contains("violations/spawns.rs:4: R2: "));
    assert!(report.contains("13 violation(s)"));
}

/// Self-check: the shipped `rules.toml` fully covers the real workspace —
/// zero unsuppressed violations and zero stale suppressions.  This is the
/// same gate CI runs via `cargo run -p pagani-analyze`.
#[test]
fn shipped_rules_toml_covers_the_workspace_exactly() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("enclosing workspace");
    let rules = std::fs::read_to_string(root.join("rules.toml")).expect("rules.toml exists");
    let allows = parse_allows(&rules).expect("rules.toml parses");
    assert!(!allows.is_empty());
    for allow in &allows {
        assert!(
            allow.line.is_some() || allow.pattern.is_some(),
            "unanchored suppression for {}",
            allow.file
        );
        assert!(!allow.reason.is_empty());
    }
    let analysis = analyze(&root, &allows).expect("workspace analyzes");
    let leftovers: Vec<String> = analysis
        .violations
        .iter()
        .map(|d| format!("{}:{}: {}", d.file, d.line, d.rule))
        .collect();
    assert!(leftovers.is_empty(), "unsuppressed: {leftovers:?}");
    assert!(
        analysis.unused_allows.is_empty(),
        "stale rules.toml entries: {:?}",
        analysis.unused_allows
    );
}
