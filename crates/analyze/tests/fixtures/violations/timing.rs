//! R4 true positives: wall-clock reads in first-party source outside a
//! rules.toml-allowlisted instrumentation site.
fn stamp() {
    let _ = std::time::Instant::now();
}

fn wall() {
    let _ = std::time::SystemTime::now();
}
