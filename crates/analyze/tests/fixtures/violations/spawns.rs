//! R2 true positives: a bare `thread::spawn` and a builder `.spawn(...)`
//! outside any sanctioned thread source.
fn direct() {
    std::thread::spawn(|| {});
}

fn via_builder(builder: std::thread::Builder) {
    let _ = builder.spawn(|| {});
}
