//! R6 true positives: process-global mutable state and a hard exit.
static mut COUNTER: u32 = 0;

fn bail() {
    std::process::exit(2);
}
