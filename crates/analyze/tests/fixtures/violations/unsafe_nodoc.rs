//! R5 true positives: unsafe sites with no written safety argument.
fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}

unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}

unsafe impl Send for Wrapper {}
