//! R3 true positives: compound assignment to *captured* state inside a
//! launch closure — the order-dependent pattern that breaks bit-identity.
fn captured_scalar(device: &Device, mut acc: f64) {
    device.launch("kernel", 4, |ctx| {
        acc += ctx.value;
    });
}

fn captured_indexed(device: &Device, out: &SharedSlice) {
    device.launch("kernel", 4, |ctx| {
        out[0] -= ctx.value;
    });
}

fn captured_in_batch(device: &Device, lanes: &mut [f64], mut total: f64) {
    device.launch_batch("kernel", 4, 1, lanes, |ctx, slot| {
        total += ctx.value;
    });
}
