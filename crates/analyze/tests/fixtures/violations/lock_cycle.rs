//! R1 true positive: two functions acquire the same pair of locks in
//! opposite orders, closing a cycle alpha -> beta -> alpha.
use std::sync::Mutex;

struct State {
    alpha: Mutex<AlphaInner>,
    beta: Mutex<BetaInner>,
}

impl State {
    fn alpha_then_beta(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        drop(b);
        drop(a);
    }

    fn beta_then_alpha(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        drop(a);
        drop(b);
    }
}
