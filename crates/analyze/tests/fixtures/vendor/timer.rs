//! R4 true negative: vendored stand-ins may read the wall clock — the
//! criterion stand-in *is* a timer.  (R2/R5/R6 still apply to vendor code.)
fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
