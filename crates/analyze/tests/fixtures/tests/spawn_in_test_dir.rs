//! R2/R4 true negatives: this file lives under a `tests/` path segment, so
//! spawning scaffolding threads and timing them is allowed.
fn helper() {
    let handle = std::thread::spawn(|| {});
    let start = std::time::Instant::now();
    handle.join().unwrap();
    let _ = start.elapsed();
}
