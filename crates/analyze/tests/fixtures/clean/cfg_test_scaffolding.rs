//! R2/R4 true negatives: spawns and wall-clock reads inside `#[cfg(test)]`
//! modules and `#[test]` functions are scaffolding, not product code.
fn product_code() -> u32 {
    42
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_times_on_purpose() {
        let handle = std::thread::spawn(|| {});
        let start = std::time::Instant::now();
        handle.join().unwrap();
        let _ = start.elapsed();
    }
}
