//! R3 true negatives: the blessed per-block accumulation forms — a
//! closure-local `let mut` accumulator and a fold-style closure parameter.
fn block_local(device: &Device) {
    device.launch("kernel", 4, |ctx| {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for value in ctx.samples() {
            sum += value;
            sum_sq += value * value;
        }
        (sum, sum_sq)
    });
}

fn fold_param(device: &Device) {
    device.launch("kernel", 4, |mut acc, value| {
        acc += value;
        acc
    });
}

fn batch_lane_writes(device: &Device, lanes: &mut [f64]) {
    device.launch_batch("kernel", 4, 2, lanes, |ctx, slot| {
        let mut sum = 0.0;
        for value in ctx.samples() {
            sum += value;
        }
        slot[0] += sum;
        slot[1] += sum * sum;
    });
}
