//! R1 true negatives: every path takes `first` before `second`, a deref
//! value-copy releases its guard at the statement, and an explicit
//! `drop(...)` ends a hold before the next acquisition.
use std::sync::Mutex;

struct Ordered {
    first: Mutex<FirstInner>,
    second: Mutex<SecondInner>,
    tally: Mutex<f64>,
}

impl Ordered {
    fn nested(&self) {
        let f = self.first.lock().unwrap();
        let s = self.second.lock().unwrap();
        drop(s);
        drop(f);
    }

    fn also_nested(&self) {
        let f = self.first.lock().unwrap();
        let s = self.second.lock().unwrap();
        drop(s);
        drop(f);
    }

    fn copy_then_lock(&self) {
        // The guard here dies at the semicolon: no tally -> first edge.
        let snapshot = *self.tally.lock().unwrap();
        let f = self.first.lock().unwrap();
        drop(f);
        let _ = snapshot;
    }

    fn drop_then_lock(&self) {
        let s = self.second.lock().unwrap();
        drop(s);
        // `second` is no longer held: no second -> first edge.
        let f = self.first.lock().unwrap();
        drop(f);
    }
}
