//! R5 true negatives: every unsafe site carries a written safety argument,
//! either a `// SAFETY:` comment or a `# Safety` doc section.
fn documented_block(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live reference.
    unsafe { *p }
}

/// Reads through `p`.
///
/// # Safety
/// `p` must be valid for reads and properly aligned.
unsafe fn documented_fn(p: *const u32) -> u32 {
    *p
}

// SAFETY: Wrapper owns its buffer exclusively; no aliasing is possible.
unsafe impl Send for Wrapper {}
