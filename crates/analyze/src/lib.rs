//! `pagani-analyze`: the offline workspace invariant checker.
//!
//! PAGANI's headline guarantee — bit-identical results regardless of worker
//! count — rests on a handful of source-level disciplines that runtime tests
//! can only spot-check: all parallelism flows through the vendored pool,
//! float reductions go through the blessed `reduce`/`scan` entry points, the
//! wall clock never feeds result arithmetic, and the service/gate/pool lock
//! graph stays acyclic.  This crate enforces those disciplines statically:
//! it lexes every workspace `.rs` file with a hand-rolled comment- and
//! string-aware lexer (the offline environment forbids `syn`), extracts
//! concurrency facts, and checks rules R1–R6 (see [`rules`]) against them,
//! with a `rules.toml` allowlist for the intentional exceptions.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p pagani-analyze --release -- --workspace
//! ```
//!
//! Diagnostics print as `file:line: rule-id: message`; the machine-readable
//! report lands in `ANALYZE_report.json`.  Exit status is 0 only when every
//! violation is suppressed by a justified `rules.toml` entry.

#![forbid(unsafe_code)]
#![warn(unreachable_pub)]

pub mod engine;
pub mod facts;
pub mod lexer;
pub mod minitoml;
pub mod rules;

// The JSON machinery moved to `pagani-persist` so analyzer reports and
// driver snapshots share one implementation; re-export it so downstream
// `pagani_analyze::json` paths keep working.
pub use pagani_persist::json;

pub use engine::{analyze, find_workspace_root, Analysis};
pub use minitoml::{parse_allows, Allow};
pub use rules::Diagnostic;
