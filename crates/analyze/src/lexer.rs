//! A minimal, comment- and string-aware Rust lexer.
//!
//! The offline build environment forbids `syn`/`proc-macro2`, so the analyzer
//! tokenizes source by hand.  The lexer only needs to be faithful enough for
//! fact extraction: it must never mistake the *contents* of a string literal,
//! raw string, char literal or comment for code (otherwise a doc example
//! mentioning `thread::spawn` would trip rule R2), and it must keep line
//! numbers exact so diagnostics and suppressions anchor correctly.
//!
//! Comments are not discarded: rule R5 (`// SAFETY:` audit) needs them, so
//! they are collected separately from the code token stream.

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is (and its text, where relevant).
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// The kinds of code tokens the fact extractor distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `state`, ...).
    Ident(String),
    /// An operator or delimiter, greedily grouped (`::`, `+=`, `->`, `{`).
    Punct(String),
    /// Any literal: string, raw string, byte string, char, or number.
    /// The payload is discarded — literal contents are never code.
    Literal,
    /// A lifetime such as `'a` (kept distinct so it is not a char literal).
    Lifetime,
}

/// A comment, collected outside the code token stream for rule R5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including its delimiters (`// ...` or `/* ... */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments stripped.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators recognized as single [`TokenKind::Punct`] tokens,
/// longest first so greedy matching picks the full operator.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Tokenize `source`, separating code tokens from comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: source[start..i.min(source.len())].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'r' | b'b' if raw_string_start(bytes, i).is_some() => {
                let (body_start, hashes) = raw_string_start(bytes, i).expect("checked above");
                let start_line = line;
                i = skip_raw_string(bytes, body_start, hashes, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: start_line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char(bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i = skip_string(bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: a lifetime is `'`
                // followed by an identifier NOT closed by another `'`.
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    i = skip_char(bytes, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (is_ident_continue(bytes[j])
                        || bytes[j] == b'.' && bytes.get(j + 1) != Some(&b'.'))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(source[start..j].to_string()),
                    line,
                });
                i = j;
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS
                    .iter()
                    .find(|op| rest.starts_with(**op))
                    .copied()
                    .unwrap_or(&source[i..i + 1]);
                out.tokens.push(Token {
                    kind: TokenKind::Punct(op.to_string()),
                    line,
                });
                i += op.len();
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// True when the `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(next) {
        return false;
    }
    // `'a'` is a char literal; `'a` followed by anything else is a lifetime.
    let mut j = i + 1;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

/// Return `(index_after_opening_quote, hash_count)` when a raw (byte) string
/// starts at `i`, e.g. `r"`, `r#"`, `br##"`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((j + 1, hashes))
}

/// Skip a normal string literal whose opening `"` is at `i`; returns the index
/// just past the closing quote.
fn skip_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            // An escape skips the next byte — which may itself be the newline
            // of a `\`-continuation, still a new source line.
            b'\\' => {
                if bytes.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string body starting at `i` (just past the opening quote),
/// terminated by `"` followed by `hashes` `#`s.
fn skip_raw_string(bytes: &[u8], i: usize, hashes: usize, line: &mut u32) -> usize {
    let mut j = i;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// Skip a char literal whose opening `'` is at `i`.
fn skip_char(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                if bytes.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // thread::spawn in a comment
            /* nested /* thread::spawn */ still comment */
            let s = "thread::spawn";
            let r = r#"thread::spawn"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread".to_string()), "{ids:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'q';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let lexed = lex("a += b; c::d(); e -> f");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Punct(p) => Some(p.as_str()),
                _ => None,
            })
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"->"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn string_continuation_escapes_still_count_their_newline() {
        let src = "a\n\"split \\\nstring\"\nb";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let x = 1;\n// SAFETY: fine\nunsafe_marker();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
    }
}
