//! Orchestration: walk the workspace, lex and extract facts, run the rules,
//! match suppressions, and assemble the report.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::facts;
use crate::json::Value;
use crate::lexer;
use crate::minitoml::Allow;
use crate::rules::{self, AnalyzedFile, Diagnostic, FileClass};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// The complete result of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations, in (file, line, rule) order.
    pub violations: Vec<Diagnostic>,
    /// Suppressed diagnostics with the justification that matched them.
    pub suppressed: Vec<(Diagnostic, String)>,
    /// Indices (into the input allowlist) of entries that matched nothing.
    pub unused_allows: Vec<Allow>,
    /// Workspace-wide fact counts for the report.
    pub fact_counts: FactCounts,
}

/// Aggregate fact counts surfaced in `ANALYZE_report.json`.
#[derive(Debug, Default)]
pub struct FactCounts {
    /// Thread-spawn sites (including allowlisted and test ones).
    pub spawn_sites: usize,
    /// `unsafe` blocks/impls/fns.
    pub unsafe_sites: usize,
    /// Wall-clock reads.
    pub time_sites: usize,
    /// Mutex field declarations.
    pub mutex_decls: usize,
    /// `unwrap`/`expect` calls in non-test service-layer code
    /// (`service.rs`, `multi_device.rs`), as `file:line` strings — the
    /// panic-surface audit the service workers' catch_unwind must cover.
    pub service_unwraps: Vec<String>,
}

impl Analysis {
    /// Human-readable diagnostics: one `file:line: rule: message` per line,
    /// followed by a summary.
    #[must_use]
    pub fn human_report(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        for allow in &self.unused_allows {
            out.push_str(&format!(
                "rules.toml: warning: unused suppression (rule {}, file {}{}): {}\n",
                allow.rule,
                allow.file,
                allow
                    .line
                    .map(|l| format!(", line {l}"))
                    .unwrap_or_default(),
                allow.reason
            ));
        }
        out.push_str(&format!(
            "pagani-analyze: {} file(s), {} violation(s), {} suppressed, {} unused suppression(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed.len(),
            self.unused_allows.len()
        ));
        out
    }

    /// The machine-readable report.
    #[must_use]
    pub fn to_report(&self) -> Value {
        let diag_value = |d: &Diagnostic| {
            Value::obj([
                ("rule", Value::Str(d.rule.to_string())),
                ("file", Value::Str(d.file.clone())),
                ("line", Value::Num(f64::from(d.line))),
                ("message", Value::Str(d.message.clone())),
            ])
        };
        Value::obj([
            ("tool", Value::Str("pagani-analyze".to_string())),
            ("schema_version", Value::Num(1.0)),
            ("files_scanned", Value::Num(self.files_scanned as f64)),
            (
                "violations",
                Value::Arr(self.violations.iter().map(diag_value).collect()),
            ),
            (
                "suppressed",
                Value::Arr(
                    self.suppressed
                        .iter()
                        .map(|(d, reason)| {
                            let mut v = diag_value(d);
                            if let Value::Obj(map) = &mut v {
                                map.insert("reason".to_string(), Value::Str(reason.clone()));
                            }
                            v
                        })
                        .collect(),
                ),
            ),
            (
                "unused_allows",
                Value::Arr(
                    self.unused_allows
                        .iter()
                        .map(|a| {
                            Value::obj([
                                ("rule", Value::Str(a.rule.clone())),
                                ("file", Value::Str(a.file.clone())),
                                ("reason", Value::Str(a.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "facts",
                Value::obj([
                    (
                        "spawn_sites",
                        Value::Num(self.fact_counts.spawn_sites as f64),
                    ),
                    (
                        "unsafe_sites",
                        Value::Num(self.fact_counts.unsafe_sites as f64),
                    ),
                    ("time_sites", Value::Num(self.fact_counts.time_sites as f64)),
                    (
                        "mutex_decls",
                        Value::Num(self.fact_counts.mutex_decls as f64),
                    ),
                    (
                        "service_unwraps",
                        Value::Arr(
                            self.fact_counts
                                .service_unwraps
                                .iter()
                                .map(|s| Value::Str(s.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// Classify a workspace-relative path for rule applicability.
fn classify(rel_path: &str) -> FileClass {
    if rel_path.starts_with("vendor/") {
        return FileClass::Vendor;
    }
    let test_like = rel_path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"));
    if test_like {
        FileClass::TestLike
    } else {
        FileClass::Src
    }
}

/// Recursively collect `.rs` files under `root`, sorted for determinism.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze the workspace rooted at `root` against `allows`.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn analyze(root: &Path, allows: &[Allow]) -> io::Result<Analysis> {
    let paths = collect_rs_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let lexed = lexer::lex(&text);
        let facts = facts::extract(&lexed);
        files.push(AnalyzedFile {
            class: classify(&rel_path),
            lines: text.lines().map(str::to_string).collect(),
            facts,
            rel_path,
        });
    }

    let candidates = rules::check_all(&files);

    // Suppression matching.
    let source_line = |file: &str, line: u32| -> Option<&str> {
        files
            .iter()
            .find(|f| f.rel_path == file)
            .and_then(|f| f.lines.get((line as usize).saturating_sub(1)))
            .map(String::as_str)
    };
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for diag in candidates {
        let matched = allows.iter().enumerate().find(|(_, a)| {
            a.rule == diag.rule
                && diag.file.ends_with(&a.file)
                && a.line.is_none_or(|l| l == diag.line)
                && a.pattern.as_ref().is_none_or(|p| {
                    source_line(&diag.file, diag.line).is_some_and(|text| text.contains(p))
                })
        });
        match matched {
            Some((idx, allow)) => {
                used.insert(idx);
                suppressed.push((diag, allow.reason.clone()));
            }
            None => violations.push(diag),
        }
    }
    let unused_allows = allows
        .iter()
        .enumerate()
        .filter(|(i, _)| !used.contains(i))
        .map(|(_, a)| a.clone())
        .collect();

    let mut fact_counts = FactCounts::default();
    for file in &files {
        fact_counts.spawn_sites += file.facts.spawns.len();
        fact_counts.unsafe_sites += file.facts.unsafe_sites.len();
        fact_counts.time_sites += file.facts.time_sites.len();
        fact_counts.mutex_decls += file.facts.mutex_decls.len();
        if file.rel_path.ends_with("core/src/service.rs")
            || file.rel_path.ends_with("core/src/multi_device.rs")
        {
            for &line in &file.facts.unwrap_sites {
                fact_counts
                    .service_unwraps
                    .push(format!("{}:{line}", file.rel_path));
            }
        }
    }

    Ok(Analysis {
        files_scanned: files.len(),
        violations,
        suppressed,
        unused_allows,
        fact_counts,
    })
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
