//! A TOML subset parser for `rules.toml`.
//!
//! The analyzer must stay dependency-free, so it reads exactly the dialect it
//! ships: `[[allow]]` array-of-tables entries whose values are double-quoted
//! strings (with `\"`, `\\`, `\n`, `\t` escapes) or unsigned integers, plus
//! `#` comments and blank lines.  Anything outside that subset is a hard
//! configuration error — a malformed suppression must fail loudly, not be
//! silently ignored.

use std::collections::BTreeMap;
use std::fmt;

/// One suppression entry from `rules.toml`.
///
/// A diagnostic is suppressed when its rule id equals `rule`, the diagnostic's
/// path ends with `file`, and — when given — its line equals `line` and/or the
/// offending source line contains `pattern`.  `reason` is mandatory: an
/// unexplained suppression is itself a configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule id the entry suppresses (`R1` ... `R6`).
    pub rule: String,
    /// Path suffix the entry applies to (e.g. `crates/core/src/service.rs`).
    pub file: String,
    /// Exact 1-based line anchor, when present.
    pub line: Option<u32>,
    /// Substring of the offending source line, when present.
    pub pattern: Option<String>,
    /// Why the site is intentional; required.
    pub reason: String,
}

/// A `rules.toml` parse or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending input, 0 for end-of-input errors.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rules.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: u32, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parse the full suppression file.
pub fn parse_allows(input: &str) -> Result<Vec<Allow>, TomlError> {
    let mut tables: Vec<(u32, BTreeMap<String, Value>)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            tables.push((lineno, BTreeMap::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                format!("unknown table {line:?}; only [[allow]] is supported"),
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim();
        let value = parse_value(value.trim()).map_err(|m| err(lineno, m))?;
        let Some((_, table)) = tables.last_mut() else {
            return Err(err(lineno, "key outside any [[allow]] table"));
        };
        if table.insert(key.to_string(), value).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?}")));
        }
    }
    tables.into_iter().map(|(l, t)| build_allow(l, t)).collect()
}

#[derive(Debug)]
enum Value {
    Str(String),
    Int(u32),
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string is not a comment; track quoting.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(raw: &str) -> Result<Value, String> {
    if let Some(body) = raw.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string {raw:?}"));
        };
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape \\{}", other.unwrap_or(' '))),
            }
        }
        return Ok(Value::Str(out));
    }
    raw.parse::<u32>()
        .map(Value::Int)
        .map_err(|_| format!("expected a quoted string or unsigned integer, got {raw:?}"))
}

fn build_allow(lineno: u32, mut table: BTreeMap<String, Value>) -> Result<Allow, TomlError> {
    let mut take_str = |key: &str| -> Result<Option<String>, TomlError> {
        match table.remove(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(Value::Int(_)) => Err(err(lineno, format!("`{key}` must be a string"))),
        }
    };
    let rule = take_str("rule")?.ok_or_else(|| err(lineno, "missing `rule`"))?;
    let file = take_str("file")?.ok_or_else(|| err(lineno, "missing `file`"))?;
    let pattern = take_str("pattern")?;
    let reason = take_str("reason")?
        .filter(|r| !r.trim().is_empty())
        .ok_or_else(|| {
            err(
                lineno,
                "missing `reason`: every suppression must be justified",
            )
        })?;
    let line = match table.remove("line") {
        None => None,
        Some(Value::Int(n)) => Some(n),
        Some(Value::Str(_)) => return Err(err(lineno, "`line` must be an integer")),
    };
    if let Some(extra) = table.keys().next() {
        return Err(err(lineno, format!("unknown key {extra:?}")));
    }
    if line.is_none() && pattern.is_none() {
        return Err(err(
            lineno,
            "an [[allow]] entry needs a `line` and/or a `pattern` anchor",
        ));
    }
    Ok(Allow {
        rule,
        file,
        line,
        pattern,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_entry() {
        let allows = parse_allows(
            "# comment\n\
             [[allow]]\n\
             rule = \"R2\"  # trailing comment\n\
             file = \"crates/core/src/service.rs\"\n\
             pattern = \"worker_loop\"\n\
             reason = \"resident service workers\"\n",
        )
        .unwrap();
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "R2");
        assert_eq!(allows[0].pattern.as_deref(), Some("worker_loop"));
    }

    #[test]
    fn reason_is_mandatory() {
        let e = parse_allows("[[allow]]\nrule = \"R2\"\nfile = \"x.rs\"\nline = 3\n").unwrap_err();
        assert!(e.message.contains("reason"), "{e}");
    }

    #[test]
    fn anchor_is_mandatory() {
        let e = parse_allows("[[allow]]\nrule = \"R2\"\nfile = \"x.rs\"\nreason = \"because\"\n")
            .unwrap_err();
        assert!(e.message.contains("anchor"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let e = parse_allows(
            "[[allow]]\nrule = \"R2\"\nfile = \"x.rs\"\nline = 1\nreason = \"r\"\nbogus = \"y\"\n",
        )
        .unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let allows = parse_allows(
            "[[allow]]\nrule = \"R4\"\nfile = \"a.rs\"\npattern = \"x # y\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert_eq!(allows[0].pattern.as_deref(), Some("x # y"));
    }
}
