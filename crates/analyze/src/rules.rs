//! The rule set: six checks keyed to the invariants in `ARCHITECTURE.md`.
//!
//! | Rule | Invariant it guards | Enforced against |
//! |------|---------------------|------------------|
//! | R1   | lock-order acyclicity (no potential deadlock) | the global lock graph |
//! | R2   | all parallelism flows through `DeviceConfig::worker_threads` | spawn sites |
//! | R3   | bit-identical float reduction (no ad-hoc accumulation in kernels) | `launch*` closures |
//! | R4   | wall clock never feeds result arithmetic | `Instant::now` / `SystemTime` |
//! | R5   | every `unsafe` carries a written safety argument | `// SAFETY:` comments |
//! | R6   | no process-global mutable state or hard exits | `static mut`, `process::exit` |
//!
//! Rules R2 and R4 skip test-like code (`tests/`, `benches/`, `examples/`
//! directories and `#[cfg(test)]` modules): tests spawn scaffolding threads
//! and time things on purpose.  R4 additionally skips `vendor/` (the
//! criterion stand-in *is* a timer).  R1, R3, R5 and R6 see everything.

use std::collections::{BTreeMap, BTreeSet};

use crate::facts::{FileFacts, SpawnKind, UnsafeForm};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// First-party library/binary source.
    Src,
    /// Integration tests, benches and examples.
    TestLike,
    /// Vendored offline stand-ins under `vendor/`.
    Vendor,
}

/// One analyzed file, as the rules see it.
pub struct AnalyzedFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw source lines (for R5's comment audit and suppression patterns).
    pub lines: Vec<String>,
    /// Extracted facts.
    pub facts: FileFacts,
    /// Rule applicability class.
    pub class: FileClass,
}

/// A rule violation (or candidate violation, before suppression matching).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, `R1` ... `R6`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Function names the R1 interprocedural propagation never looks through:
/// ubiquitous names whose definitions are ambiguous or whose semantics are
/// already modeled (e.g. `lock`, `wait`).
const CALL_STOPLIST: &[&str] = &[
    "new",
    "clone",
    "drop",
    "lock",
    "wait",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "len",
    "is_empty",
    "get",
    "insert",
    "remove",
    "push",
    "pop",
    "take",
    "iter",
    "map",
    "collect",
    "notify_all",
    "notify_one",
    "default",
    "into",
    "from",
    "fmt",
    "eq",
    "cmp",
    "hash",
];

/// Run every rule over the analyzed files; returns candidate diagnostics in
/// deterministic (file, line, rule) order.
pub fn check_all(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_lock_order(files, &mut diags);
    for file in files {
        check_spawns(file, &mut diags);
        check_launch_accums(file, &mut diags);
        check_time(file, &mut diags);
        check_safety_comments(file, &mut diags);
        check_globals(file, &mut diags);
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    diags
}

fn file_stem(rel_path: &str) -> &str {
    let name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    name.strip_suffix(".rs").unwrap_or(name)
}

/// R1: the global lock-order graph must be acyclic.
///
/// This is the static half of the liveness story: the dynamic half — the
/// gate's lock-then-notify wakeup handshake — is model-checked exhaustively
/// in `crates/device/tests/gate_interleavings.rs`.
///
/// Lock identity is `field@file-stem`, with the declaring file preferred when
/// a field name is declared in exactly one scanned file.  Edges come from two
/// sources: a lock acquired while another guard is live in the same function
/// body, and — one interprocedural layer — a call made under a held lock to a
/// function whose (transitive) lock set is known.  Transitivity only follows
/// calls to functions defined exactly once in the scanned set and not on the
/// common-name stoplist, so name collisions cannot fabricate edges.
fn check_lock_order(files: &[AnalyzedFile], diags: &mut Vec<Diagnostic>) {
    // Field / inner-type declaration maps.
    let mut field_decls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut type_decls: BTreeMap<&str, BTreeSet<(&str, &str)>> = BTreeMap::new();
    for file in files {
        for decl in &file.facts.mutex_decls {
            field_decls
                .entry(decl.field.as_str())
                .or_default()
                .insert(file.rel_path.as_str());
            type_decls
                .entry(decl.inner_type.as_str())
                .or_default()
                .insert((decl.field.as_str(), file.rel_path.as_str()));
        }
    }
    // field name as written in `file` -> canonical class.
    let classify = |field: &str, file: &AnalyzedFile| -> Option<String> {
        if let Some(inner) = field.strip_prefix("type:") {
            // A MutexGuard parameter: resolvable only when the inner type
            // names exactly one declared lock.
            let decls = type_decls.get(inner)?;
            if decls.len() != 1 {
                return None;
            }
            let (f, path) = decls.iter().next().expect("len checked");
            return Some(format!("{f}@{}", file_stem(path)));
        }
        match field_decls.get(field) {
            Some(decls) if decls.len() == 1 => {
                let path = decls.iter().next().expect("len checked");
                Some(format!("{field}@{}", file_stem(path)))
            }
            _ => Some(format!("{field}@{}", file_stem(&file.rel_path))),
        }
    };

    // Unambiguous function definitions for the transitive lock sets.
    let mut fn_defs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, function) in file.facts.functions.iter().enumerate() {
            fn_defs
                .entry(function.name.as_str())
                .or_default()
                .push((fi, gi));
        }
    }
    let resolvable = |name: &str| -> Option<(usize, usize)> {
        if CALL_STOPLIST.contains(&name) {
            return None;
        }
        match fn_defs.get(name) {
            Some(defs) if defs.len() == 1 => Some(defs[0]),
            _ => None,
        }
    };

    // Transitive lock classes per function (fixpoint over the call graph).
    let mut lock_sets: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, function) in file.facts.functions.iter().enumerate() {
            let set: BTreeSet<String> = function
                .locks
                .iter()
                .filter_map(|f| classify(f, file))
                .collect();
            lock_sets.insert((fi, gi), set);
        }
    }
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (gi, function) in file.facts.functions.iter().enumerate() {
                let mut additions: BTreeSet<String> = BTreeSet::new();
                for callee in &function.calls {
                    if let Some(def) = resolvable(callee) {
                        if def == (fi, gi) {
                            continue;
                        }
                        additions.extend(lock_sets[&def].iter().cloned());
                    }
                }
                let set = lock_sets.get_mut(&(fi, gi)).expect("pre-seeded");
                let before = set.len();
                set.extend(additions);
                changed |= set.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: (from, to) -> earliest witness site.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut add_edge = |from: String, to: String, file: &str, line: u32| {
        if from == to {
            return;
        }
        let site = (file.to_string(), line);
        edges
            .entry((from, to))
            .and_modify(|existing| {
                if site < *existing {
                    *existing = site.clone();
                }
            })
            .or_insert(site);
    };
    for (fi, file) in files.iter().enumerate() {
        for (gi, function) in file.facts.functions.iter().enumerate() {
            for edge in &function.edges {
                if let (Some(from), Some(to)) =
                    (classify(&edge.held, file), classify(&edge.acquired, file))
                {
                    add_edge(from, to, &file.rel_path, edge.line);
                }
            }
            for call in &function.held_calls {
                let Some(def) = resolvable(&call.callee) else {
                    continue;
                };
                if def == (fi, gi) {
                    continue;
                }
                for to in &lock_sets[&def] {
                    for held in &call.held {
                        if let Some(from) = classify(held, file) {
                            add_edge(from, to.clone(), &file.rel_path, call.line);
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: strongly connected components of the class graph.
    let nodes: Vec<&String> = {
        let mut set = BTreeSet::new();
        for (from, to) in edges.keys() {
            set.insert(from);
            set.insert(to);
        }
        set.into_iter().collect()
    };
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to) in edges.keys() {
        adj[index_of[from]].push(index_of[to]);
    }
    for scc in tarjan_sccs(&adj) {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let mut cycle_edges: Vec<(&str, &str, &str, u32)> = edges
            .iter()
            .filter(|((from, to), _)| {
                members.contains(&index_of[from]) && members.contains(&index_of[to])
            })
            .map(|((from, to), (file, line))| (from.as_str(), to.as_str(), file.as_str(), *line))
            .collect();
        cycle_edges.sort_by_key(|(_, _, file, line)| (file.to_string(), *line));
        let (_, _, anchor_file, anchor_line) = cycle_edges[0];
        let description = cycle_edges
            .iter()
            .map(|(from, to, file, line)| format!("{from} -> {to} at {file}:{line}"))
            .collect::<Vec<_>>()
            .join("; ");
        diags.push(Diagnostic {
            rule: "R1",
            file: anchor_file.to_string(),
            line: anchor_line,
            message: format!(
                "lock-order cycle (potential deadlock) between {{{}}}: {description}",
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| members.contains(i))
                    .map(|(_, n)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
}

/// Iterative Tarjan SCC over an adjacency list.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false,
        };
        n
    ];
    let mut next_index = 0i64;
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next-neighbor position).
    for start in 0..n {
        if state[start].index >= 0 {
            continue;
        }
        let mut frames = vec![(start, 0usize)];
        while let Some(&mut (v, ref mut ni)) = frames.last_mut() {
            if *ni == 0 {
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                state[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = adj[v].get(*ni) {
                *ni += 1;
                if state[w].index < 0 {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// R2: no thread spawns outside the sanctioned substrate.
fn check_spawns(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if file.class == FileClass::TestLike {
        return;
    }
    for spawn in &file.facts.spawns {
        if spawn.in_test {
            continue;
        }
        let how = match spawn.kind {
            SpawnKind::Direct => "thread::spawn",
            SpawnKind::Method => ".spawn(...)",
        };
        diags.push(Diagnostic {
            rule: "R2",
            file: file.rel_path.clone(),
            line: spawn.line,
            message: format!(
                "{how} outside the sanctioned thread sources — parallelism must flow through \
                 the vendored pool or a rules.toml-allowlisted service site so \
                 DeviceConfig::worker_threads stays authoritative"
            ),
        });
    }
}

/// R3: no ad-hoc float accumulation inside `launch*` closures.
fn check_launch_accums(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    for (line, op) in &file.facts.launch_accums {
        diags.push(Diagnostic {
            rule: "R3",
            file: file.rel_path.clone(),
            line: *line,
            message: format!(
                "`{op}` inside a launch closure: cross-block accumulation is \
                 order-dependent under parallel execution; write per-index results and \
                 combine via pagani_device::reduce/scan to preserve bit-identity"
            ),
        });
    }
}

/// R4: wall-clock reads only where timing is the product.
fn check_time(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if file.class != FileClass::Src {
        return;
    }
    for site in &file.facts.time_sites {
        if site.in_test {
            continue;
        }
        diags.push(Diagnostic {
            rule: "R4",
            file: file.rel_path.clone(),
            line: site.line,
            message: format!(
                "{} outside a timing/cost module — wall-clock reads must never feed \
                 result-affecting arithmetic; allowlist intentional instrumentation in rules.toml",
                site.what
            ),
        });
    }
}

/// R5: every `unsafe` site carries a written safety argument.
fn check_safety_comments(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    for site in &file.facts.unsafe_sites {
        if has_safety_narrative(&file.lines, site.line) {
            continue;
        }
        let what = match site.form {
            UnsafeForm::Block => "unsafe block",
            UnsafeForm::Impl => "unsafe impl",
            UnsafeForm::FnDef => "unsafe fn",
            UnsafeForm::Trait => "unsafe trait",
        };
        diags.push(Diagnostic {
            rule: "R5",
            file: file.rel_path.clone(),
            line: site.line,
            message: format!(
                "{what} without a `// SAFETY:` comment (or `# Safety` doc section) \
                 explaining why the invariants hold"
            ),
        });
    }
}

/// A safety narrative is a `SAFETY:` comment or `# Safety` doc heading on the
/// same line or on the contiguous run of comment/attribute lines above.
fn has_safety_narrative(lines: &[String], line: u32) -> bool {
    let idx = (line as usize).saturating_sub(1);
    let marker = |s: &str| s.contains("SAFETY:") || s.contains("# Safety");
    if lines.get(idx).is_some_and(|l| marker(l)) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let trimmed = lines[k].trim();
        let is_annotation =
            trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if !is_annotation {
            return false;
        }
        if marker(trimmed) {
            return true;
        }
    }
    false
}

/// R6: no process-global mutable state, no hard process exits.
fn check_globals(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    for &line in &file.facts.static_muts {
        diags.push(Diagnostic {
            rule: "R6",
            file: file.rel_path.clone(),
            line,
            message: "`static mut` is forbidden: process-global mutable state breaks the \
                      isolated-view determinism contract"
                .to_string(),
        });
    }
    for &line in &file.facts.process_exits {
        diags.push(Diagnostic {
            rule: "R6",
            file: file.rel_path.clone(),
            line,
            message: "`process::exit` is forbidden in library code: it skips Drop-based \
                      cleanup (gate permits, ledger retirement, worker joins)"
                .to_string(),
        });
    }
}
