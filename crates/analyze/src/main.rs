//! CLI entry point for the workspace invariant checker.

use std::path::PathBuf;
use std::process::ExitCode;

use pagani_analyze::{analyze, find_workspace_root, parse_allows};

const USAGE: &str = "\
pagani-analyze: offline workspace invariant checker (rules R1-R6)

USAGE:
    pagani-analyze [--workspace | --root <DIR>] [--rules <FILE>] [--json <FILE>]

OPTIONS:
    --workspace      Analyze the enclosing cargo workspace (default)
    --root <DIR>     Analyze an explicit directory tree instead
    --rules <FILE>   Suppression allowlist (default: <root>/rules.toml)
    --json <FILE>    Where to write the report (default: ANALYZE_report.json)
    --no-json        Skip writing the JSON report

EXIT STATUS:
    0  no unsuppressed violations
    1  violations found
    2  usage or configuration error
";

struct Args {
    root: Option<PathBuf>,
    rules: Option<PathBuf>,
    json: Option<PathBuf>,
    no_json: bool,
}

/// Parse CLI arguments; `Ok(None)` means `--help` was printed.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        rules: None,
        json: None,
        no_json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.root = None,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--rules" => {
                args.rules = Some(PathBuf::from(
                    it.next().ok_or("--rules needs a file argument")?,
                ));
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "--no-json" => args.no_json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(args))
}

fn run() -> Result<bool, String> {
    let Some(args) = parse_args()? else {
        return Ok(true);
    };
    let root = match args.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no enclosing cargo workspace found; pass --root <DIR>")?
        }
    };
    let rules_path = args
        .rules
        .clone()
        .unwrap_or_else(|| root.join("rules.toml"));
    let allows = if rules_path.is_file() {
        let text = std::fs::read_to_string(&rules_path)
            .map_err(|e| format!("{}: {e}", rules_path.display()))?;
        parse_allows(&text).map_err(|e| format!("{}: {e}", rules_path.display()))?
    } else if args.rules.is_some() {
        return Err(format!("rules file not found: {}", rules_path.display()));
    } else {
        Vec::new()
    };

    let analysis = analyze(&root, &allows).map_err(|e| e.to_string())?;
    print!("{}", analysis.human_report());

    if !args.no_json {
        let json_path = args
            .json
            .unwrap_or_else(|| PathBuf::from("ANALYZE_report.json"));
        std::fs::write(&json_path, analysis.to_report().to_json())
            .map_err(|e| format!("{}: {e}", json_path.display()))?;
        eprintln!("report written to {}", json_path.display());
    }
    Ok(analysis.violations.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("pagani-analyze: error: {message}");
            eprintln!();
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
